//! The epoch-stamped publication cell: the generic read-mostly primitive
//! under [`crate::snapshot`].
//!
//! Writers publish a new `Arc<T>` under a mutex and bump an atomic epoch;
//! per-shard readers cache the current `Arc` and revalidate it with
//! **one** `Acquire` load per query. The steady-state read path touches
//! no lock, takes no reference count, and allocates nothing; the slot
//! mutex is taken only on the cold publication-change path.
//!
//! Memory-ordering audit (this file is listed in `lint.toml`'s
//! `seqlock_files`; every raw atomic access is justified here, and the
//! whole protocol is model-checked — see `tests/snapshot_stress.rs`,
//! which `#[path]`-includes this file against the eum-mcheck modeled
//! atomics and exhaustively explores the reader/writer interleavings):
//!
//! * `epoch` is stored with `Release` *while holding the slot mutex*,
//!   after the new `Arc<T>` is in place. A reader that `Acquire`-loads
//!   the bumped epoch therefore happens-after the slot store and will
//!   observe the new value when it locks the slot.
//! * The reader's fast path `Acquire`-loads the epoch and compares it to
//!   the epoch it last synced at. Equality proves no publication
//!   happened since the cached `Arc` was cloned, so the cache is
//!   current. There are no `Relaxed` accesses: the epoch is the
//!   publication flag, and both sides need the Acquire/Release pairing.
//! * Every (cached, seen_epoch) pair a reader holds — at construction
//!   and on every refresh — is read *inside* the slot mutex, so it is
//!   exactly the pair one writer published atomically. An earlier
//!   version of `SnapshotHandle::reader` cloned the slot first and
//!   loaded the epoch after, outside the mutex; a publication racing
//!   between the two left a fresh reader pinned at `seen_epoch == new`
//!   with the *old* generation cached, serving stale answers until the
//!   next publication. The model checker finds that interleaving in a
//!   few hundred executions (`reader_epoch_slot_pairing_regression`),
//!   which is why `read_paired` exists.

// Atomics and the slot mutex come through the mcheck facade (std in
// production builds; see the `raw-atomic` lint rule and `crate::msync`).
use crate::msync::{AtomicU64, Mutex, Ordering};
use std::sync::Arc;

/// An epoch-stamped publication slot. Writers are rare (one per
/// generation) and never contend with steady-state readers.
pub struct EpochCell<T> {
    /// Bumped once per publication, under `slot`'s mutex, with `Release`.
    epoch: AtomicU64,
    /// The current value. Writers and cold-path readers only.
    slot: Mutex<Arc<T>>,
}

impl<T> EpochCell<T> {
    /// Wraps the initial value at epoch 1.
    pub fn new(initial: Arc<T>) -> EpochCell<T> {
        EpochCell {
            epoch: AtomicU64::new(1),
            slot: Mutex::new(initial),
        }
    }

    /// The current value. Control-plane/test convenience: takes the slot
    /// mutex. Serving shards use an [`EpochReader`].
    pub fn current(&self) -> Arc<T> {
        self.slot.lock().expect("epoch slot poisoned").clone()
    }

    /// The current epoch (one publication = one bump; starts at 1).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes the value `make` builds from the current one, and
    /// returns the new epoch. The closure runs under the slot mutex, so
    /// derived fields (e.g. a generation counter carried inside `T`)
    /// are computed atomically with the publication.
    pub fn publish_with(&self, make: impl FnOnce(&Arc<T>) -> Arc<T>) -> u64 {
        let mut slot = self.slot.lock().expect("epoch slot poisoned");
        let next = make(&slot);
        *slot = next;
        // Release-publish after the slot holds the new value and while
        // the mutex is still held: a reader acquiring this epoch value
        // happens-after the store above, and the epoch a refresh reads
        // inside the mutex always matches the slot it clones.
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// A consistent (value, epoch) pair, read inside the slot mutex so
    /// it is exactly the pair one writer published atomically.
    fn read_paired(&self) -> (Arc<T>, u64) {
        let slot = self.slot.lock().expect("epoch slot poisoned");
        let cached = slot.clone();
        let seen_epoch = self.epoch.load(Ordering::Acquire);
        (cached, seen_epoch)
    }

    /// A reader primed with the current value. See the module audit for
    /// why the prime must read the (value, epoch) pair under the mutex.
    pub fn reader(cell: &Arc<EpochCell<T>>) -> EpochReader<T> {
        let (cached, seen_epoch) = cell.read_paired();
        EpochReader {
            cell: cell.clone(),
            cached,
            seen_epoch,
        }
    }
}

/// A per-shard view of an [`EpochCell`]: caches the current `Arc<T>` and
/// revalidates it with one `Acquire` load per call. Not `Clone` on
/// purpose — each shard owns exactly one.
pub struct EpochReader<T> {
    cell: Arc<EpochCell<T>>,
    cached: Arc<T>,
    seen_epoch: u64,
}

impl<T> EpochReader<T> {
    /// The current value. Steady state (no publication since the last
    /// call) is one atomic load and a compare — no lock, no reference
    /// count traffic, no allocation.
    pub fn get(&mut self) -> &Arc<T> {
        let epoch = self.cell.epoch.load(Ordering::Acquire);
        if epoch != self.seen_epoch {
            self.refresh();
        }
        &self.cached
    }

    /// The epoch the cached value was read at (diagnostics and the model
    /// tests' pairing invariant).
    pub fn seen_epoch(&self) -> u64 {
        self.seen_epoch
    }

    /// Cold path: a publication happened; re-sync from the slot.
    #[cold]
    fn refresh(&mut self) {
        let (cached, seen_epoch) = self.cell.read_paired();
        self.cached = cached;
        self.seen_epoch = seen_epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_epoch_and_reader_revalidates() {
        let cell = Arc::new(EpochCell::new(Arc::new(10u64)));
        assert_eq!(cell.epoch(), 1);
        let mut r = EpochCell::reader(&cell);
        assert_eq!(**r.get(), 10);
        assert_eq!(r.seen_epoch(), 1);

        let e = cell.publish_with(|cur| Arc::new(**cur + 1));
        assert_eq!(e, 2);
        assert_eq!(cell.epoch(), 2);
        assert_eq!(**r.get(), 11);
        assert_eq!(r.seen_epoch(), 2);
        assert_eq!(*cell.current(), 11);
    }

    #[test]
    fn reader_primed_after_publications_sees_latest() {
        let cell = Arc::new(EpochCell::new(Arc::new(0u64)));
        cell.publish_with(|_| Arc::new(1));
        cell.publish_with(|_| Arc::new(2));
        let mut r = EpochCell::reader(&cell);
        assert_eq!(**r.get(), 2);
        assert_eq!(r.seen_epoch(), 3);
    }
}
