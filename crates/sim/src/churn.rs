//! Map-churn replay: what does a map publication cost the serving plane?
//!
//! The paper's mapping system republishes every 10–30 seconds (§2.2), so
//! the cost of *publication itself* — not just the rebuild — is a
//! first-order serving concern: if every publication wipes the shard
//! answer caches, the hit rate dips and the origin-side compute spikes on
//! every refresh, even when almost nothing in the map changed.
//!
//! This module replays a liveness-churn incident through one serving
//! shard twice, identically except for how the cache crosses the
//! publication boundary:
//!
//! * [`InvalidationMode::Keyed`] — the control plane publishes with
//!   [`eum_authd::SnapshotHandle::publish_delta`] after an incremental
//!   rebuild, so the shard evicts only entries whose mapping unit
//!   appears in the [`eum_mapping::MapDelta`];
//! * [`InvalidationMode::GenerationClear`] — the pre-delta behaviour: a
//!   full rebuild published without a delta, clearing the whole cache.
//!
//! The windowed hit-rate timeline makes the difference measurable: the
//! generation-clear flip window re-misses every distinct query shape,
//! while the keyed flip window only re-misses the shapes the delta
//! actually touched. [`ChurnTimeline::dip`] condenses that into one
//! number per mode, and the crate test pins keyed < clear.

use eum_authd::{CacheConfig, QueryStages, ReplyCap, ServeOutcome, ShardState, SnapshotHandle};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{encode_message, Message, Question};
use eum_mapping::{MappingConfig, MappingPolicy, MappingSystem, RescoreHints};
use eum_netmodel::{Internet, InternetConfig};

/// Shape of the churn replay.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// World seed (Internet, deployment, catalog).
    pub seed: u64,
    /// Total query windows replayed.
    pub windows: usize,
    /// Window at whose start a non-escape cluster dies and the new map
    /// is published (must be `>= 1` so a warm baseline exists).
    pub flip_window: usize,
    /// Full passes over every client block per window; each pass issues
    /// one ECS query per block, so steady-state windows re-hit the same
    /// cached shapes.
    pub passes_per_window: usize,
}

impl Default for ChurnConfig {
    fn default() -> ChurnConfig {
        ChurnConfig {
            seed: 0xC4321,
            windows: 8,
            flip_window: 4,
            passes_per_window: 4,
        }
    }
}

impl ChurnConfig {
    /// A faster replay for CI smoke steps: fewer windows, fewer passes,
    /// same flip semantics.
    pub fn smoke() -> ChurnConfig {
        ChurnConfig {
            windows: 6,
            flip_window: 3,
            passes_per_window: 3,
            ..ChurnConfig::default()
        }
    }
}

/// How the shard answer cache crosses the mid-replay publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidationMode {
    /// Incremental rebuild + [`eum_authd::SnapshotHandle::publish_delta`]:
    /// keyed eviction of only the delta's mapping units.
    Keyed,
    /// Full rebuild + [`eum_authd::SnapshotHandle::publish`]: the whole
    /// cache clears at the generation swap.
    GenerationClear,
}

/// One mode's replay result: the per-window cache hit rates plus the
/// invalidation counters that explain them.
#[derive(Debug, Clone)]
pub struct ChurnTimeline {
    /// Which publication path produced this timeline.
    pub mode: InvalidationMode,
    /// Window the publication landed in.
    pub flip_window: usize,
    /// Cache hit rate per window, `hits / (hits + misses)`.
    pub hit_rate: Vec<f64>,
    /// Entries evicted one-by-one because their unit was in the delta.
    pub keyed_invalidations: u64,
    /// Whole-cache clears (0 in keyed mode unless the delta was full).
    pub generation_clears: u64,
    /// Units the published delta carried (`None`: published without one).
    pub delta_units: Option<usize>,
}

impl ChurnTimeline {
    /// How far the hit rate fell at the flip: the pre-flip baseline
    /// window minus the worst window from the flip on. Zero when the
    /// publication cost the serving plane nothing.
    pub fn dip(&self) -> f64 {
        let baseline = self.hit_rate[self.flip_window - 1];
        let worst = self.hit_rate[self.flip_window..]
            .iter()
            .copied()
            .fold(baseline, f64::min);
        (baseline - worst).max(0.0)
    }
}

/// One shard serving one churn replay under `mode`. Deterministic for a
/// given config: the world, the query order, and the victim cluster all
/// derive from `cfg.seed`.
pub fn run_churn(cfg: &ChurnConfig, mode: InvalidationMode) -> ChurnTimeline {
    assert!(cfg.flip_window >= 1, "need a warm window before the flip");
    assert!(cfg.windows > cfg.flip_window, "need windows after the flip");

    let mut net = Internet::generate(InternetConfig::tiny(cfg.seed));
    let sites = deployment_universe(cfg.seed, 16);
    let mut cdn = CdnPlatform::deploy(&mut net, &sites, &DeployConfig::default());
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(cfg.seed));
    let mut map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            policy: MappingPolicy::end_user_default(),
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    let low = map.ns_ips()[1];
    let resolver = net.resolvers[0].ip;

    // One ECS query shape per client block, same name throughout: the
    // cache key varies by scope block, so steady-state windows replay
    // from cache and a publication's eviction policy is the only thing
    // that can re-introduce misses.
    let name = "e0.cdn.example";
    let payloads: Vec<Vec<u8>> = net
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            encode_message(&Message::query(
                i as u16,
                Question::a(name.parse().unwrap()),
                Some(OptData::with_ecs(EcsOption::query(b.client_ip(), 24))),
            ))
        })
        .collect();

    // The victim: an assigned, non-escape cluster, so the incremental
    // delta stays keyed instead of promoting to full.
    let escape = cdn.clusters[0].id;
    let victim = net
        .blocks
        .iter()
        .filter_map(|b| map.assigned_cluster_for_block(b.prefix))
        .find(|c| *c != escape)
        .expect("some block maps beyond the escape cluster");

    let snapshots = SnapshotHandle::new(map.clone_for_publish());
    let mut reader = snapshots.reader();
    let mut state = ShardState::new(Some(CacheConfig::default()));

    let mut hit_rate = Vec::with_capacity(cfg.windows);
    let mut prev = eum_authd::AnswerCacheStats::default();
    let mut delta_units = None;

    for window in 0..cfg.windows {
        if window == cfg.flip_window {
            cdn.set_cluster_alive(victim, false);
            match mode {
                InvalidationMode::Keyed => {
                    let delta = map.rebuild_incremental(&net, &cdn, &RescoreHints::default());
                    assert!(!delta.is_full(), "non-escape churn must stay keyed");
                    delta_units = Some(delta.units_changed());
                    snapshots.publish_delta(map.clone_for_publish(), delta);
                }
                InvalidationMode::GenerationClear => {
                    map.rebuild(&net, &cdn);
                    snapshots.publish(map.clone_for_publish());
                }
            }
        }
        for _pass in 0..cfg.passes_per_window {
            for payload in &payloads {
                let snap = reader.snapshot();
                state.observe(snap);
                let mut stages = QueryStages::new(false);
                let out = state.serve(
                    &snap.map,
                    low,
                    resolver,
                    payload,
                    ReplyCap::udp(),
                    &mut stages,
                );
                assert!(
                    matches!(out, ServeOutcome::Replied { .. }),
                    "churn replay query failed: {out:?}"
                );
            }
        }
        let now = state.cache().expect("cache enabled").stats();
        let hits = now.hits - prev.hits;
        let misses = now.misses - prev.misses;
        hit_rate.push(hits as f64 / (hits + misses).max(1) as f64);
        prev = now;
    }

    let stats = state.cache().expect("cache enabled").stats();
    ChurnTimeline {
        mode,
        flip_window: cfg.flip_window,
        hit_rate,
        keyed_invalidations: stats.keyed_invalidations,
        generation_clears: stats.generation_clears,
        delta_units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_publication_dips_less_than_generation_clear() {
        let cfg = ChurnConfig::default();
        let keyed = run_churn(&cfg, InvalidationMode::Keyed);
        let clear = run_churn(&cfg, InvalidationMode::GenerationClear);

        // The clear mode wiped the cache; the keyed mode evicted only
        // delta-affected shapes and never cleared.
        assert_eq!(keyed.generation_clears, 0, "keyed mode must not clear");
        assert!(clear.generation_clears >= 1, "clear mode must clear");
        assert!(
            keyed.keyed_invalidations > 0,
            "the flip must invalidate some keyed entries"
        );
        let units = keyed.delta_units.expect("keyed mode published a delta");
        assert!(units > 0);

        // Both modes serve identical answers, so steady-state windows
        // match; the flip window is where they part ways.
        let (kd, cd) = (keyed.dip(), clear.dip());
        assert!(
            kd < cd,
            "keyed dip {kd:.3} must be smaller than generation-clear dip {cd:.3}\n\
             keyed:  {:?}\nclear:  {:?}",
            keyed.hit_rate,
            clear.hit_rate,
        );
        // And the clear dip is substantial: the flip window re-misses
        // every block where keyed re-misses only the remapped ones.
        assert!(
            cd > kd * 2.0,
            "expected a decisive gap, got {kd:.3} vs {cd:.3}"
        );
    }
}
