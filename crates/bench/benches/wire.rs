//! The zero-allocation serve path, measured: the `*_into` codec variants
//! against persistent buffers, the full cached-hit and cold-miss shard
//! paths through [`eum_authd::ShardState`], and the stride-8 geo lookup.
//!
//! The wire messages here match `dns_codec.rs` and the shard scenario
//! matches `authd.rs`, so numbers are directly comparable with the
//! allocating variants (and with the pre-change baselines recorded in
//! `BENCH_pr3.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use eum_authd::{CacheConfig, QueryStages, ReplyCap, ServeOutcome, ShardState, SnapshotHandle};
use eum_bench::{tiny_internet, BENCH_SEED};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::name::name;
use eum_dns::{
    decode_message_into, encode_message, encode_message_into, Message, Question, Rcode, Record,
};
use eum_mapping::{MappingConfig, MappingSystem};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn typical_response() -> Message {
    let ecs = EcsOption::query("93.184.216.34".parse().unwrap(), 24);
    let q = Message::query(
        0x1234,
        Question::a(name("e42.cdn.example")),
        Some(OptData::with_ecs(ecs)),
    );
    let mut r = Message::response_to(&q, Rcode::NoError);
    r.answers.push(Record::a(
        name("e42.cdn.example"),
        20,
        "96.7.1.1".parse().unwrap(),
    ));
    r.answers.push(Record::a(
        name("e42.cdn.example"),
        20,
        "96.7.1.2".parse().unwrap(),
    ));
    r.set_opt(OptData::with_ecs(EcsOption {
        addr: "93.184.216.0".parse().unwrap(),
        source_prefix: 24,
        scope_prefix: 20,
    }));
    r
}

/// The `*_into` codec against reused buffers — the shape the serve path
/// actually runs, vs the allocating wrappers in `dns_codec.rs`.
fn bench_codec_into(c: &mut Criterion) {
    let response = typical_response();
    let response_bytes = encode_message(&response);

    let mut out = Vec::with_capacity(512);
    c.bench_function("encode_a_response_into", |b| {
        b.iter(|| {
            encode_message_into(black_box(&response), &mut out);
            black_box(out.len())
        })
    });
    let mut scratch = Message::empty();
    c.bench_function("decode_a_response_into", |b| {
        b.iter(|| {
            decode_message_into(black_box(&response_bytes), &mut scratch).unwrap();
            black_box(scratch.answers.len())
        })
    });
}

fn world() -> (eum_netmodel::Internet, MappingSystem) {
    let mut net = tiny_internet();
    let sites = deployment_universe(BENCH_SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(BENCH_SEED));
    let mapping = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, mapping)
}

/// The wire-format ECS query the shard benches serve.
fn ecs_query(client: Ipv4Addr) -> Vec<u8> {
    encode_message(&Message::query(
        7,
        Question::a("e0.cdn.example".parse().unwrap()),
        Some(OptData::with_ecs(EcsOption::query(client, 24))),
    ))
}

/// The full per-query shard path on a warm cache: decode into scratch,
/// scoped probe, memcpy + patch replay. This is the path the PR drives to
/// zero allocations.
fn bench_cached_hit(c: &mut Criterion) {
    let (net, mapping) = world();
    let client = net.blocks[0].client_ip();
    let resolver = net.resolvers[0].ip;
    let low = mapping.ns_ips()[1];
    let payload = ecs_query(client);
    let snapshots = SnapshotHandle::new(mapping);
    let snap = snapshots.current();

    let mut state = ShardState::new(Some(CacheConfig::default()));
    state.observe(&snap);
    // Warm: the first serve computes and inserts, the second must hit.
    let mut stages = QueryStages::new(false);
    state.serve(
        &snap.map,
        low,
        resolver,
        &payload,
        ReplyCap::udp(),
        &mut stages,
    );
    let warm = state.serve(
        &snap.map,
        low,
        resolver,
        &payload,
        ReplyCap::udp(),
        &mut stages,
    );
    assert_eq!(
        warm,
        ServeOutcome::Replied {
            cache_hit: true,
            truncated: false
        }
    );

    c.bench_function("authd_cached_hit_serve_path", |b| {
        b.iter(|| {
            let mut stages = QueryStages::new(false);
            let out = state.serve(
                &snap.map,
                low,
                resolver,
                black_box(&payload),
                ReplyCap::udp(),
                &mut stages,
            );
            debug_assert_eq!(
                out,
                ServeOutcome::Replied {
                    cache_hit: true,
                    truncated: false
                }
            );
            black_box(state.reply().len())
        })
    });
}

/// The same shard path with the cache disabled: decode into scratch,
/// route through the snapshot, encode into the reused reply buffer.
fn bench_cold_miss(c: &mut Criterion) {
    let (net, mapping) = world();
    let client = net.blocks[0].client_ip();
    let resolver = net.resolvers[0].ip;
    let low = mapping.ns_ips()[1];
    let payload = ecs_query(client);
    let snapshots = SnapshotHandle::new(mapping);
    let snap = snapshots.current();

    let mut state = ShardState::new(None);
    state.observe(&snap);
    c.bench_function("authd_cold_miss_serve_path", |b| {
        b.iter(|| {
            let mut stages = QueryStages::new(false);
            let out = state.serve(
                &snap.map,
                low,
                resolver,
                black_box(&payload),
                ReplyCap::udp(),
                &mut stages,
            );
            debug_assert_eq!(
                out,
                ServeOutcome::Replied {
                    cache_hit: false,
                    truncated: false
                }
            );
            black_box(state.reply().len())
        })
    });
}

/// LPM lookups against the jump-table trie, same table shape as the
/// pre-change baseline: /8 coarse routes, /16 mid, /24 leaves.
fn bench_geo_lookup(c: &mut Criterion) {
    use eum_geo::{Asn, Country, GeoDb, GeoInfo, GeoPoint, Prefix};
    let mut db = GeoDb::new();
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 32) as u32
    };
    for i in 0..20_000u32 {
        let addr = next();
        let len = match i % 10 {
            0 => 8,
            1..=3 => 16,
            _ => 24,
        };
        db.insert(
            Prefix::new(addr, len),
            GeoInfo {
                point: GeoPoint::new(0.0, 0.0),
                country: Country::UnitedStates,
                asn: Asn(i),
            },
        );
    }
    let probes: Vec<Ipv4Addr> = (0..1024).map(|_| Ipv4Addr::from(next())).collect();
    let mut i = 0usize;
    c.bench_function("geo_lookup", |b| {
        b.iter(|| {
            i = (i + 1) & 1023;
            black_box(db.lookup(black_box(probes[i])))
        })
    });
}

criterion_group!(
    benches,
    bench_codec_into,
    bench_cached_hit,
    bench_cold_miss,
    bench_geo_lookup
);
criterion_main!(benches);
