//! Property tests for the resolver-side ECS cache: the RFC 7871 §7.3.1
//! reuse rules must hold against the same oracle the authd-side cache is
//! tested with, TTL expiry must never serve a stale answer, and negative
//! caching must honor RFC 2308's SOA-minimum rule end to end.

use eum_authd::ClientTransport;
use eum_dns::{
    decode_message, encode_message, DnsName, Message, RData, Rcode, Record, RrType, SoaData,
};
use eum_geo::Prefix;
use eum_ldns::{
    AnswerBody, CacheEntry, EcsPolicy, Ldns, LdnsCacheConfig, LdnsConfig, ResolverCache,
};
use proptest::prelude::*;
use std::io;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

fn qname() -> DnsName {
    "e0.cdn.example".parse().unwrap()
}

/// An entry whose first answer address encodes `marker`.
fn entry(marker: u32, scope: u8, ttl_s: u32, now: Instant) -> CacheEntry {
    CacheEntry::new(
        AnswerBody::Addresses(vec![Ipv4Addr::from(marker)]),
        scope,
        ttl_s,
        now,
    )
}

/// Recovers the marker.
fn marker_of(e: &CacheEntry) -> u32 {
    match &e.body {
        AnswerBody::Addresses(ips) => u32::from(ips[0]),
        other => panic!("marker entry is not an address answer: {other:?}"),
    }
}

proptest! {
    /// The resolver cache must implement the same §7.3.1 rule as the
    /// authoritative-side cache: a hit comes from the longest inserted
    /// scope block that contains the client and is no longer than the
    /// query's source prefix — with the global (scope-0) entry as the
    /// fallback eligible at any source prefix.
    #[test]
    fn scoped_reuse_matches_the_7871_oracle(
        inserts in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..24),
        probes in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..32),
    ) {
        let now = Instant::now();
        let mut cache = ResolverCache::new(LdnsCacheConfig::default(), now);
        // Model: block -> marker (None = the global entry), replace on
        // duplicate key exactly like the cache.
        let mut model: Vec<(Option<Prefix>, u32)> = Vec::new();
        for (i, (addr, len)) in inserts.iter().enumerate() {
            let block = (*len > 0).then(|| Prefix::of(Ipv4Addr::from(*addr), *len));
            cache.insert(qname(), RrType::A, block, entry(i as u32, *len, 3600, now));
            match model.iter_mut().find(|(b, _)| *b == block) {
                Some(slot) => slot.1 = i as u32,
                None => model.push((block, i as u32)),
            }
        }
        for (addr, source_prefix) in probes {
            let client = Ipv4Addr::from(addr);
            let hit = cache
                .lookup(&qname(), RrType::A, client, source_prefix, now)
                .map(marker_of);
            let expect = model
                .iter()
                .filter(|(b, _)| match b {
                    Some(b) => b.len() <= source_prefix && b.contains(client),
                    None => true, // global: eligible for every client
                })
                .max_by_key(|(b, _)| b.map(|b| b.len()).unwrap_or(0))
                .map(|(_, m)| *m);
            prop_assert_eq!(
                hit, expect,
                "client {}/{} hit {:?}, oracle says {:?}",
                client, source_prefix, hit, expect
            );
        }
    }

    /// A lookup must never return an entry past its TTL — whether or not
    /// the timer wheel has been advanced past the deadline — and the
    /// wheel must account for every insertion exactly once.
    #[test]
    fn expiry_never_serves_stale(
        inserts in proptest::collection::vec((0u8..200, 1u32..120), 1..32),
        probe_times in proptest::collection::vec(0u64..260, 1..40),
        advance_to in 0u64..260,
    ) {
        let t0 = Instant::now();
        let mut cache = ResolverCache::new(LdnsCacheConfig::default(), t0);
        // host byte -> (marker, ttl); distinct qnames via distinct hosts.
        let mut model: Vec<(DnsName, u32)> = Vec::new();
        for (i, (host, ttl_s)) in inserts.iter().enumerate() {
            let name: DnsName = format!("h{host}.cdn.example").parse().unwrap();
            cache.insert(name.clone(), RrType::A, None, entry(i as u32, 0, *ttl_s, t0));
            match model.iter_mut().find(|(n, _)| *n == name) {
                Some(slot) => slot.1 = *ttl_s,
                None => model.push((name, *ttl_s)),
            }
        }
        let inserted = model.len();

        let mut scratch = Vec::new();
        cache.advance(t0 + Duration::from_secs(advance_to), &mut scratch);

        // Probes run at/after the advance point, in time order: a
        // resolver's clock never runs backwards.
        let mut probes: Vec<u64> = probe_times.iter().map(|p| advance_to.max(*p)).collect();
        probes.sort_unstable();
        for at in probes {
            let now = t0 + Duration::from_secs(at);
            for (name, ttl_s) in &model {
                let hit = cache.lookup(name, RrType::A, Ipv4Addr::new(10, 0, 0, 1), 0, now);
                if at >= u64::from(*ttl_s) {
                    prop_assert!(
                        hit.is_none(),
                        "{name} served {}s past a {}s TTL",
                        at - u64::from(*ttl_s),
                        ttl_s
                    );
                } else {
                    // Not yet expired: still served, with a live TTL.
                    let e = hit.expect("live entry must be served");
                    prop_assert!(e.remaining_ttl_s(now) > 0);
                }
            }
        }
        // Conservation: everything inserted is either still live or was
        // counted out by the wheel / stale-drop path.
        let s = cache.stats();
        prop_assert_eq!(
            cache.len() as u64 + s.expirations + s.stale_drops,
            inserted as u64
        );
    }
}

// ---------------------------------------------------------------------
// RFC 2308: negative answers honor the SOA minimum, end to end.
// ---------------------------------------------------------------------

/// An upstream that answers every query NXDOMAIN, optionally with an SOA
/// whose TTL/minimum it controls.
struct NegativeUpstream {
    soa: Option<(u32, u32)>,
}

impl ClientTransport for NegativeUpstream {
    fn exchange(
        &mut self,
        _shard: usize,
        _server_ip: Ipv4Addr,
        _resolver_ip: Ipv4Addr,
        payload: &[u8],
        _timeout: Duration,
    ) -> io::Result<Vec<u8>> {
        let query = decode_message(payload).expect("resolver sends well-formed queries");
        let mut resp = Message::response_to(&query, Rcode::NxDomain);
        if let Some((ttl, minimum)) = self.soa {
            resp.authorities.push(Record {
                name: "cdn.example".parse().unwrap(),
                ttl,
                rdata: RData::Soa(SoaData {
                    mname: "ns.cdn.example".parse().unwrap(),
                    rname: "ops.cdn.example".parse().unwrap(),
                    serial: 1,
                    refresh: 300,
                    retry: 60,
                    expire: 86_400,
                    minimum,
                }),
            });
        }
        Ok(encode_message(&resp))
    }

    fn num_shards(&self) -> usize {
        1
    }
}

proptest! {
    /// The negative TTL the resolver caches (and reports downstream) is
    /// `min(SOA record TTL, SOA MINIMUM)` clamped to the configured
    /// ceiling — and the configured default when no SOA is present.
    #[test]
    fn negative_ttl_honors_soa_minimum(
        soa_ttl in 0u32..10_000,
        soa_minimum in 0u32..10_000,
        with_soa in any::<bool>(),
    ) {
        let t0 = Instant::now();
        let cfg = LdnsConfig::new(Ipv4Addr::new(192, 0, 2, 53), EcsPolicy::Off);
        let max_neg = cfg.cache.max_negative_ttl_s;
        let default_neg = cfg.default_negative_ttl_s;
        let mut ldns = Ldns::new(cfg, t0);
        let mut upstream = NegativeUpstream {
            soa: with_soa.then_some((soa_ttl, soa_minimum)),
        };

        let res = ldns.resolve(
            &mut upstream,
            0,
            Ipv4Addr::new(198, 51, 100, 1),
            &qname(),
            Ipv4Addr::new(10, 0, 0, 1),
            t0,
        );
        prop_assert_eq!(res.rcode, Rcode::NxDomain);
        let expect = if with_soa {
            soa_ttl.min(soa_minimum).clamp(1, max_neg)
        } else {
            default_neg.clamp(1, max_neg)
        };
        prop_assert_eq!(res.ttl_s, expect);

        // The negative entry is actually cached: a repeat within the TTL
        // costs no upstream query.
        let again = ldns.resolve(
            &mut upstream,
            0,
            Ipv4Addr::new(198, 51, 100, 1),
            &qname(),
            Ipv4Addr::new(10, 0, 0, 99),
            t0,
        );
        prop_assert_eq!(again.rcode, Rcode::NxDomain);
        prop_assert!(again.from_cache);
        prop_assert_eq!(again.upstream_queries, 0);
    }
}
