#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Reproduction harness: one function per figure of the paper.
//!
//! Every figure in the evaluation (Figures 2 and 5–25) has a rendering
//! function here that regenerates the same rows/series from the simulated
//! world, plus a thin binary (`src/bin/figXX.rs`) that builds the
//! prerequisites and prints it. `reproduce-all` runs everything off one
//! shared world/roll-out and writes the outputs under `results/`.
//!
//! Figures fall into three prerequisite groups:
//!
//! * **§3 figures (5–11, 21, 22)** need only the synthetic Internet and
//!   the NetSession pair dataset — [`World3`];
//! * **§4/§5 figures (2, 12–20, 23, 24)** need a full roll-out run —
//!   [`rollout_report`];
//! * **§6 (25)** runs the deployment study — [`figures56::fig25`].

pub mod figures3;
pub mod figures4;
pub mod figures56;

use eum_netmodel::{Internet, InternetConfig};
use eum_sim::{PairDataset, RolloutReport, Scenario, ScenarioConfig};

/// The standard seed used by every reproduction binary.
pub const SEED: u64 = 0x5EED;

/// The effective seed: `--seed <value>` (decimal or 0x-hex) overrides the
/// default, so sensitivity to the random universe can be checked without
/// recompiling.
pub fn effective_seed() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--seed" {
            let v = &w[1];
            let parsed = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                v.parse().ok()
            };
            match parsed {
                Some(seed) => return seed,
                None => eprintln!("[repro] ignoring unparsable --seed {v}"),
            }
        }
    }
    SEED
}

/// Scale selector: `Paper` is the default reproduction scale (tens of
/// thousands of client blocks, 100 clusters, 181 simulated days); `Quick`
/// is a smaller world for smoke runs (`--quick`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reproduction scale (default).
    Paper,
    /// Fast smoke-test scale.
    Quick,
}

impl Scale {
    /// Parses process arguments: `--quick` selects [`Scale::Quick`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick" || a == "-q") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// The Internet configuration at this scale (honors `--seed`).
    pub fn internet_config(&self) -> InternetConfig {
        match self {
            Scale::Paper => InternetConfig::paper(effective_seed()),
            Scale::Quick => InternetConfig::small(effective_seed()),
        }
    }

    /// The scenario configuration at this scale (honors `--seed`).
    pub fn scenario_config(&self) -> ScenarioConfig {
        match self {
            Scale::Paper => ScenarioConfig::paper(effective_seed()),
            Scale::Quick => ScenarioConfig::small(effective_seed()),
        }
    }

    /// Short label for output headers.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }
}

/// The §3 world: the synthetic Internet plus the NetSession dataset.
pub struct World3 {
    /// The synthetic Internet.
    pub net: Internet,
    /// The client–LDNS pair dataset.
    pub ds: PairDataset,
}

/// Builds the §3 world at the given scale.
pub fn build_world3(scale: Scale) -> World3 {
    let net = Internet::generate(scale.internet_config());
    let ds = PairDataset::collect(&net);
    World3 { net, ds }
}

/// Runs the §4 roll-out scenario at the given scale (minutes at paper
/// scale; progress goes to stderr).
pub fn rollout_report(scale: Scale) -> RolloutReport {
    eprintln!(
        "[repro] building scenario ({}) and replaying the roll-out; this takes a while…",
        scale.label()
    );
    let scenario = Scenario::build(scale.scenario_config());
    let report = scenario.run_rollout();
    eprintln!("[repro] roll-out done: {} RUM samples", report.rum.len());
    report
}

/// Renders a standard figure header.
pub fn header(fig: &str, caption: &str, scale: Scale) -> String {
    format!(
        "=== {fig} ({} scale, seed {:#x}) ===\n{caption}\n\n",
        scale.label(),
        effective_seed(),
    )
}

/// Formats a float with sensible width for tables.
pub fn f(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}
