//! TCP transfer-time and page-timing models.
//!
//! Produces the two client-side metrics of paper §4.1:
//!
//! * **TTFB** — "duration from when the client makes a HTTP request …
//!   to when the first byte … was received": one client–server RTT
//!   (request up + first byte down) plus server page-construction time,
//!   plus the origin fetch when the page is dynamic or missed cache.
//! * **Content download time** — "from the receiving of the first byte …
//!   to completing the download": a slow-start-aware transfer of the page
//!   body and embedded objects, dominated by client–server RTT.
//!
//! The TCP model is intentionally standard: IW10, per-RTT cwnd doubling to
//! a cap, and a loss term that stretches rounds by the expected
//! retransmission cost. It does not simulate individual packets — the
//! paper's metrics are aggregate timings, and this closed form captures
//! their RTT dependence, which is what the roll-out changes.

use serde::{Deserialize, Serialize};

/// TCP model parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TcpModel {
    /// Initial congestion window, segments (RFC 6928's IW10).
    pub init_cwnd: f64,
    /// Maximum effective window, segments (receive-window / bandwidth cap).
    pub max_cwnd: f64,
    /// Segment payload, kilobytes (1460 B MSS).
    pub mss_kb: f64,
}

impl Default for TcpModel {
    fn default() -> Self {
        TcpModel {
            init_cwnd: 10.0,
            max_cwnd: 256.0,
            mss_kb: 1.46,
        }
    }
}

impl TcpModel {
    /// Time to deliver `size_kb` after the first byte is flowing, in ms.
    ///
    /// Counts the number of additional round trips slow start needs beyond
    /// the first window, then stretches by a loss factor: each lost
    /// segment costs roughly one extra RTT for fast retransmit, so the
    /// expected stretch is `1 + loss_rate × retx_cost`.
    pub fn transfer_ms(&self, size_kb: f64, rtt_ms: f64, loss_rate: f64) -> f64 {
        if size_kb <= 0.0 {
            return 0.0;
        }
        let segments = (size_kb / self.mss_kb).ceil();
        let mut sent = self.init_cwnd;
        let mut cwnd = self.init_cwnd;
        let mut rounds = 0u32;
        while sent < segments {
            cwnd = (cwnd * 2.0).min(self.max_cwnd);
            sent += cwnd;
            rounds += 1;
        }
        let loss_stretch = 1.0 + loss_rate.clamp(0.0, 0.05) * 8.0;
        // The final window drains within the same RTT as its first byte,
        // so `rounds` full RTTs plus half an RTT of serialization tail.
        (rounds as f64 * rtt_ms + 0.5 * rtt_ms.min(20.0)) * loss_stretch
    }

    /// TCP connection establishment: one RTT (SYN + SYN-ACK).
    pub fn handshake_ms(&self, rtt_ms: f64) -> f64 {
        rtt_ms
    }
}

/// Inputs to one page-load timing computation.
#[derive(Debug, Clone, Copy)]
pub struct PageLoadInputs {
    /// Client ↔ edge server RTT, ms.
    pub rtt_ms: f64,
    /// Client ↔ edge server loss rate.
    pub loss_rate: f64,
    /// Server page-construction time, ms.
    pub server_time_ms: f64,
    /// Origin fetch latency if the load needs origin (dynamic base page or
    /// cache miss); `None` when served from cache.
    pub origin_fetch_ms: Option<f64>,
    /// Base page size, KB.
    pub base_size_kb: f64,
    /// Total embedded-object bytes fetched from the edge, KB.
    pub embedded_kb: f64,
    /// Embedded-object bytes that missed cache and add origin round trips,
    /// as (bytes KB, per-miss origin latency ms) pairs aggregated.
    pub embedded_miss_penalty_ms: f64,
}

/// The client-observed timings for one page load (what RUM measures).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageTimings {
    /// Time-to-first-byte, ms.
    pub ttfb_ms: f64,
    /// Content download time, ms.
    pub download_ms: f64,
}

/// Computes §4.1's TTFB and content-download-time for one page view.
pub fn page_timings(tcp: &TcpModel, inputs: &PageLoadInputs) -> PageTimings {
    // TTFB: request up (rtt/2) + server work (+origin) + first byte down
    // (rtt/2). The TCP handshake precedes the HTTP request and is *not*
    // part of TTFB per the paper's definition (navigation-timing
    // requestStart → responseStart).
    let ttfb_ms = inputs.rtt_ms + inputs.server_time_ms + inputs.origin_fetch_ms.unwrap_or(0.0);
    // Download: the base page body plus embedded objects. Embedded objects
    // ride warm parallel connections to the same server; modeling them as
    // one aggregate transfer preserves the RTT scaling (they share the
    // bottleneck) while staying closed-form. Cache misses on embedded
    // objects add their origin penalty.
    let body_ms = tcp.transfer_ms(inputs.base_size_kb, inputs.rtt_ms, inputs.loss_rate);
    let embedded_ms = tcp.transfer_ms(inputs.embedded_kb / 3.0, inputs.rtt_ms, inputs.loss_rate);
    let download_ms = body_ms + embedded_ms + inputs.embedded_miss_penalty_ms;
    PageTimings {
        ttfb_ms,
        download_ms,
    }
}

/// Origin fetch latency via the overlay network (§4.1: "Overlay transport
/// is used to speedup origin-server communication").
///
/// The edge can fetch directly or relay through one intermediate cluster;
/// the overlay picks the best. Real paths frequently violate the triangle
/// inequality because of path inflation, so a relay with two short
/// inflated legs often beats one long inflated leg — exactly the effect
/// overlay networks exploit.
pub fn overlay_fetch_ms(
    direct_rtt_ms: f64,
    relay_legs: impl IntoIterator<Item = (f64, f64)>,
    origin_time_ms: f64,
) -> f64 {
    let mut best = direct_rtt_ms;
    for (leg_a, leg_b) in relay_legs {
        // Small per-hop forwarding cost.
        let via = leg_a + leg_b + 1.0;
        if via < best {
            best = via;
        }
    }
    best + origin_time_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp() -> TcpModel {
        TcpModel::default()
    }

    #[test]
    fn empty_transfer_is_free() {
        assert_eq!(tcp().transfer_ms(0.0, 50.0, 0.0), 0.0);
    }

    #[test]
    fn one_window_needs_no_extra_round() {
        // 10 KB < IW10 × 1.46 KB ≈ 14.6 KB ⇒ zero extra rounds, only tail.
        let t = tcp().transfer_ms(10.0, 100.0, 0.0);
        assert!(t <= 10.0 + 1e-9, "got {t}");
    }

    #[test]
    fn transfer_time_grows_with_size_and_rtt() {
        let m = tcp();
        let small = m.transfer_ms(50.0, 50.0, 0.0);
        let big = m.transfer_ms(500.0, 50.0, 0.0);
        assert!(big > small);
        let slow = m.transfer_ms(500.0, 100.0, 0.0);
        assert!(slow > big);
        // Doubling RTT roughly doubles a multi-round transfer.
        assert!((slow / big - 2.0).abs() < 0.25, "ratio {}", slow / big);
    }

    #[test]
    fn slow_start_rounds_are_logarithmic() {
        let m = tcp();
        // 100 KB ≈ 69 segments: 10 + 20 + 40 = 70 ⇒ 2 extra rounds.
        let t = m.transfer_ms(100.0, 100.0, 0.0);
        assert!((t - 210.0).abs() < 1.0, "got {t}");
    }

    #[test]
    fn loss_stretches_transfers() {
        let m = tcp();
        let clean = m.transfer_ms(500.0, 80.0, 0.0);
        let lossy = m.transfer_ms(500.0, 80.0, 0.02);
        assert!(lossy > clean * 1.1);
    }

    #[test]
    fn ttfb_includes_origin_only_when_needed() {
        let base = PageLoadInputs {
            rtt_ms: 100.0,
            loss_rate: 0.0,
            server_time_ms: 20.0,
            origin_fetch_ms: None,
            base_size_kb: 50.0,
            embedded_kb: 200.0,
            embedded_miss_penalty_ms: 0.0,
        };
        let cached = page_timings(&tcp(), &base);
        assert!((cached.ttfb_ms - 120.0).abs() < 1e-9);
        let dynamic = page_timings(
            &tcp(),
            &PageLoadInputs {
                origin_fetch_ms: Some(80.0),
                ..base
            },
        );
        assert!((dynamic.ttfb_ms - 200.0).abs() < 1e-9);
        // Download time is unaffected by the origin component of TTFB.
        assert_eq!(cached.download_ms, dynamic.download_ms);
    }

    #[test]
    fn download_scales_with_rtt_as_the_paper_expects() {
        // §4.3: halving client–server RTT roughly halves download time.
        let mk = |rtt: f64| {
            page_timings(
                &tcp(),
                &PageLoadInputs {
                    rtt_ms: rtt,
                    loss_rate: 0.005,
                    server_time_ms: 20.0,
                    origin_fetch_ms: None,
                    base_size_kb: 60.0,
                    embedded_kb: 400.0,
                    embedded_miss_penalty_ms: 0.0,
                },
            )
            .download_ms
        };
        let ratio = mk(200.0) / mk(100.0);
        assert!((1.6..=2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn overlay_picks_best_path() {
        // Direct 150ms; relay legs 60+70 = 131 with hop cost ⇒ overlay wins.
        let t = overlay_fetch_ms(150.0, [(60.0, 70.0)], 10.0);
        assert!((t - 141.0).abs() < 1e-9);
        // Bad relay: direct wins.
        let t = overlay_fetch_ms(100.0, [(90.0, 80.0)], 10.0);
        assert!((t - 110.0).abs() < 1e-9);
        // No relays at all.
        let t = overlay_fetch_ms(100.0, [], 5.0);
        assert!((t - 105.0).abs() < 1e-9);
    }

    #[test]
    fn handshake_is_one_rtt() {
        assert_eq!(tcp().handshake_ms(73.0), 73.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Transfer time is monotone in size, RTT, and loss.
        #[test]
        fn transfer_is_monotone(
            size in 1.0f64..5000.0,
            extra in 1.0f64..1000.0,
            rtt in 5.0f64..400.0,
            loss in 0.0f64..0.05,
        ) {
            let m = TcpModel::default();
            let base = m.transfer_ms(size, rtt, loss);
            prop_assert!(base.is_finite() && base >= 0.0);
            prop_assert!(m.transfer_ms(size + extra, rtt, loss) >= base);
            prop_assert!(m.transfer_ms(size, rtt * 1.5, loss) >= base);
            prop_assert!(m.transfer_ms(size, rtt, (loss + 0.01).min(0.05)) >= base);
        }

        /// TTFB decomposes exactly: rtt + server time + origin component.
        #[test]
        fn ttfb_decomposition(
            rtt in 1.0f64..500.0,
            server in 0.0f64..100.0,
            origin in proptest::option::of(0.0f64..500.0),
        ) {
            let t = page_timings(
                &TcpModel::default(),
                &PageLoadInputs {
                    rtt_ms: rtt,
                    loss_rate: 0.0,
                    server_time_ms: server,
                    origin_fetch_ms: origin,
                    base_size_kb: 10.0,
                    embedded_kb: 10.0,
                    embedded_miss_penalty_ms: 0.0,
                },
            );
            let expect = rtt + server + origin.unwrap_or(0.0);
            prop_assert!((t.ttfb_ms - expect).abs() < 1e-9);
        }

        /// The overlay never does worse than the direct path.
        #[test]
        fn overlay_never_hurts(
            direct in 1.0f64..500.0,
            legs in proptest::collection::vec((1.0f64..500.0, 1.0f64..500.0), 0..8),
            origin in 0.0f64..50.0,
        ) {
            let t = overlay_fetch_ms(direct, legs.clone(), origin);
            prop_assert!(t <= direct + origin + 1e-9);
            for (a, b) in legs {
                prop_assert!(t <= a + b + 1.0 + origin + 1e-9);
            }
        }
    }
}
