//! Typed indices into the [`Internet`](crate::Internet) arenas.
//!
//! Using newtypes instead of raw `usize` keeps the cross-crate API honest:
//! a block index cannot be confused with a resolver index, and IDs are
//! `Copy + Ord + Hash` so they work as map keys everywhere.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name(pub u32);

        impl $name {
            /// The index as a usize, for arena access.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(u32::try_from(v).expect("arena index fits in u32"))
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

id_type! {
    /// Index of an autonomous system in [`Internet::ases`](crate::Internet::ases).
    AsId
}
id_type! {
    /// Index of a /24 client block in [`Internet::blocks`](crate::Internet::blocks).
    BlockId
}
id_type! {
    /// Index of a recursive resolver (LDNS) endpoint in
    /// [`Internet::resolvers`](crate::Internet::resolvers).
    ResolverId
}
id_type! {
    /// Index of a public resolver provider in
    /// [`Internet::providers`](crate::Internet::providers).
    ProviderId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_usize() {
        let id = BlockId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(id, BlockId(42));
    }

    #[test]
    fn display_includes_kind() {
        assert_eq!(AsId(7).to_string(), "AsId#7");
        assert_eq!(ResolverId(0).to_string(), "ResolverId#0");
    }

    #[test]
    #[should_panic(expected = "fits in u32")]
    fn from_huge_usize_panics() {
        let _ = BlockId::from(u32::MAX as usize + 1);
    }
}
