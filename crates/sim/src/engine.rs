//! A minimal discrete-event simulation engine.
//!
//! Time is milliseconds from scenario start ([`SimTime`]). The queue is a
//! stable priority queue: events at equal times dequeue in insertion
//! order, which keeps the whole simulation deterministic — a property
//! every reproduction binary depends on (same seed ⇒ same figures).

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in milliseconds since scenario start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Milliseconds per simulated day.
    pub const DAY_MS: u64 = 24 * 60 * 60 * 1000;

    /// Start of a given day index.
    pub fn from_days(days: u32) -> SimTime {
        SimTime(days as u64 * Self::DAY_MS)
    }

    /// The day index containing this instant.
    pub fn day(&self) -> u32 {
        (self.0 / Self::DAY_MS) as u32
    }

    /// Milliseconds value.
    pub fn ms(&self) -> u64 {
        self.0
    }

    /// This instant plus `ms` milliseconds.
    pub fn plus_ms(&self, ms: u64) -> SimTime {
        SimTime(self.0 + ms)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: SimTime,
    seq: u64,
}

/// A deterministic min-time event queue.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Key, EventSlot)>>,
    events: Vec<Option<E>>,
    free: Vec<usize>,
    seq: u64,
}

/// Index into the event arena (keeps `E: Ord` off the requirements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventSlot(usize);

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let slot = match self.free.pop() {
            Some(i) => {
                self.events[i] = Some(event);
                i
            }
            None => {
                self.events.push(Some(event));
                self.events.len() - 1
            }
        };
        let key = Key {
            time,
            seq: self.seq,
        };
        self.seq += 1;
        self.heap.push(Reverse((key, EventSlot(slot))));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((key, slot)) = self.heap.pop()?;
        let event = self.events[slot.0]
            .take()
            .expect("slot holds the scheduled event");
        self.free.push(slot.0);
        Some((key.time, event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((k, _))| k.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_day_arithmetic() {
        let t = SimTime::from_days(3).plus_ms(5_000);
        assert_eq!(t.day(), 3);
        assert_eq!(t.ms(), 3 * SimTime::DAY_MS + 5_000);
        assert_eq!(SimTime(SimTime::DAY_MS - 1).day(), 0);
        assert_eq!(SimTime(SimTime::DAY_MS).day(), 1);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(42), ());
        assert_eq!(q.peek_time(), Some(SimTime(42)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(42));
        assert!(q.is_empty());
    }

    #[test]
    fn slots_are_reused() {
        let mut q = EventQueue::new();
        for round in 0..50 {
            q.schedule(SimTime(round), round);
            let _ = q.pop();
        }
        assert!(q.events.len() <= 2, "arena grew to {}", q.events.len());
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The queue dequeues in (time, insertion order) against a
            /// reference stable sort, under arbitrary interleavings.
            #[test]
            fn matches_stable_sort(times in proptest::collection::vec(0u64..100, 0..80)) {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.schedule(SimTime(*t), i);
                }
                let mut expect: Vec<(u64, usize)> =
                    times.iter().enumerate().map(|(i, t)| (*t, i)).collect();
                expect.sort_by_key(|(t, i)| (*t, *i));
                let got: Vec<(u64, usize)> =
                    std::iter::from_fn(|| q.pop().map(|(t, e)| (t.0, e))).collect();
                prop_assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(30), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(SimTime(20), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop(), None);
    }
}
