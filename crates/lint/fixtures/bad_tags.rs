// Fixture for the config rule's tag validation.

fn f(v: Option<u32>) -> u32 {
    // lint: allow(not-a-real-rule) — typo'd rule names must be errors
    let a = v.unwrap_or(1);
    // lint: allow(serve-panic)
    let b = v.unwrap_or(2);
    a + b
}
