//! Offline stub of the `bytes` crate.
//!
//! Implements exactly the subset the DNS codec uses: the [`Buf`] /
//! [`BufMut`] traits (big-endian integer accessors), [`BytesMut`] as a
//! growable buffer, and [`Bytes`] as an immutable cursor. Semantics match
//! the real crate for this subset — including panics on overrun, which the
//! codec never triggers because it checks `remaining()` first.

#![warn(missing_docs)]

/// Read-side byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte (big-endian accessors panic when short, as upstream).
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "buffer underflow");
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Copies `dst.len()` bytes out of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

/// Immutable byte container with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static slice (copied; the stub does not share storage).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.pos += cnt;
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0x1234);
        b.put_u32(0xDEADBEEF);
        b.put_slice(&[1, 2]);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 9);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        let mut out = [0u8; 2];
        r.copy_to_slice(&mut out);
        assert_eq!(out, [1, 2]);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_buf_advances() {
        let mut s: &[u8] = &[0, 8, 0, 1];
        assert_eq!(s.get_u16(), 8);
        assert_eq!(s.remaining(), 2);
    }
}
