//! The synthetic Internet generator.
//!
//! Builds, from a single seed, the full population the paper measures:
//! autonomous systems of three tiers, /24 client blocks with heavy-tailed
//! demand placed around real city centers, resolver infrastructure
//! (self-hosted anycast, outsourced, enterprise-centralized, and public
//! anycast providers), client→LDNS usage weights, a BGP CIDR table, and a
//! populated geolocation database.
//!
//! Design notes on fidelity:
//!
//! * Per-block demand is Pareto(α ≈ 1.1), which yields the strong demand
//!   concentration of Figure 21 (a small fraction of blocks/LDNSes carry
//!   most demand).
//! * Large ISPs get one resolver site per selected city and clients reach
//!   them by modeled anycast, so intra-ISP client–LDNS distances are small
//!   but non-zero — the bulk of Figure 5's mass near metro scale.
//! * Small ISPs outsource DNS with configurable probability; enterprises
//!   centralize; both create the long tail of Figures 5 and 10.
//! * Public providers route by global anycast with misroutes and per-AS
//!   peering quirks; their site maps omit South America and India, so
//!   clients there land on other continents — the Figure 8 extremes.

use crate::asys::{AsInfo, AsTier, ResolverPolicy};
use crate::block::ClientBlock;
use crate::config::{access_ms, demand_weight, public_adoption, InternetConfig};
use crate::ids::{AsId, BlockId, ProviderId, ResolverId};
use crate::resolver::{AnycastRouter, PublicProvider, Resolver, ResolverKind};
use crate::{BgpTable, Endpoint, Internet, LatencyModel};
use eum_geo::city::cities_of;
use eum_geo::{Asn, Country, GeoDb, GeoInfo, GeoPoint, Prefix};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// First /24 index of the client block space (11.0.0.0).
const CLIENT_BASE_24: u32 = 11 << 16;
/// First /24 index of the infrastructure space (192.0.0.0).
const INFRA_BASE_24: u32 = 192 << 16;

/// SplitMix64 mixer for stable non-RNG noise channels.
fn mix(seed: u64, a: u64, b: u64, salt: u64) -> u64 {
    let mut x =
        seed ^ a.rotate_left(17) ^ b.rotate_left(40) ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Samples an index proportional to `weights`. Panics on an empty slice;
/// treats non-positive totals as uniform.
fn pick_index(rng: &mut ChaCha12Rng, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "pick_index over empty weights");
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.random_range(0..weights.len());
    }
    let mut r = rng.random_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        r -= w;
        if r <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

struct Builder {
    cfg: InternetConfig,
    rng: ChaCha12Rng,
    latency: LatencyModel,
    next_client_24: u32,
    next_infra_24: u32,
    ases: Vec<AsInfo>,
    blocks: Vec<ClientBlock>,
    resolvers: Vec<Resolver>,
    providers: Vec<PublicProvider>,
    bgp: BgpTable,
    geodb: GeoDb,
    country_list: Vec<Country>,
    country_weights: Vec<f64>,
}

impl Builder {
    fn new(cfg: InternetConfig) -> Self {
        let rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let latency = LatencyModel::new(cfg.seed ^ 0x004C_4154_454E_4359_u64);
        let country_list: Vec<Country> = Country::ALL.to_vec();
        let country_weights: Vec<f64> = country_list.iter().map(|c| demand_weight(*c)).collect();
        Builder {
            cfg,
            rng,
            latency,
            next_client_24: CLIENT_BASE_24,
            next_infra_24: INFRA_BASE_24,
            ases: Vec::new(),
            blocks: Vec::new(),
            resolvers: Vec::new(),
            providers: Vec::new(),
            bgp: BgpTable::new(),
            geodb: GeoDb::new(),
            country_list,
            country_weights,
        }
    }

    fn alloc_infra_24(&mut self) -> Prefix {
        let p = Prefix::new(self.next_infra_24 << 8, 24);
        self.next_infra_24 += 1;
        p
    }

    fn add_resolver(
        &mut self,
        loc: GeoPoint,
        country: Country,
        asn: Asn,
        kind: ResolverKind,
    ) -> ResolverId {
        let id = ResolverId::from(self.resolvers.len());
        let prefix = self.alloc_infra_24();
        // Resolvers answer on .53 of their /24.
        let ip = std::net::Ipv4Addr::from(prefix.addr() | 53);
        self.geodb.insert(
            prefix,
            GeoInfo {
                point: loc,
                country,
                asn,
            },
        );
        self.bgp.announce(prefix, asn);
        self.resolvers.push(Resolver {
            id,
            ip,
            loc,
            country,
            asn,
            kind,
        });
        id
    }

    /// Places a location near a city: exponential distance (mean
    /// `mean_miles`), uniform direction.
    fn scatter(&mut self, center: GeoPoint, mean_miles: f64) -> GeoPoint {
        let u: f64 = self.rng.random_range(0.0f64..1.0);
        let dist = -(1.0 - u).ln() * mean_miles;
        let theta: f64 = self.rng.random_range(0.0..std::f64::consts::TAU);
        center.offset_miles(dist * theta.sin(), dist * theta.cos())
    }

    fn sample_country(&mut self) -> Country {
        let weights = self.country_weights.clone();
        self.country_list[pick_index(&mut self.rng, &weights)]
    }

    /// Samples a city of `country` by weight.
    fn sample_city(&mut self, country: Country) -> &'static eum_geo::City {
        let cities: Vec<&'static eum_geo::City> = cities_of(country).collect();
        let weights: Vec<f64> = cities.iter().map(|c| c.weight).collect();
        cities[pick_index(&mut self.rng, &weights)]
    }

    fn sample_provider(&mut self) -> ProviderId {
        let weights: Vec<f64> = self.providers.iter().map(|p| p.popularity).collect();
        self.providers[pick_index(&mut self.rng, &weights)].id
    }

    fn build_providers(&mut self) {
        for (pi, tpl) in self.cfg.providers.clone().into_iter().enumerate() {
            let provider = ProviderId(pi as u32);
            let asn = Asn(30_000 + pi as u32);
            let mut sites = Vec::new();
            for (si, city_name) in tpl.site_cities.iter().enumerate() {
                let city = eum_geo::GAZETTEER
                    .iter()
                    .find(|c| c.name == city_name)
                    .unwrap_or_else(|| panic!("provider city {city_name} not in gazetteer"));
                let id = self.add_resolver(
                    city.point(),
                    city.country,
                    asn,
                    ResolverKind::PublicSite {
                        provider,
                        site: si as u16,
                    },
                );
                sites.push(id);
            }
            self.providers.push(PublicProvider {
                id: provider,
                name: tpl.name,
                sites,
                supports_ecs: tpl.supports_ecs,
                popularity: tpl.popularity,
            });
        }
    }

    /// Routes a client endpoint to a public provider site, honoring per-AS
    /// peering quirks and anycast misroutes.
    fn provider_catchment(
        &self,
        block_prefix: Prefix,
        block_ep: &Endpoint,
        as_asn: Asn,
        provider: ProviderId,
    ) -> ResolverId {
        let prov = &self.providers[provider.0 as usize];
        let site_eps: Vec<Endpoint> = prov
            .sites
            .iter()
            .map(|r| self.resolvers[r.index()].endpoint())
            .collect();
        let quirk = unit(mix(self.cfg.seed, as_asn.0 as u64, provider.0 as u64, 0xF0))
            < self.cfg.peering_quirk_prob;
        if quirk {
            // Peering pins the whole AS to the nearest site *outside* the
            // client's region (or falls through to anycast if none exists).
            let region = block_ep.country.region();
            let mut best: Option<(usize, f64)> = None;
            for (i, s) in site_eps.iter().enumerate() {
                if s.country.region() == region {
                    continue;
                }
                let r = self.latency.rtt_ms(block_ep, s);
                if best.is_none_or(|(_, b)| r < b) {
                    best = Some((i, r));
                }
            }
            if let Some((i, _)) = best {
                return prov.sites[i];
            }
        }
        let router = AnycastRouter::new(self.latency, self.cfg.misroute_prob);
        let noise = unit(mix(
            self.cfg.seed,
            block_prefix.addr() as u64,
            provider.0 as u64,
            0xF1,
        ));
        let idx = router.route(block_ep, &site_eps, noise);
        prov.sites[idx]
    }

    /// Creates one AS's blocks: allocates a contiguous /24 range, places
    /// each block near a sampled placement center, assigns demand. Returns
    /// the block-arena index range.
    fn create_blocks(
        &mut self,
        as_id: AsId,
        asn: Asn,
        count: usize,
        placement: &[(GeoPoint, Country, f64)],
        metro_mean_miles: f64,
    ) -> std::ops::Range<u32> {
        let start = self.blocks.len() as u32;
        let start_24 = self.next_client_24;
        self.next_client_24 += count as u32;
        let weights: Vec<f64> = placement.iter().map(|p| p.2).collect();
        for i in 0..count {
            let id = BlockId::from(self.blocks.len());
            let prefix = Prefix::new((start_24 + i as u32) << 8, 24);
            let (center, country, _) = placement[pick_index(&mut self.rng, &weights)];
            // 10% of blocks are exurban/rural: much farther from center.
            let mean = if self.rng.random_bool(0.10) {
                metro_mean_miles * 6.0
            } else {
                metro_mean_miles
            };
            let loc = self.scatter(center, mean);
            let access = access_ms(country) * self.rng.random_range(0.6..1.6);
            // Pareto(α = 1.5) demand. Calibrated to Figure 21's block-side
            // concentration: roughly half of total demand comes from the
            // top ~10% of /24 blocks (paper: 430K of 3.76M).
            let u: f64 = self.rng.random_range(0.0f64..1.0);
            let demand = (1.0 / (1.0 - u)).powf(1.0 / 1.5).min(5e4);
            self.geodb.insert(
                prefix,
                GeoInfo {
                    point: loc,
                    country,
                    asn,
                },
            );
            self.blocks.push(ClientBlock {
                id,
                prefix,
                as_id,
                asn,
                loc,
                country,
                access_ms: access,
                demand,
                ldns: Vec::new(), // filled by assign_ldns
            });
        }
        // Announce the range as aligned CIDRs, occasionally deaggregated.
        for (idx24, len) in cover_range(start_24, start_24 + count as u32) {
            let deagg = unit(mix(self.cfg.seed, idx24 as u64, len as u64, 0xB6)) < 0.3 && len < 24;
            if deagg {
                let half = 1u32 << (24 - len - 1) as u32;
                self.bgp.announce(Prefix::new(idx24 << 8, len + 1), asn);
                self.bgp
                    .announce(Prefix::new((idx24 + half) << 8, len + 1), asn);
            } else {
                self.bgp.announce(Prefix::new(idx24 << 8, len), asn);
            }
        }
        start..start + count as u32
    }

    fn city_placement(country: Country) -> Vec<(GeoPoint, Country, f64)> {
        cities_of(country)
            .map(|c| (c.point(), country, c.weight))
            .collect()
    }

    fn build_large_isps(&mut self) {
        // Every major country gets a national ISP before extras are
        // sampled by demand weight — without this floor, countries that
        // randomly miss out on large ISPs would look implausibly
        // public-resolver-heavy in Figure 9.
        let top = Country::paper_top25();
        for i in 0..self.cfg.n_large_isps {
            let as_id = AsId::from(self.ases.len());
            let asn = Asn(1_000 + i as u32);
            let country = if i < top.len() {
                top[i]
            } else {
                self.sample_country()
            };
            let cities: Vec<_> = cities_of(country).collect();
            // National ISPs run resolver sites in (nearly) every metro they
            // serve — that per-metro anycast presence is why the paper's
            // Figure 10 shows small distances for the largest ASes.
            let n_sites = cities
                .len()
                .saturating_sub(self.rng.random_range(0..=1usize))
                .max(1);
            // Resolver sites at the n_sites heaviest cities.
            let mut by_weight = cities.clone();
            by_weight.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite"));
            let site_points: Vec<GeoPoint> =
                by_weight.iter().take(n_sites).map(|c| c.point()).collect();
            let mut sites = Vec::new();
            for pt in site_points {
                let loc = self.scatter(pt, 5.0);
                let id =
                    self.add_resolver(loc, country, asn, ResolverKind::IspSite { owner: as_id });
                sites.push(id);
            }
            let u: f64 = self.rng.random_range(0.0f64..1.0);
            let raw = 100.0 + 1400.0 * u.powf(2.5);
            let count = ((raw * self.cfg.block_scale) as usize).max(4);
            let placement = Self::city_placement(country);
            let blocks = self.create_blocks(as_id, asn, count, &placement, 55.0);
            self.ases.push(AsInfo {
                id: as_id,
                asn,
                tier: AsTier::LargeIsp,
                country,
                blocks,
                policy: ResolverPolicy::SelfHosted { sites },
                demand: 0.0,
            });
        }
    }

    fn build_small_isps(&mut self) {
        for i in 0..self.cfg.n_small_isps {
            let as_id = AsId::from(self.ases.len());
            let asn = Asn(5_000 + i as u32);
            let country = self.sample_country();
            let city = self.sample_city(country);
            let city_point = city.point();
            let u: f64 = self.rng.random_range(0.0f64..1.0);
            let raw = 1.0 + 29.0 * u * u;
            let count = ((raw * self.cfg.block_scale) as usize).max(1);
            // Outsourcing is an economic decision; it correlates with the
            // same markets where clients adopt public resolvers directly
            // and is strongest for the smallest ISPs (§3.2's "smaller
            // AS'es include small local ISPs who are more likely to
            // 'outsource' their name server infrastructure") — this size
            // gradient is what Figure 10 measures.
            let size_factor = (2.2 - raw / 8.0).clamp(0.4, 2.0);
            let outsource_prob = (self.cfg.small_isp_outsource_prob
                * (0.4 + 4.0 * public_adoption(country))
                * size_factor)
                .clamp(0.05, 0.85);
            let outsourced = self.rng.random_bool(outsource_prob);
            let policy = if outsourced {
                let provider = self.sample_provider();
                ResolverPolicy::Outsourced { provider }
            } else {
                let loc = self.scatter(city_point, 5.0);
                let site =
                    self.add_resolver(loc, country, asn, ResolverKind::IspSite { owner: as_id });
                ResolverPolicy::SelfHosted { sites: vec![site] }
            };
            let placement = vec![(city_point, country, 1.0)];
            let blocks = self.create_blocks(as_id, asn, count, &placement, 60.0);
            self.ases.push(AsInfo {
                id: as_id,
                asn,
                tier: AsTier::SmallIsp,
                country,
                blocks,
                policy,
                demand: 0.0,
            });
        }
    }

    fn build_enterprises(&mut self) {
        for i in 0..self.cfg.n_enterprises {
            let as_id = AsId::from(self.ases.len());
            let asn = Asn(20_000 + i as u32);
            let hq_country = self.sample_country();
            let hq_city = self.sample_city(hq_country);
            let hq_point = hq_city.point();
            // Branch offices in 1–4 other countries.
            let mut placement = vec![(hq_point, hq_country, 2.0)];
            let n_branches = self.rng.random_range(1..=4usize);
            for _ in 0..n_branches {
                let bc = self.sample_country();
                let bcity = self.sample_city(bc);
                placement.push((bcity.point(), bc, 1.0));
            }
            let hq_loc = self.scatter(hq_point, 3.0);
            let resolver = self.add_resolver(
                hq_loc,
                hq_country,
                asn,
                ResolverKind::EnterpriseCentral { owner: as_id },
            );
            let u: f64 = self.rng.random_range(0.0f64..1.0);
            let raw = 4.0 + 36.0 * u * u;
            let count = ((raw * self.cfg.block_scale) as usize).max(1);
            let blocks = self.create_blocks(as_id, asn, count, &placement, 5.0);
            self.ases.push(AsInfo {
                id: as_id,
                asn,
                tier: AsTier::Enterprise,
                country: hq_country,
                blocks,
                policy: ResolverPolicy::Centralized { resolver },
                demand: 0.0,
            });
        }
    }

    /// Fills every block's LDNS usage vector from its AS's policy plus
    /// direct per-client public resolver adoption (Fig 9).
    fn assign_ldns(&mut self) {
        let router = AnycastRouter::new(self.latency, self.cfg.misroute_prob);
        for ai in 0..self.ases.len() {
            let (policy, asn) = (self.ases[ai].policy.clone(), self.ases[ai].asn);
            let block_range = self.ases[ai].blocks.clone();
            for bi in block_range {
                let block_ep = self.blocks[bi as usize].endpoint();
                let prefix = self.blocks[bi as usize].prefix;
                let country = self.blocks[bi as usize].country;
                let (base, base_is_public) = match &policy {
                    ResolverPolicy::SelfHosted { sites } => {
                        let eps: Vec<Endpoint> = sites
                            .iter()
                            .map(|r| self.resolvers[r.index()].endpoint())
                            .collect();
                        let noise =
                            unit(mix(self.cfg.seed, prefix.addr() as u64, asn.0 as u64, 0xA0));
                        (sites[router.route(&block_ep, &eps, noise)], false)
                    }
                    ResolverPolicy::Outsourced { provider } => (
                        self.provider_catchment(prefix, &block_ep, asn, *provider),
                        true,
                    ),
                    ResolverPolicy::Centralized { resolver } => (*resolver, false),
                };
                let mut ldns: Vec<(ResolverId, f64)> = Vec::with_capacity(2);
                if base_is_public {
                    ldns.push((base, 1.0));
                } else {
                    // Per-AS adoption modifier keeps adoption from being
                    // uniform within a country.
                    let modifier = 0.6 + 0.8 * unit(mix(self.cfg.seed, asn.0 as u64, 0, 0xA1));
                    let adoption = (public_adoption(country) * modifier).min(0.95);
                    if adoption > 0.005 {
                        let pid = self.sample_provider();
                        let site = self.provider_catchment(prefix, &block_ep, asn, pid);
                        if site == base {
                            ldns.push((base, 1.0));
                        } else {
                            ldns.push((base, 1.0 - adoption));
                            ldns.push((site, adoption));
                        }
                    } else {
                        ldns.push((base, 1.0));
                    }
                }
                self.blocks[bi as usize].ldns = ldns;
            }
        }
    }

    fn fill_as_demand(&mut self) {
        for info in &mut self.ases {
            info.demand = info
                .blocks
                .clone()
                .map(|b| self.blocks[b as usize].demand)
                .sum();
        }
    }

    fn finish(mut self) -> Internet {
        self.build_providers();
        self.build_large_isps();
        self.build_small_isps();
        self.build_enterprises();
        self.assign_ldns();
        self.fill_as_demand();
        Internet {
            cfg: self.cfg,
            latency: self.latency,
            ases: self.ases,
            blocks: self.blocks,
            resolvers: self.resolvers,
            providers: self.providers,
            bgp: self.bgp,
            geodb: self.geodb,
            next_infra_24: self.next_infra_24,
        }
    }
}

/// Greedy cover of a /24-index range `[start, end)` with aligned
/// power-of-two CIDRs. Returns (first /24 index, prefix length ≤ 24).
pub(crate) fn cover_range(mut start: u32, end: u32) -> Vec<(u32, u8)> {
    let mut out = Vec::new();
    while start < end {
        let align = if start == 0 {
            24
        } else {
            start.trailing_zeros().min(24)
        };
        let remaining = end - start;
        let mut size = 1u32 << align;
        while size > remaining {
            size >>= 1;
        }
        let bits = size.trailing_zeros() as u8;
        out.push((start, 24 - bits));
        start += size;
    }
    out
}

/// Generates the Internet described by `cfg`. Deterministic in `cfg.seed`.
pub fn generate(cfg: InternetConfig) -> Internet {
    Builder::new(cfg).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_range_is_exact_partition() {
        for (start, end) in [
            (0u32, 7u32),
            (5, 21),
            (16, 48),
            (1, 2),
            (0, 1024),
            (700, 701),
        ] {
            let parts = cover_range(start, end);
            let mut covered = Vec::new();
            for (s, len) in &parts {
                let size = 1u32 << (24 - len);
                assert_eq!(s % size, 0, "CIDR at {s} not aligned to {size}");
                covered.extend(*s..*s + size);
            }
            let expect: Vec<u32> = (start..end).collect();
            assert_eq!(covered, expect, "range {start}..{end}");
        }
    }

    #[test]
    fn cover_range_of_empty_is_empty() {
        assert!(cover_range(5, 5).is_empty());
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// cover_range always yields an exact, aligned partition.
            #[test]
            fn cover_range_partitions_any_range(start in 0u32..5000, len in 1u32..2000) {
                let end = start + len;
                let parts = cover_range(start, end);
                let mut pos = start;
                for (s, plen) in parts {
                    prop_assert_eq!(s, pos, "gap or overlap at {}", pos);
                    let size = 1u32 << (24 - plen);
                    prop_assert_eq!(s % size, 0, "misaligned CIDR");
                    pos += size;
                }
                prop_assert_eq!(pos, end);
            }
        }
    }

    #[test]
    fn pick_index_respects_weights() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..50 {
            assert_eq!(pick_index(&mut rng, &weights), 1);
        }
    }

    #[test]
    fn pick_index_uniform_on_zero_total() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let weights = [0.0, 0.0];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(pick_index(&mut rng, &weights));
        }
        assert_eq!(seen.len(), 2);
    }
}
