//! Benchmarks for the mapping pipeline's computational kernels: the
//! latency model, consistent-hash server picks, scoring, and the global
//! load balancers (stable allocation vs greedy — the DESIGN.md ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eum_bench::tiny_internet;
use eum_cdn::ServerId;
use eum_mapping::{
    assign, ConsistentRing, LbAlgorithm, MapUnits, PingMatrix, PingTargets, ScoreBasis, ScoreTable,
    ScoringWeights,
};
use eum_netmodel::Endpoint;
use std::hint::black_box;

fn bench_latency_model(c: &mut Criterion) {
    let net = tiny_internet();
    let a = net.blocks[0].endpoint();
    let b = net.resolvers[0].endpoint();
    c.bench_function("latency_rtt_ms", |bch| {
        bch.iter(|| net.latency.rtt_ms(black_box(&a), black_box(&b)))
    });
}

fn bench_ring(c: &mut Criterion) {
    let servers: Vec<ServerId> = (0..24).map(ServerId).collect();
    let ring = ConsistentRing::new(&servers, 64);
    c.bench_function("ring_pick_2_of_24", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(1);
            ring.pick(black_box(key), 2, |_| true)
        })
    });
}

fn scoring_setup() -> (
    eum_netmodel::Internet,
    MapUnits,
    Vec<Endpoint>,
    PingTargets,
    PingMatrix,
) {
    let net = tiny_internet();
    let units = MapUnits::block_units(&net, 24, true);
    let clusters: Vec<Endpoint> = net
        .resolvers
        .iter()
        .take(12)
        .map(|r| r.endpoint())
        .collect();
    let targets = PingTargets::select(&net, 60, 120.0);
    let matrix = PingMatrix::measure(&net, &clusters, &targets);
    (net, units, clusters, targets, matrix)
}

fn bench_scoring_and_lb(c: &mut Criterion) {
    let (net, units, clusters, targets, matrix) = scoring_setup();
    let vantages: Vec<Endpoint> = units
        .units
        .iter()
        .map(|u| net.block(u.members[0]).endpoint())
        .collect();

    c.bench_function("score_table_build", |b| {
        b.iter(|| {
            ScoreTable::build(
                &net,
                &units,
                &vantages,
                &clusters,
                &targets,
                &matrix,
                ScoringWeights::default(),
                ScoreBasis::UnitVantage,
                50,
            )
        })
    });

    let table = ScoreTable::build(
        &net,
        &units,
        &vantages,
        &clusters,
        &targets,
        &matrix,
        ScoringWeights::default(),
        ScoreBasis::UnitVantage,
        50,
    );
    let total = units.total_demand();
    let capacity = vec![total * 1.3 / clusters.len() as f64; clusters.len()];
    let usable = vec![true; clusters.len()];

    let mut group = c.benchmark_group("global_lb");
    for algo in [LbAlgorithm::Stable, LbAlgorithm::Greedy] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{algo:?}")),
            &algo,
            |b, algo| b.iter(|| assign(*algo, &units, &table, &capacity, &usable)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_latency_model,
    bench_ring,
    bench_scoring_and_lb
);
criterion_main!(benches);
