//! DNS-over-TCP fallback listener (RFC 1035 §4.2.2).
//!
//! When an authd reply exceeds the requester's advertised UDP payload
//! size, the UDP path truncates it and stamps TC=1; the resolver then
//! retries over TCP, where messages are framed by a two-byte big-endian
//! length prefix and never size-capped. This listener implements
//! authd's plain [`ServerTransport`] so one extra shard thread serves
//! the (rare, by design) oversized answers: it accepts nonblocking
//! connections, accumulates bytes per connection until a full frame
//! arrives, and surfaces each frame as a `stream` datagram — which
//! makes the server's [`eum_authd::ReplyCap`] logic skip truncation.
//!
//! Throughput is a non-goal here: the TCP leg exists for correctness
//! (completing the answer the datagram path could not carry), so the
//! implementation favors simplicity — a poll loop with a short sleep —
//! over epoll machinery.

use eum_authd::transport::{Datagram, ServerTransport};
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// How long `send` keeps retrying a nonblocking write before declaring
/// the client gone.
const SEND_PATIENCE: Duration = Duration::from_secs(2);

/// One accepted connection with its partial-frame buffer.
struct Conn {
    stream: TcpStream,
    peer: Ipv4Addr,
    buf: Vec<u8>,
}

/// A nonblocking TCP listener serving length-prefixed DNS messages.
pub struct TcpServerTransport {
    listener: TcpListener,
    /// Slot-addressed connections; `Datagram::peer` is the slot index.
    conns: Vec<Option<Conn>>,
}

impl TcpServerTransport {
    /// Binds an ephemeral loopback listener.
    pub fn bind() -> io::Result<TcpServerTransport> {
        TcpServerTransport::bind_addr(SocketAddr::from((Ipv4Addr::LOCALHOST, 0)))
    }

    /// Binds a listener on `addr`.
    pub fn bind_addr(addr: SocketAddr) -> io::Result<TcpServerTransport> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpServerTransport {
            listener,
            conns: Vec::new(),
        })
    }

    /// Where clients should connect.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts every connection the kernel has queued.
    fn accept_pending(&mut self) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    stream.set_nonblocking(true)?;
                    let _ = stream.set_nodelay(true);
                    let ip = match peer.ip() {
                        IpAddr::V4(v4) => v4,
                        IpAddr::V6(_) => Ipv4Addr::LOCALHOST,
                    };
                    let conn = Conn {
                        stream,
                        peer: ip,
                        buf: Vec::with_capacity(512),
                    };
                    match self.conns.iter().position(Option::is_none) {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads available bytes on every connection; returns the first
    /// complete frame found, if any.
    fn poll_frames(&mut self) -> Option<Datagram<usize>> {
        let mut tmp = [0u8; 4096];
        for slot in 0..self.conns.len() {
            let mut dead = false;
            if let Some(conn) = self.conns[slot].as_mut() {
                loop {
                    match conn.stream.read(&mut tmp) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => conn.buf.extend_from_slice(&tmp[..n]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
            }
            if dead {
                self.conns[slot] = None;
                continue;
            }
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.buf.len() < 2 {
                continue;
            }
            let need = u16::from_be_bytes([conn.buf[0], conn.buf[1]]) as usize;
            if conn.buf.len() < 2 + need {
                continue;
            }
            let payload = conn.buf[2..2 + need].to_vec();
            conn.buf.drain(..2 + need);
            return Some(Datagram {
                payload,
                resolver_ip: conn.peer,
                server_ip: None,
                stream: true,
                peer: slot,
            });
        }
        None
    }
}

impl ServerTransport for TcpServerTransport {
    type Peer = usize;

    fn recv(&mut self, timeout: Duration) -> io::Result<Option<Datagram<usize>>> {
        let deadline = Instant::now() + timeout;
        loop {
            self.accept_pending()?;
            if let Some(dg) = self.poll_frames() {
                return Ok(Some(dg));
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn send(&mut self, peer: &usize, payload: &[u8]) -> io::Result<()> {
        let Some(conn) = self.conns.get_mut(*peer).and_then(Option::as_mut) else {
            return Ok(()); // client hung up: fire-and-forget, like UDP
        };
        let len = payload.len().min(u16::MAX as usize);
        let mut frame = Vec::with_capacity(2 + len);
        frame.extend_from_slice(&(len as u16).to_be_bytes());
        frame.extend_from_slice(&payload[..len]);
        if write_all_patiently(&mut conn.stream, &frame).is_err() {
            self.conns[*peer] = None;
        }
        Ok(())
    }
}

/// `write_all` over a nonblocking stream: spins (with a short sleep) on
/// `WouldBlock` up to [`SEND_PATIENCE`], then gives up.
fn write_all_patiently(stream: &mut TcpStream, mut data: &[u8]) -> io::Result<()> {
    let deadline = Instant::now() + SEND_PATIENCE;
    while !data.is_empty() {
        match stream.write(data) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "peer gone")),
            Ok(n) => data = &data[n..],
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "send stalled"));
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
