//! Domain names.
//!
//! [`DnsName`] stores a fully-qualified domain name as a sequence of
//! lowercase labels (DNS names are case-insensitive per RFC 1035 §2.3.3;
//! normalizing at construction makes equality, hashing, and compression
//! simple and correct). Enforces RFC 1035 size limits: labels of 1–63
//! octets and a total wire length of at most 255 octets.

use serde::{Deserialize, Serialize};
use std::str::FromStr;

/// A fully-qualified domain name (the trailing root dot is implicit).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DnsName {
    labels: Vec<String>,
}

/// Errors from constructing a [`DnsName`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty or longer than 63 octets.
    BadLabel,
    /// The encoded name would exceed 255 octets.
    TooLong,
    /// A label contained a character outside `[A-Za-z0-9_-]`.
    BadCharacter,
}

impl std::fmt::Display for NameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NameError::BadLabel => f.write_str("label must be 1..=63 octets"),
            NameError::TooLong => f.write_str("name exceeds 255 octets"),
            NameError::BadCharacter => f.write_str("label contains invalid character"),
        }
    }
}

impl std::error::Error for NameError {}

impl DnsName {
    /// The root name (zero labels).
    pub fn root() -> DnsName {
        DnsName { labels: Vec::new() }
    }

    /// Builds a name from labels, validating and lowercasing each.
    pub fn from_labels<S: AsRef<str>>(
        labels: impl IntoIterator<Item = S>,
    ) -> Result<DnsName, NameError> {
        let mut out = Vec::new();
        let mut wire_len = 1usize; // root byte
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() || l.len() > 63 {
                return Err(NameError::BadLabel);
            }
            if !l
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
            {
                return Err(NameError::BadCharacter);
            }
            wire_len += 1 + l.len();
            out.push(l.to_ascii_lowercase());
        }
        if wire_len > 255 {
            return Err(NameError::TooLong);
        }
        Ok(DnsName { labels: out })
    }

    /// The labels, most-significant last (`www`, `example`, `com`).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length of the wire encoding in octets (uncompressed).
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// The parent domain (one label removed from the front), or `None`
    /// at the root.
    pub fn parent(&self) -> Option<DnsName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DnsName {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Prepends a label: `label.self`.
    pub fn child(&self, label: &str) -> Result<DnsName, NameError> {
        let mut labels = vec![label.to_string()];
        labels.extend(self.labels.iter().cloned());
        DnsName::from_labels(labels)
    }

    /// True when `self` is `other` or a subdomain of it
    /// (`a.b.example.com` is within `example.com` and within the root).
    pub fn is_within(&self, other: &DnsName) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..] == other.labels[..]
    }
}

impl FromStr for DnsName {
    type Err = NameError;

    /// Parses dotted notation; a single trailing dot (FQDN marker) and
    /// `"."` (root) are accepted.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(DnsName::root());
        }
        DnsName::from_labels(s.split('.'))
    }
}

impl std::fmt::Display for DnsName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        f.write_str(&self.labels.join("."))
    }
}

/// Convenience macro-free constructor for tests and examples; panics on an
/// invalid name.
pub fn name(s: &str) -> DnsName {
    s.parse()
        .unwrap_or_else(|e| panic!("invalid DNS name {s:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["example.com", "a.b.c.d.example.org", "xn--abc.test"] {
            assert_eq!(name(s).to_string(), s);
        }
    }

    #[test]
    fn trailing_dot_is_accepted() {
        assert_eq!(name("example.com."), name("example.com"));
    }

    #[test]
    fn root_parses_and_displays() {
        let r: DnsName = ".".parse().unwrap();
        assert!(r.is_root());
        assert_eq!(r.to_string(), ".");
        let empty: DnsName = "".parse().unwrap();
        assert!(empty.is_root());
    }

    #[test]
    fn names_are_case_insensitive() {
        assert_eq!(name("ExAmPle.COM"), name("example.com"));
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        name("WWW.Foo.NET").hash(&mut h1);
        name("www.foo.net").hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn rejects_bad_labels() {
        assert!("a..b".parse::<DnsName>().is_err());
        assert!(DnsName::from_labels(["x".repeat(64)]).is_err());
        assert!("sp ace.com".parse::<DnsName>().is_err());
        assert!("exa$mple.com".parse::<DnsName>().is_err());
    }

    #[test]
    fn accepts_63_octet_label() {
        assert!(DnsName::from_labels(["x".repeat(63)]).is_ok());
    }

    #[test]
    fn rejects_overlong_name() {
        // Four 63-octet labels: 4*64 + 1 = 257 > 255.
        let l = "x".repeat(63);
        assert_eq!(
            DnsName::from_labels([l.clone(), l.clone(), l.clone(), l]),
            Err(NameError::TooLong)
        );
    }

    #[test]
    fn wire_len_counts_length_bytes_and_root() {
        assert_eq!(name("example.com").wire_len(), 1 + 8 + 1 + 4 + 1 - 2);
        // "example" = 7+1, "com" = 3+1, root = 1 ⇒ 13.
        assert_eq!(name("example.com").wire_len(), 13);
        assert_eq!(DnsName::root().wire_len(), 1);
    }

    #[test]
    fn parent_and_child() {
        let n = name("www.example.com");
        assert_eq!(n.parent().unwrap(), name("example.com"));
        assert_eq!(DnsName::root().parent(), None);
        assert_eq!(name("example.com").child("www").unwrap(), n);
        assert!(name("example.com").child("bad label").is_err());
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Display → parse is the identity for arbitrary valid names.
            #[test]
            fn display_parse_round_trip(
                labels in proptest::collection::vec("[a-z0-9_-]{1,20}", 0..6),
            ) {
                if let Ok(name) = DnsName::from_labels(labels) {
                    let back: DnsName = name.to_string().parse().unwrap();
                    prop_assert_eq!(back, name);
                }
            }

            /// A child is always within its parent; wire length grows by
            /// label length + 1.
            #[test]
            fn child_parent_inverse(
                base in proptest::collection::vec("[a-z0-9]{1,10}", 1..4),
                label in "[a-z0-9]{1,10}",
            ) {
                let parent = DnsName::from_labels(base).unwrap();
                if let Ok(child) = parent.child(&label) {
                    prop_assert!(child.is_within(&parent));
                    prop_assert_eq!(child.parent().unwrap(), parent.clone());
                    prop_assert_eq!(child.wire_len(), parent.wire_len() + label.len() + 1);
                }
            }
        }
    }

    #[test]
    fn is_within_checks_suffix() {
        let n = name("a.b.example.com");
        assert!(n.is_within(&name("example.com")));
        assert!(n.is_within(&n));
        assert!(n.is_within(&DnsName::root()));
        assert!(!n.is_within(&name("other.com")));
        assert!(!name("example.com").is_within(&n));
        // Suffix must be label-aligned: "le.com" is not a parent of "example.com".
        assert!(!name("example.com").is_within(&name("le.com")));
    }
}
