//! eum-chaos: a scenario-driven adversarial workload engine.
//!
//! The serving stack ([`eum_authd`] behind a fleet of [`eum_ldns`]
//! resolvers) claims to survive the workloads that actually take CDN
//! mapping systems down: random-subdomain NXDOMAIN floods that bust
//! every cache layer, flash crowds piling onto one hostname, serving
//! sites dropping out mid-run, resolver ECS policies flipping under
//! load, and raw cache-capacity pressure. This crate makes those claims
//! falsifiable. Each [`ChaosScenario`] is a seeded, windowed schedule of
//! attack plus legitimate queries with per-query ground truth (which
//! arrivals are attack, which are legit), driven **live** — real
//! resolver code over a real channel transport against a real spawned
//! [`eum_authd::AuthServer`] — twice: once with defenses off and once
//! with defenses on ([`Defenses`]: authd token-bucket admission control
//! with REFUSED shedding, plus health-filtered mapping republication on
//! outage). The [`AbReport`] pins what the defenses bought: legitimate
//! goodput, tail latency, and answer quality, window by window.
//!
//! Offered load is fixed and identical across the two arms. The runner
//! is open-loop over a virtual arrival clock: arrivals land every
//! `interval_ns` whether or not the serving path has caught up, service
//! times are measured on the real clock, and queueing delay is the
//! gap between the two ([`runner`] module docs spell out the model).
//! A query whose queue-plus-service latency exceeds the client
//! patience window counts as lost even when an answer eventually came
//! back — exactly how a recursive resolver's client behaves.

mod report;
mod runner;
mod scenario;

pub use report::{AbReport, ArmReport, WindowStats};
pub use runner::{run_ab, ChaosWorld, Defenses};
pub use scenario::{AttackGenKind, ChaosQuery, ChaosScenario, ScheduledEvent};
