//! Configuration for the synthetic Internet generator.
//!
//! The per-country tables below are calibrated so the generated population
//! reproduces the paper's §3 measurements in *shape*: demand concentrated
//! in the US/EU/JP; public-resolver adoption highest in Vietnam and Turkey
//! and lowest in Japan/Korea (Fig 9); access latency higher in developing
//! markets (which drives the absolute RTT levels of Figs 15/16).

use eum_geo::Country;
use serde::{Deserialize, Serialize};

/// Relative share of global client demand originating in a country.
/// Loosely follows 2014-era CDN traffic distribution; only ratios matter.
pub fn demand_weight(c: Country) -> f64 {
    use Country::*;
    match c {
        UnitedStates => 25.0,
        Japan => 9.0,
        UnitedKingdom => 6.0,
        Germany => 5.0,
        France => 4.0,
        Brazil => 4.0,
        India => 4.0,
        Italy => 3.0,
        Canada => 3.0,
        Australia => 3.0,
        Russia => 3.0,
        SouthKorea => 3.0,
        Spain => 2.0,
        Netherlands => 2.0,
        Mexico => 2.0,
        Turkey => 2.0,
        Indonesia => 2.0,
        Taiwan => 1.5,
        Switzerland => 1.5,
        HongKong => 1.5,
        Thailand => 1.5,
        Vietnam => 1.5,
        Argentina => 1.5,
        Singapore => 1.0,
        Malaysia => 1.0,
        Chile => 0.5,
        Colombia => 0.5,
        Peru => 0.4,
        Poland => 0.8,
        Sweden => 0.8,
        SouthAfrica => 0.5,
        Egypt => 0.5,
    }
}

/// Fraction of a country's client demand that uses a public resolver
/// (Fig 9 shape: Vietnam/Turkey heaviest, Japan/Korea lightest; ~8%
/// worldwide when demand-weighted).
pub fn public_adoption(c: Country) -> f64 {
    use Country::*;
    match c {
        Vietnam => 0.45,
        Turkey => 0.40,
        Italy => 0.22,
        Indonesia => 0.20,
        Malaysia => 0.18,
        Brazil => 0.16,
        Argentina => 0.15,
        India => 0.14,
        Russia => 0.12,
        Mexico => 0.11,
        Thailand => 0.10,
        Spain => 0.09,
        Taiwan => 0.08,
        UnitedStates => 0.07,
        UnitedKingdom => 0.06,
        HongKong => 0.06,
        Canada => 0.05,
        Switzerland => 0.05,
        France => 0.045,
        Netherlands => 0.045,
        Germany => 0.04,
        Singapore => 0.035,
        Australia => 0.03,
        Japan => 0.02,
        SouthKorea => 0.015,
        Chile => 0.15,
        Colombia => 0.15,
        Peru => 0.15,
        Poland => 0.08,
        Sweden => 0.04,
        SouthAfrica => 0.12,
        Egypt => 0.15,
    }
}

/// Mean one-way access-network latency for clients in a country, in ms.
/// Developed markets ride fiber/cable; developing markets skew toward
/// DSL/cellular. These levels set the RTT floors of Figures 15/16.
pub fn access_ms(c: Country) -> f64 {
    use Country::*;
    match c {
        SouthKorea | Japan | Singapore | HongKong | Taiwan => 4.0,
        Netherlands | Switzerland | Sweden | Germany | France | UnitedKingdom => 7.0,
        UnitedStates | Canada | Spain | Italy | Poland => 9.0,
        Australia => 10.0,
        Russia => 12.0,
        Malaysia | Thailand => 14.0,
        Turkey | Mexico | Chile => 16.0,
        Brazil | Argentina | Colombia | Peru | SouthAfrica => 18.0,
        India | Vietnam | Indonesia | Egypt => 22.0,
    }
}

/// A public resolver provider template: where its anycast sites are and
/// whether it forwards ECS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProviderTemplate {
    /// Display name.
    pub name: String,
    /// Gazetteer city names hosting anycast sites.
    pub site_cities: Vec<String>,
    /// Whether the provider sends EDNS0 Client Subnet upstream.
    pub supports_ecs: bool,
    /// Relative popularity among public-resolver users.
    pub popularity: f64,
}

impl ProviderTemplate {
    fn new(name: &str, cities: &[&str], supports_ecs: bool, popularity: f64) -> Self {
        ProviderTemplate {
            name: name.to_string(),
            site_cities: cities.iter().map(|s| s.to_string()).collect(),
            supports_ecs,
            popularity,
        }
    }

    /// The default three providers, modeled on the 2014 landscape the paper
    /// describes:
    ///
    /// * `PublicA` — the largest provider (Google Public DNS analogue):
    ///   wide presence in North America, Europe, and Asia/Oceania, but
    ///   **no South American or Indian sites** — the root cause of the
    ///   worst client–LDNS distances in Figure 8.
    /// * `PublicB` — a mid-size provider (OpenDNS analogue), ECS-capable.
    /// * `PublicC` — a US-centric provider that does **not** support ECS
    ///   (Level 3 / UltraDNS analogue); its clients never benefit from
    ///   end-user mapping.
    pub fn default_providers() -> Vec<ProviderTemplate> {
        vec![
            ProviderTemplate::new(
                "PublicA",
                &[
                    "New York",
                    "Dallas",
                    "San Jose",
                    "Seattle",
                    "London",
                    "Frankfurt",
                    "Amsterdam",
                    "Singapore",
                    "Taipei",
                    "Tokyo",
                    "Sydney",
                ],
                true,
                0.62,
            ),
            ProviderTemplate::new(
                "PublicB",
                &[
                    "Chicago",
                    "Los Angeles",
                    "London",
                    "Amsterdam",
                    "Singapore",
                    "Hong Kong",
                ],
                true,
                0.26,
            ),
            ProviderTemplate::new("PublicC", &["New York", "Dallas", "Denver"], false, 0.12),
        ]
    }
}

/// Size and behaviour knobs for the generated Internet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InternetConfig {
    /// Master seed; every derived structure and noise stream is a pure
    /// function of this.
    pub seed: u64,
    /// Number of large national ISPs (self-hosted anycast LDNS).
    pub n_large_isps: usize,
    /// Number of small regional ISPs (often outsourced LDNS).
    pub n_small_isps: usize,
    /// Number of enterprises (centralized LDNS, multi-country branches).
    pub n_enterprises: usize,
    /// Multiplier on per-AS client-block counts.
    pub block_scale: f64,
    /// Probability a small ISP outsources DNS to a public provider (§3.2:
    /// "smaller AS'es include small local ISPs who are more likely to
    /// 'outsource' their name server infrastructure").
    pub small_isp_outsource_prob: f64,
    /// Anycast misroute probability (paper §3.2: anycast "has many known
    /// limitations").
    pub misroute_prob: f64,
    /// Probability that an (AS, provider) pair is pinned to a remote site
    /// by a peering quirk (§3.2 Singapore/Malaysia example).
    pub peering_quirk_prob: f64,
    /// Public resolver providers.
    pub providers: Vec<ProviderTemplate>,
}

impl InternetConfig {
    /// Tiny Internet for unit tests: a few hundred blocks, built in
    /// milliseconds.
    pub fn tiny(seed: u64) -> Self {
        InternetConfig {
            seed,
            n_large_isps: 4,
            n_small_isps: 12,
            n_enterprises: 4,
            block_scale: 0.05,
            small_isp_outsource_prob: 0.40,
            misroute_prob: 0.06,
            peering_quirk_prob: 0.08,
            providers: ProviderTemplate::default_providers(),
        }
    }

    /// Small Internet for examples and integration tests: a few thousand
    /// blocks.
    pub fn small(seed: u64) -> Self {
        InternetConfig {
            seed,
            n_large_isps: 12,
            n_small_isps: 80,
            n_enterprises: 24,
            block_scale: 0.25,
            ..InternetConfig::tiny(seed)
        }
    }

    /// The scale used by the reproduction binaries: tens of thousands of
    /// blocks, hundreds of ASes — large enough for every figure's shape to
    /// be stable, small enough to run all figures in minutes.
    pub fn paper(seed: u64) -> Self {
        InternetConfig {
            seed,
            n_large_isps: 40,
            n_small_isps: 420,
            n_enterprises: 100,
            block_scale: 1.0,
            ..InternetConfig::tiny(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_country_has_positive_tables() {
        for c in Country::ALL {
            assert!(demand_weight(*c) > 0.0);
            assert!((0.0..=1.0).contains(&public_adoption(*c)));
            assert!(access_ms(*c) > 0.0);
        }
    }

    #[test]
    fn adoption_extremes_match_paper_ordering() {
        // Fig 9: Vietnam and Turkey heaviest; Japan and Korea lightest.
        assert!(public_adoption(Country::Vietnam) > public_adoption(Country::UnitedStates));
        assert!(public_adoption(Country::Turkey) > public_adoption(Country::Germany));
        assert!(public_adoption(Country::Japan) < public_adoption(Country::UnitedStates));
        assert!(public_adoption(Country::SouthKorea) < 0.05);
    }

    #[test]
    fn default_providers_have_known_gaps() {
        let provs = ProviderTemplate::default_providers();
        assert_eq!(provs.len(), 3);
        let a = &provs[0];
        assert!(a.supports_ecs);
        // No South American site for the big provider — §3.2's key fact.
        for city in ["Sao Paulo", "Buenos Aires", "Santiago", "Lima", "Bogota"] {
            assert!(!a.site_cities.iter().any(|c| c == city));
        }
        // PublicC does not support ECS.
        assert!(!provs[2].supports_ecs);
        let pop_sum: f64 = provs.iter().map(|p| p.popularity).sum();
        assert!((pop_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn provider_cities_exist_in_gazetteer() {
        for prov in ProviderTemplate::default_providers() {
            for city in &prov.site_cities {
                assert!(
                    eum_geo::GAZETTEER.iter().any(|g| g.name == city),
                    "unknown city {city}"
                );
            }
        }
    }

    #[test]
    fn presets_grow_monotonically() {
        let t = InternetConfig::tiny(1);
        let s = InternetConfig::small(1);
        let p = InternetConfig::paper(1);
        assert!(t.n_large_isps < s.n_large_isps && s.n_large_isps < p.n_large_isps);
        assert!(t.block_scale < s.block_scale && s.block_scale < p.block_scale);
    }
}
