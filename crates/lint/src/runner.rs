//! Workspace walking, report assembly, and `--fix-budget` rewriting.

use crate::config::Config;
use crate::graph::{self, Coverage};
use crate::rules::{self, Diagnostic};
use crate::scan::FileScan;
use std::collections::{BTreeMap, HashSet};
use std::path::Path;

/// The outcome of a full workspace run.
#[derive(Debug)]
pub struct Report {
    /// Every finding, sorted by `(file, line, col)`.
    pub diags: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Measured `unsafe` occurrences per crate key.
    pub unsafe_counts: BTreeMap<String, u64>,
    /// Call-graph closure coverage numbers.
    pub coverage: Coverage,
}

/// Collects workspace-relative `.rs` paths under the configured roots,
/// skipping excludes, `target/`, and hidden directories. Sorted so runs
/// are deterministic.
pub fn collect_files(cfg: &Config, root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for r in &cfg.roots {
        let dir = root.join(r);
        if !dir.is_dir() {
            return Err(format!(
                "[scan] root `{r}` is not a directory under {}",
                root.display()
            ));
        }
        walk(&dir, root, cfg, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} escapes the workspace root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        if cfg.is_excluded(&rel) {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, cfg, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Runs every rule over the workspace rooted at `root`.
pub fn run(cfg: &Config, root: &Path) -> Result<Report, String> {
    let files = collect_files(cfg, root)?;
    let mut diags = Vec::new();

    // Config self-check: every file the config names must exist in the
    // scan, so a moved module can't silently drop out of enforcement.
    let fileset: HashSet<&str> = files.iter().map(String::as_str).collect();
    let named = cfg
        .hot
        .iter()
        .map(|h| (&h.file, "[[hot]]"))
        .chain(cfg.counter_paths.iter().map(|p| (p, "counter_paths")))
        .chain(cfg.seqlock_files.iter().map(|p| (p, "seqlock_files")))
        .chain(cfg.facade_files.iter().map(|p| (p, "facade_files")));
    for (file, origin) in named {
        if !fileset.contains(file.as_str()) {
            diags.push(Diagnostic {
                file: "lint.toml".to_string(),
                line: 1,
                col: 1,
                rule: "config".to_string(),
                msg: format!("{origin} names `{file}`, which is not in the scanned set"),
                snippet: String::new(),
            });
        }
    }

    // Pass 1: parse every file once, run the per-file rules, count
    // unsafe. The parsed scans are kept — the graph pass needs the whole
    // workspace in hand to resolve cross-crate calls.
    let mut unsafe_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut scans: Vec<FileScan> = Vec::with_capacity(files.len());
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        let scan = FileScan::parse(rel, &src);
        let n = rules::check_file(cfg, &scan, &mut diags);
        *unsafe_counts.entry(rules::crate_key(rel)).or_insert(0) += n;
        scans.push(scan);
    }
    rules::check_budget(cfg, &unsafe_counts, &mut diags);

    // Pass 2: call-graph closure from the pinned hot set.
    let coverage = graph::check_graph(cfg, &scans, &mut diags);

    diags.sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    Ok(Report {
        diags,
        files_scanned: files.len(),
        unsafe_counts,
        coverage,
    })
}

/// Renders the report as JSON for machine consumers (CI annotations,
/// editor integrations). Hand-rolled — the linter is zero-dependency.
pub fn to_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in report.diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"msg\": {}, \"snippet\": {}}}",
            json_str(&d.file),
            d.line,
            d.col,
            json_str(&d.rule),
            json_str(&d.msg),
            json_str(&d.snippet),
        ));
    }
    if !report.diags.is_empty() {
        out.push_str("\n  ");
    }
    let c = &report.coverage;
    out.push_str(&format!(
        "],\n  \"summary\": {{\n    \"files_scanned\": {},\n    \"violations\": {},\n    \
         \"coverage\": {{\"pinned_fns\": {}, \"reachable_fns\": {}, \"boundary_cuts\": {}, \
         \"external_names\": {}, \"uncovered_fns\": {}}}\n  }}\n}}\n",
        report.files_scanned,
        report.diags.len(),
        c.pinned_fns,
        c.reachable_fns,
        c.boundary_cuts,
        c.external_names,
        c.uncovered_fns,
    ));
    out
}

/// Escapes one JSON string, quotes included.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Rewrites the `[unsafe_budget]` table in `config_text` with the
/// measured `counts`, preserving everything else byte-for-byte. Returns
/// the new text.
pub fn rewrite_budget(config_text: &str, counts: &BTreeMap<String, u64>) -> Result<String, String> {
    let mut out = String::with_capacity(config_text.len());
    let mut in_budget = false;
    let mut wrote = false;
    for line in config_text.lines() {
        let trimmed = line.trim();
        if trimmed == "[unsafe_budget]" {
            in_budget = true;
            wrote = true;
            out.push_str(line);
            out.push('\n');
            for (krate, n) in counts {
                out.push_str(&format!("{krate} = {n}\n"));
            }
            continue;
        }
        if in_budget {
            // Swallow the old entries; the table ends at the next header
            // (or a comment/blank line after the entries is kept).
            if trimmed.starts_with('[') || trimmed.is_empty() {
                in_budget = false;
            } else {
                continue;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    if !wrote {
        return Err("config has no [unsafe_budget] table to rewrite".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_rewrite_replaces_only_the_table() {
        let text = "[scan]\nroots = [\"crates\"]\n\n[unsafe_budget]\nauthd = 3\nold = 1\n\n[[hot]]\nfile = \"x.rs\"\nfns = [\"*\"]\n";
        let counts = BTreeMap::from([("authd".to_string(), 9u64), ("dns".to_string(), 0u64)]);
        let new = rewrite_budget(text, &counts).expect("rewrites");
        assert!(new.contains("authd = 9\n"));
        assert!(new.contains("dns = 0\n"));
        assert!(!new.contains("old = 1"));
        assert!(new.contains("[[hot]]"));
        assert!(new.contains("roots = [\"crates\"]"));
    }
}
