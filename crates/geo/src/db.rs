//! The geolocation database (Edgescape stand-in).
//!
//! Paper §3.1: "we use Akamai's Edgescape geo-location database … Edgescape
//! can provide the latitude, longitude, country and autonomous system (AS)
//! for an IP." [`GeoDb`] provides exactly that interface over a
//! longest-prefix-match binary trie. The synthetic Internet populates it
//! with one entry per announced prefix; lookups then behave like a real
//! registry-plus-measurement database.

use crate::{Asn, Country, GeoPoint, Prefix};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// What the database knows about an IP: location, country, and origin AS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoInfo {
    /// Latitude/longitude fix. For mobile networks the paper uses the
    /// gateway location; the synthetic model does the same by giving the
    /// whole block one fix.
    pub point: GeoPoint,
    /// Country of the block.
    pub country: Country,
    /// Origin autonomous system.
    pub asn: Asn,
}

/// Index of a node inside the trie arena. `u32::MAX` is the null sentinel.
type NodeIdx = u32;
const NIL: NodeIdx = u32::MAX;

#[derive(Debug, Clone, Default)]
struct Node {
    children: [NodeIdx; 2],
    /// Index into `values`, or `NIL`.
    value: NodeIdx,
}

impl Node {
    fn new() -> Self {
        Node {
            children: [NIL, NIL],
            value: NIL,
        }
    }
}

/// One entry of the stride-8 root jump table: where to resume the bitwise
/// walk for addresses whose top octet selects this slot, and the best
/// short-prefix (< /8) match covering the slot so the skipped levels still
/// contribute to longest-prefix-match.
#[derive(Debug, Clone, Copy)]
struct RootSlot {
    /// The depth-8 trie node for this top octet, or `NIL`.
    node: NodeIdx,
    /// Index into `values` of the longest stored prefix shorter than /8
    /// containing this slot, or `NIL`.
    value: NodeIdx,
    /// Length of that prefix (meaningful only when `value != NIL`).
    value_len: u8,
}

impl RootSlot {
    const EMPTY: RootSlot = RootSlot {
        node: NIL,
        value: NIL,
        value_len: 0,
    };
}

/// A longest-prefix-match IP → [`GeoInfo`] database.
///
/// Implemented as an uncompressed binary trie over address bits, arena-
/// allocated for cache-friendly lookups, with an 8-bit-stride jump table
/// over the top octet: a lookup indexes `root8` once and resumes the
/// bitwise walk at depth 8, skipping the seven hottest (and least
/// discriminating) node hops. Inserting the same prefix twice replaces
/// the previous value (the database is rebuilt wholesale by the
/// generator, so last-write-wins is the right semantics).
#[derive(Debug, Clone)]
pub struct GeoDb {
    nodes: Vec<Node>,
    values: Vec<(Prefix, GeoInfo)>,
    root8: Vec<RootSlot>,
}

impl Default for GeoDb {
    fn default() -> Self {
        GeoDb::new()
    }
}

impl GeoDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        GeoDb {
            nodes: vec![Node::new()],
            values: Vec::new(),
            root8: vec![RootSlot::EMPTY; 256],
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Inserts (or replaces) the entry for `prefix`.
    pub fn insert(&mut self, prefix: Prefix, info: GeoInfo) {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let bit = ((prefix.addr() >> (31 - depth as u32)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            node = if child == NIL {
                let idx = self.nodes.len() as NodeIdx;
                self.nodes.push(Node::new());
                self.nodes[node].children[bit] = idx;
                idx as usize
            } else {
                child as usize
            };
            if depth == 7 {
                // Just reached depth 8: this is the jump-table entry point
                // for the prefix's top octet.
                self.root8[(prefix.addr() >> 24) as usize].node = node as NodeIdx;
            }
        }
        let slot = self.nodes[node].value;
        let vidx = if slot == NIL {
            let idx = self.values.len() as NodeIdx;
            self.nodes[node].value = idx;
            self.values.push((prefix, info));
            idx
        } else {
            self.values[slot as usize] = (prefix, info);
            slot
        };
        if prefix.len() < 8 {
            // A short prefix covers 2^(8-len) consecutive slots; record it
            // wherever no longer short prefix already does. Equal length
            // means the very same prefix (same leading bits), i.e. replace.
            let base = (prefix.addr() >> 24) as usize;
            let span = 1usize << (8 - prefix.len());
            for s in &mut self.root8[base..base + span] {
                if s.value == NIL || s.value_len <= prefix.len() {
                    s.value = vidx;
                    s.value_len = prefix.len();
                }
            }
        }
    }

    /// Longest-prefix-match lookup: the most specific stored prefix
    /// containing `ip`, if any.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&GeoInfo> {
        self.lookup_entry(ip).map(|(_, info)| info)
    }

    /// Like [`Self::lookup`] but also returns the matched prefix.
    pub fn lookup_entry(&self, ip: Ipv4Addr) -> Option<(Prefix, &GeoInfo)> {
        let addr = u32::from(ip);
        // One table index replaces the first eight node hops; the slot
        // carries the best sub-/8 match so skipping them loses nothing.
        let slot = &self.root8[(addr >> 24) as usize];
        let mut best = slot.value;
        if slot.node != NIL {
            let mut node = slot.node as usize;
            if self.nodes[node].value != NIL {
                best = self.nodes[node].value;
            }
            for depth in 8..32u32 {
                let bit = ((addr >> (31 - depth)) & 1) as usize;
                let child = self.nodes[node].children[bit];
                if child == NIL {
                    break;
                }
                node = child as usize;
                if self.nodes[node].value != NIL {
                    best = self.nodes[node].value;
                }
            }
        }
        if best == NIL {
            None
        } else {
            let (p, ref info) = self.values[best as usize];
            Some((p, info))
        }
    }

    /// Looks up the info for a block, using its network address as the
    /// representative IP. This mirrors how the paper geolocates a `/24`
    /// client block as a unit.
    pub fn lookup_block(&self, prefix: Prefix) -> Option<&GeoInfo> {
        self.lookup(prefix.network())
    }

    /// Iterates all (prefix, info) entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(Prefix, GeoInfo)> {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(lat: f64, lon: f64, asn: u32) -> GeoInfo {
        GeoInfo {
            point: GeoPoint::new(lat, lon),
            country: Country::UnitedStates,
            asn: Asn(asn),
        }
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_db_returns_none() {
        let db = GeoDb::new();
        assert!(db.lookup(Ipv4Addr::new(1, 2, 3, 4)).is_none());
        assert!(db.is_empty());
    }

    #[test]
    fn exact_match() {
        let mut db = GeoDb::new();
        db.insert(p("10.1.2.0/24"), info(1.0, 2.0, 100));
        let got = db.lookup(Ipv4Addr::new(10, 1, 2, 77)).unwrap();
        assert_eq!(got.asn, Asn(100));
        assert!(db.lookup(Ipv4Addr::new(10, 1, 3, 0)).is_none());
    }

    #[test]
    fn longest_prefix_wins() {
        let mut db = GeoDb::new();
        db.insert(p("10.0.0.0/8"), info(0.0, 0.0, 8));
        db.insert(p("10.1.0.0/16"), info(0.0, 0.0, 16));
        db.insert(p("10.1.2.0/24"), info(0.0, 0.0, 24));
        assert_eq!(db.lookup(Ipv4Addr::new(10, 1, 2, 3)).unwrap().asn, Asn(24));
        assert_eq!(db.lookup(Ipv4Addr::new(10, 1, 9, 3)).unwrap().asn, Asn(16));
        assert_eq!(db.lookup(Ipv4Addr::new(10, 9, 9, 3)).unwrap().asn, Asn(8));
        assert_eq!(db.lookup(Ipv4Addr::new(11, 0, 0, 1)), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut db = GeoDb::new();
        db.insert(Prefix::ALL, info(0.0, 0.0, 1));
        assert_eq!(
            db.lookup(Ipv4Addr::new(200, 200, 200, 200)).unwrap().asn,
            Asn(1)
        );
    }

    #[test]
    fn reinsert_replaces() {
        let mut db = GeoDb::new();
        db.insert(p("10.1.2.0/24"), info(0.0, 0.0, 1));
        db.insert(p("10.1.2.0/24"), info(0.0, 0.0, 2));
        assert_eq!(db.len(), 1);
        assert_eq!(db.lookup(Ipv4Addr::new(10, 1, 2, 1)).unwrap().asn, Asn(2));
    }

    #[test]
    fn host_route_matches_single_ip() {
        let mut db = GeoDb::new();
        db.insert(Prefix::host(Ipv4Addr::new(9, 9, 9, 9)), info(0.0, 0.0, 9));
        assert!(db.lookup(Ipv4Addr::new(9, 9, 9, 9)).is_some());
        assert!(db.lookup(Ipv4Addr::new(9, 9, 9, 8)).is_none());
    }

    #[test]
    fn lookup_entry_reports_matched_prefix() {
        let mut db = GeoDb::new();
        db.insert(p("10.0.0.0/8"), info(0.0, 0.0, 8));
        db.insert(p("10.1.0.0/16"), info(0.0, 0.0, 16));
        let (matched, _) = db.lookup_entry(Ipv4Addr::new(10, 1, 2, 3)).unwrap();
        assert_eq!(matched, p("10.1.0.0/16"));
    }

    #[test]
    fn lookup_block_uses_network_address() {
        let mut db = GeoDb::new();
        db.insert(p("10.1.2.0/24"), info(0.0, 0.0, 7));
        assert_eq!(db.lookup_block(p("10.1.2.0/24")).unwrap().asn, Asn(7));
        // Coarser covering block's network address also falls inside /8 here.
        assert!(db.lookup_block(p("10.2.0.0/16")).is_none());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_prefix() -> impl Strategy<Value = Prefix> {
        (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::new(addr, len))
    }

    proptest! {
        /// The trie agrees with a brute-force linear longest-match scan.
        #[test]
        fn lpm_matches_linear_scan(
            entries in proptest::collection::vec((arb_prefix(), any::<u32>()), 0..40),
            probes in proptest::collection::vec(any::<u32>(), 0..40),
        ) {
            let mut db = GeoDb::new();
            // Build last-write-wins reference map.
            let mut reference: Vec<(Prefix, u32)> = Vec::new();
            for (p, v) in &entries {
                let gi = GeoInfo {
                    point: GeoPoint::new(0.0, 0.0),
                    country: Country::UnitedStates,
                    asn: Asn(*v),
                };
                db.insert(*p, gi);
                if let Some(slot) = reference.iter_mut().find(|(q, _)| q == p) {
                    slot.1 = *v;
                } else {
                    reference.push((*p, *v));
                }
            }
            for probe in probes {
                let ip = Ipv4Addr::from(probe);
                let expect = reference
                    .iter()
                    .filter(|(p, _)| p.contains(ip))
                    .max_by_key(|(p, _)| p.len())
                    .map(|(_, v)| *v);
                let got = db.lookup(ip).map(|i| i.asn.0);
                prop_assert_eq!(got, expect);
            }
        }

        /// Every inserted prefix is found via its own network address when no
        /// more-specific prefix shadows it.
        #[test]
        fn inserted_prefix_is_retrievable(p in arb_prefix()) {
            let mut db = GeoDb::new();
            let gi = GeoInfo {
                point: GeoPoint::new(1.0, 2.0),
                country: Country::Japan,
                asn: Asn(42),
            };
            db.insert(p, gi);
            let (matched, info) = db.lookup_entry(p.network()).unwrap();
            prop_assert_eq!(matched, p);
            prop_assert_eq!(info.asn, Asn(42));
        }
    }
}
