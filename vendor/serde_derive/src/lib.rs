//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real serde is
//! unavailable. The workspace only ever *derives* `Serialize` /
//! `Deserialize` (the traits are marker-only in the sibling `serde` stub);
//! nothing performs real serialization. These derives parse just enough of
//! the item — name and generics — to emit empty trait impls, and accept
//! `#[serde(...)]` helper attributes so existing annotations keep
//! compiling.

use proc_macro::{TokenStream, TokenTree};

/// The parsed shape of a derive target: its name and raw generics tokens.
struct Target {
    name: String,
    /// Full generic parameter list including bounds, e.g. `<T: Clone, 'a>`.
    decl: String,
    /// Generic arguments for the type position, bounds stripped, e.g.
    /// `<T, 'a>`.
    args: String,
}

/// Extracts (name, generics-decl, generics-args) from a derive input.
fn describe(input: TokenStream) -> Target {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Find the item keyword at top level (attributes are single groups
    // preceded by '#', so a bare `struct`/`enum` ident is unambiguous).
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                break;
            }
        }
        i += 1;
    }
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("derive target has no name"),
    };
    i += 1;
    // Optional generics: consume `<` ... matching `>` tracking depth.
    let mut decl = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            while i < tokens.len() {
                let t = &tokens[i];
                if let TokenTree::Punct(p) = t {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                }
                decl.push_str(&t.to_string());
                decl.push(' ');
                i += 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }
    let args = strip_bounds(&decl);
    Target { name, decl, args }
}

/// Turns `<T: Clone, const N: usize>` into `<T, N>` for the type position.
fn strip_bounds(decl: &str) -> String {
    let inner = decl
        .trim()
        .trim_start_matches('<')
        .trim_end_matches('>')
        .trim();
    if inner.is_empty() {
        return String::new();
    }
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for ch in inner.chars() {
        match ch {
            '<' | '(' | '[' => {
                depth += 1;
                current.push(ch);
            }
            '>' | ')' | ']' => {
                depth -= 1;
                current.push(ch);
            }
            ',' if depth == 0 => {
                args.push(std::mem::take(&mut current));
            }
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        args.push(current);
    }
    let cleaned: Vec<String> = args
        .iter()
        .map(|a| {
            let head = a.split(':').next().unwrap_or(a).trim();
            // `const N : usize` → `N`.
            head.trim_start_matches("const").trim().to_string()
        })
        .collect();
    format!("<{}>", cleaned.join(", "))
}

fn empty_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let t = describe(input);
    format!(
        "impl {decl} {tr} for {name} {args} {{}}",
        decl = t.decl,
        tr = trait_path,
        name = t.name,
        args = t.args
    )
    .parse()
    .expect("generated impl parses")
}

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Serialize")
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Deserialize")
}
