//! §6: the role of server deployments (Figure 25), plus the design-choice
//! ablations DESIGN.md calls out.

use crate::{f, header, Scale, SEED};
use eum_mapping::{run_study, Scheme, StudyConfig, StudyRow};
use eum_netmodel::Internet;
use eum_stats::Table;

/// The study configuration at a given scale. Paper scale uses the full
/// 2642-location universe; target count and run count are reduced from
/// the paper's 8000/100 to keep the runtime in minutes (the averages are
/// stable well before 100 runs — documented in EXPERIMENTS.md).
pub fn study_config(scale: Scale) -> StudyConfig {
    match scale {
        Scale::Paper => StudyConfig {
            seed: SEED,
            universe_size: 2642,
            ping_targets: 2000,
            target_cover_miles: 40.0,
            deployment_counts: vec![40, 80, 160, 320, 640, 1280, 2560],
            runs: 30,
        },
        Scale::Quick => StudyConfig {
            seed: SEED,
            universe_size: 400,
            ping_targets: 400,
            target_cover_miles: 80.0,
            deployment_counts: vec![40, 80, 160, 320],
            runs: 8,
        },
    }
}

/// Figure 25: mean/95th/99th percentile ping latency for NS, EU, and
/// CANS mapping as a function of deployment count.
pub fn fig25(net: &Internet, scale: Scale) -> String {
    let mut out = header(
        "Figure 25",
        "Latencies achieved by EU, CANS, and NS mapping as a function of CDN deployment locations.",
        scale,
    );
    let rows = run_study(net, &study_config(scale));
    out.push_str(&render_rows(&rows));
    out.push_str("\npaper: all schemes improve with more deployments; means nearly identical; EU clearly best at p95/p99; NS's p99 flattens beyond ~160 locations (stuck near 186 ms) while EU keeps dropping; CANS sits between\n");
    out
}

/// Renders study rows as a table with one row per deployment count.
pub fn render_rows(rows: &[StudyRow]) -> String {
    let mut t = Table::new([
        "deployments",
        "NS mean",
        "NS p95",
        "NS p99",
        "CANS mean",
        "CANS p95",
        "CANS p99",
        "EU mean",
        "EU p95",
        "EU p99",
    ]);
    let mut counts: Vec<usize> = rows.iter().map(|r| r.deployments).collect();
    counts.sort_unstable();
    counts.dedup();
    for n in counts {
        let get = |s: Scheme| {
            rows.iter()
                .find(|r| r.scheme == s && r.deployments == n)
                .expect("row exists")
        };
        let (ns, cans, eu) = (get(Scheme::Ns), get(Scheme::Cans), get(Scheme::Eu));
        t.row([
            n.to_string(),
            f(ns.mean_ms),
            f(ns.p95_ms),
            f(ns.p99_ms),
            f(cans.mean_ms),
            f(cans.p95_ms),
            f(cans.p99_ms),
            f(eu.mean_ms),
            f(eu.p95_ms),
            f(eu.p99_ms),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_netmodel::InternetConfig;

    #[test]
    fn fig25_renders_with_quick_study() {
        let net = Internet::generate(InternetConfig::tiny(SEED));
        let s = fig25(&net, Scale::Quick);
        assert!(s.contains("deployments"));
        assert!(s.contains("paper:"));
        assert!(s.lines().count() > 6);
    }
}
