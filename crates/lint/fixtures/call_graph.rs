//! Call-graph closure fixture: a pinned hot fn calling un-pinned
//! helpers. `leaky_helper` must inherit the purity rules through the
//! closure; `cold_refresh` is cut by its `#[cold]` attribute; and
//! `cut_by_config` is cut by a `[graph] boundary` entry in the test's
//! config.

pub fn pinned_hot(n: usize) -> usize {
    let a = leaky_helper(n);
    cold_refresh();
    cut_by_config();
    a
}

fn leaky_helper(n: usize) -> usize {
    let v = vec![0u8; n];
    v.len()
}

#[cold]
fn cold_refresh() {
    let _ = String::from("cold publication path");
}

fn cut_by_config() {
    let _ = Box::new(0u64);
}
