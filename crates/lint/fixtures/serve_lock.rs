// Fixture for the serve-lock rule.

fn violating(m: &std::sync::Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(|e| e.into_inner()) // line 4: fires serve-lock
}

fn justified(m: &std::sync::RwLock<u64>) -> u64 {
    // lint: allow(serve-lock) — held for one word copy during shutdown only
    *m.read().unwrap_or_else(|e| e.into_inner())
}

fn clean(v: &std::sync::atomic::AtomicU64) -> u64 {
    v.load(std::sync::atomic::Ordering::Acquire)
}
