#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! The CDN platform model: deployments, server caches, content, origins,
//! and transfer timing.
//!
//! This crate is the substrate under the mapping system: it owns the
//! clusters/servers the mapping system assigns clients to (paper §2.2
//! "Server Assignment"), the content catalog those servers cache, the
//! origin/overlay path used on cache misses and dynamic pages, and the
//! TCP model that turns RTT + loss into the TTFB and download-time metrics
//! of §4.1.

pub mod content;
pub mod deployment;
pub mod lru;
pub mod transfer;

pub use content::{
    CatalogConfig, ContentCatalog, ContentId, EmbeddedObject, HostedDomain, TrafficClass,
};
pub use deployment::{deployment_universe, Cluster, ClusterId, DeploymentSite, Server, ServerId};
pub use lru::LruSet;
pub use transfer::{overlay_fetch_ms, page_timings, PageLoadInputs, PageTimings, TcpModel};

use eum_geo::{Asn, GeoInfo};
use eum_netmodel::{Endpoint, Internet};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The AS number the CDN announces its server prefixes from.
pub const CDN_ASN: Asn = Asn(64_500);

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct DeployConfig {
    /// Servers per cluster.
    pub servers_per_cluster: usize,
    /// Cache capacity per server, objects.
    pub cache_objects_per_server: usize,
    /// Capacity of each cluster in demand units.
    pub cluster_capacity: f64,
}

impl Default for DeployConfig {
    fn default() -> Self {
        DeployConfig {
            servers_per_cluster: 8,
            cache_objects_per_server: 4096,
            cluster_capacity: f64::INFINITY,
        }
    }
}

/// The deployed CDN platform.
#[derive(Debug, Clone)]
pub struct CdnPlatform {
    /// All clusters.
    pub clusters: Vec<Cluster>,
    /// All servers (contiguous per cluster).
    pub servers: Vec<Server>,
    /// The TCP model used for this platform's transfers.
    pub tcp: TcpModel,
    by_ip: HashMap<Ipv4Addr, ServerId>,
}

impl CdnPlatform {
    /// Deploys clusters at the given sites into `internet`, allocating a
    /// /24 per cluster (registered in the geolocation DB and BGP table —
    /// the CDN is part of the same Internet its mapping system measures).
    pub fn deploy(
        internet: &mut Internet,
        sites: &[DeploymentSite],
        cfg: &DeployConfig,
    ) -> CdnPlatform {
        let mut clusters = Vec::with_capacity(sites.len());
        let mut servers = Vec::new();
        let mut by_ip = HashMap::new();
        for (i, site) in sites.iter().enumerate() {
            let id = ClusterId(i as u32);
            let prefix = internet.alloc_infra_block(GeoInfo {
                point: site.loc,
                country: site.country,
                asn: CDN_ASN,
            });
            let first = servers.len() as u32;
            for s in 0..cfg.servers_per_cluster {
                let sid = ServerId(servers.len() as u32);
                // Servers occupy .10, .11, … of the cluster /24.
                let ip = Ipv4Addr::from(prefix.addr() | (10 + s as u32));
                by_ip.insert(ip, sid);
                servers.push(Server {
                    id: sid,
                    cluster: id,
                    ip,
                    cache: LruSet::new(cfg.cache_objects_per_server),
                    alive: true,
                    requests: 0,
                    hits: 0,
                });
            }
            clusters.push(Cluster {
                id,
                name: site.name.clone(),
                loc: site.loc,
                country: site.country,
                asn: CDN_ASN,
                prefix,
                capacity: cfg.cluster_capacity,
                servers: first..first + cfg.servers_per_cluster as u32,
                alive: true,
            });
        }
        CdnPlatform {
            clusters,
            servers,
            tcp: TcpModel::default(),
            by_ip,
        }
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The cluster with the given ID.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// The server with the given ID.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.index()]
    }

    /// Mutable server access (cache operations).
    pub fn server_mut(&mut self, id: ServerId) -> &mut Server {
        &mut self.servers[id.index()]
    }

    /// Finds the server owning a serving IP.
    pub fn server_by_ip(&self, ip: Ipv4Addr) -> Option<ServerId> {
        self.by_ip.get(&ip).copied()
    }

    /// A cluster's representative network endpoint (its first server).
    pub fn cluster_endpoint(&self, id: ClusterId) -> Endpoint {
        let c = self.cluster(id);
        let ip = Ipv4Addr::from(c.prefix.addr() | 10);
        Endpoint::infra(ip, c.loc, c.country, c.asn)
    }

    /// A server's network endpoint.
    pub fn server_endpoint(&self, id: ServerId) -> Endpoint {
        let s = self.server(id);
        let c = self.cluster(s.cluster);
        Endpoint::infra(s.ip, c.loc, c.country, c.asn)
    }

    /// Marks a cluster (and its servers) dead or alive — failure injection
    /// for mapping-system liveness tests.
    pub fn set_cluster_alive(&mut self, id: ClusterId, alive: bool) {
        self.clusters[id.index()].alive = alive;
        let range = self.clusters[id.index()].servers.clone();
        for s in range {
            self.servers[s as usize].alive = alive;
        }
    }

    /// IDs of live clusters.
    pub fn live_clusters(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.clusters.iter().filter(|c| c.alive).map(|c| c.id)
    }

    /// Aggregate cache hit rate across all servers.
    pub fn overall_hit_rate(&self) -> f64 {
        let requests: u64 = self.servers.iter().map(|s| s.requests).sum();
        let hits: u64 = self.servers.iter().map(|s| s.hits).sum();
        if requests == 0 {
            0.0
        } else {
            hits as f64 / requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_netmodel::InternetConfig;

    fn platform() -> (Internet, CdnPlatform) {
        let mut net = Internet::generate(InternetConfig::tiny(5));
        let sites = deployment_universe(5, 12);
        let cdn = CdnPlatform::deploy(
            &mut net,
            &sites,
            &DeployConfig {
                servers_per_cluster: 4,
                cache_objects_per_server: 64,
                cluster_capacity: 1e9,
            },
        );
        (net, cdn)
    }

    #[test]
    fn deploy_creates_clusters_and_servers() {
        let (_, cdn) = platform();
        assert_eq!(cdn.cluster_count(), 12);
        assert_eq!(cdn.servers.len(), 48);
        for c in &cdn.clusters {
            assert_eq!(c.server_ids().count(), 4);
            for sid in c.server_ids() {
                assert_eq!(cdn.server(sid).cluster, c.id);
                assert!(c.prefix.contains(cdn.server(sid).ip));
            }
        }
    }

    #[test]
    fn servers_resolve_by_ip() {
        let (_, cdn) = platform();
        for s in &cdn.servers {
            assert_eq!(cdn.server_by_ip(s.ip), Some(s.id));
        }
        assert_eq!(cdn.server_by_ip("1.2.3.4".parse().unwrap()), None);
    }

    #[test]
    fn clusters_are_geolocatable_in_the_internet() {
        let (net, cdn) = platform();
        for c in &cdn.clusters {
            let info = net.geodb.lookup_block(c.prefix).expect("cluster in geodb");
            assert_eq!(info.asn, CDN_ASN);
            assert_eq!(info.country, c.country);
            assert_eq!(net.bgp.origin(c.prefix), Some(CDN_ASN));
        }
    }

    #[test]
    fn failure_injection_toggles_liveness() {
        let (_, mut cdn) = platform();
        let id = ClusterId(3);
        cdn.set_cluster_alive(id, false);
        assert!(!cdn.cluster(id).alive);
        assert!(cdn.live_clusters().all(|c| c != id));
        for sid in cdn.cluster(id).server_ids().collect::<Vec<_>>() {
            assert!(!cdn.server(sid).alive);
        }
        cdn.set_cluster_alive(id, true);
        assert_eq!(cdn.live_clusters().count(), cdn.cluster_count());
    }

    #[test]
    fn endpoints_carry_cluster_location() {
        let (_, cdn) = platform();
        let ep = cdn.cluster_endpoint(ClusterId(0));
        assert_eq!(ep.asn, CDN_ASN);
        assert_eq!(ep.loc, cdn.cluster(ClusterId(0)).loc);
        let sep = cdn.server_endpoint(ServerId(0));
        assert_eq!(sep.ip, cdn.server(ServerId(0)).ip);
    }

    #[test]
    fn hit_rate_improves_on_repeats() {
        let (_, mut cdn) = platform();
        let content = ContentId {
            domain: 1,
            object: 2,
        };
        let sid = ServerId(0);
        assert!(!cdn.server_mut(sid).serve(content, true));
        for _ in 0..9 {
            assert!(cdn.server_mut(sid).serve(content, true));
        }
        assert!((cdn.overall_hit_rate() - 0.9).abs() < 1e-12);
    }
}
