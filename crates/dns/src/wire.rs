//! DNS wire-format codec (RFC 1035 §4) with name compression and the
//! EDNS0 OPT pseudo-RR (RFC 6891).
//!
//! The codec is exercised on every authoritative query in the simulator so
//! the system's DNS traffic is real protocol bytes, not structs passed by
//! reference. It is also the per-query cost floor of the serve path, so it
//! is written to be allocation-free:
//!
//! * [`encode_message_into`] / [`decode_message_into`] reuse caller-owned
//!   buffers; in steady state (warmed capacities) neither touches the heap
//!   for A/ECS traffic. The by-value [`encode_message`] / [`decode_message`]
//!   wrappers remain for one-shot call sites and tests.
//! * name compression uses a small open-addressed offset table keyed by a
//!   hash of the suffix wire bytes — candidate offsets are verified by
//!   walking the already-encoded buffer, so there is no per-label cloning
//!   and no `HashMap` (the old encoder cloned `labels[i..]` into a fresh
//!   `Vec<String>` for *every* label of *every* name).
//!
//! Robustness rules:
//!
//! * compression pointers must point strictly backward; forward and
//!   self-pointers are rejected as [`WireError::PointerLoop`], and a hop
//!   limit bounds adversarial backward chains;
//! * records of unknown type are *skipped*, as a real resolver would do,
//!   rather than failing the whole message;
//! * all length fields are validated against the actual buffer.

use crate::edns::OptData;
use crate::message::{Flags, Message, Question, RData, Record, RrType, SoaData};
use crate::name::DnsName;
use bytes::BufMut;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Errors from decoding (or, rarely, encoding) a DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A label length byte was invalid (0x40/0x80 prefixes are reserved).
    BadLabel,
    /// Compression pointers looped, pointed forward, or exceeded the hop
    /// limit.
    PointerLoop,
    /// A decoded name violated RFC 1035 limits.
    BadName,
    /// An ECS option violated RFC 7871 validity rules.
    BadEcs(&'static str),
    /// Trailing bytes after the last record.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("message truncated"),
            WireError::BadLabel => f.write_str("invalid label length byte"),
            WireError::PointerLoop => f.write_str("compression pointer loop"),
            WireError::BadName => f.write_str("invalid domain name"),
            WireError::BadEcs(why) => write!(f, "invalid ECS option: {why}"),
            WireError::TrailingBytes => f.write_str("trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum compression-pointer hops while reading one name.
const MAX_POINTER_HOPS: usize = 32;

/// Slots in the compression offset table. A message rarely holds more than
/// a dozen distinct names of a handful of labels each, so 128 suffix slots
/// give a low load factor; when the table does fill, the encoder simply
/// stops compressing new suffixes (correct, just larger output).
const NAME_TABLE_SLOTS: usize = 128;

/// Open-addressed suffix → buffer-offset table for name compression.
///
/// Each slot holds `(hash of suffix wire bytes, offset)`; hash 0 marks an
/// empty slot (the hash function never returns 0). A hash match is only a
/// *candidate* — the encoder verifies it by walking the labels already in
/// the output buffer, so collisions cost a comparison, never correctness.
struct NameTable {
    slots: [(u32, u16); NAME_TABLE_SLOTS],
}

/// FNV-1a over the suffix wire bytes, folded to a nonzero u32.
fn suffix_hash(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let folded = (h ^ (h >> 32)) as u32;
    if folded == 0 {
        1
    } else {
        folded
    }
}

/// Does the name encoded at `pos` in `buf` (following backward compression
/// pointers) spell exactly the labels in `suffix` (length-prefixed, no
/// terminator)?
fn suffix_matches_at(buf: &[u8], mut pos: usize, suffix: &[u8]) -> bool {
    let mut matched = 0usize;
    let mut hops = 0usize;
    loop {
        let Some(&b) = buf.get(pos) else {
            return false;
        };
        if b & 0xC0 == 0xC0 {
            let Some(&b2) = buf.get(pos + 1) else {
                return false;
            };
            let target = (((b & 0x3F) as usize) << 8) | b2 as usize;
            if target >= pos {
                return false;
            }
            pos = target;
            hops += 1;
            if hops > MAX_POINTER_HOPS {
                return false;
            }
        } else if b == 0 {
            return matched == suffix.len();
        } else if b & 0xC0 != 0 {
            return false;
        } else {
            let l = 1 + b as usize;
            let Some(chunk) = buf.get(pos..pos + l) else {
                return false;
            };
            // lint: allow(serve-index) — the length check short-circuits before the slice
            if suffix.len() < matched + l || &suffix[matched..matched + l] != chunk {
                return false;
            }
            matched += l;
            pos += l;
        }
    }
}

impl NameTable {
    fn new() -> NameTable {
        NameTable {
            slots: [(0, 0); NAME_TABLE_SLOTS],
        }
    }

    /// Looks up `suffix`; on a verified hit returns its offset. On a miss,
    /// registers `suffix` at `offset` (when it is pointer-addressable and a
    /// free slot exists) and returns `None`.
    // lint: allow(serve-index) — idx stays < NAME_TABLE_SLOTS by modulo
    fn offset_or_insert(&mut self, buf: &[u8], suffix: &[u8], offset: usize) -> Option<u16> {
        let h = suffix_hash(suffix);
        let mut idx = h as usize % NAME_TABLE_SLOTS;
        for _ in 0..NAME_TABLE_SLOTS {
            let (slot_hash, slot_off) = self.slots[idx];
            if slot_hash == 0 {
                if offset <= 0x3FFF {
                    self.slots[idx] = (h, offset as u16);
                }
                return None;
            }
            if slot_hash == h && suffix_matches_at(buf, slot_off as usize, suffix) {
                return Some(slot_off);
            }
            idx = (idx + 1) % NAME_TABLE_SLOTS;
        }
        None // table full: skip compression for this suffix
    }
}

struct Encoder<'a> {
    buf: &'a mut Vec<u8>,
    table: NameTable,
}

impl Encoder<'_> {
    // lint: allow(serve-index) — i < wire.len() in the loop; labels never overrun the name
    fn put_name(&mut self, name: &DnsName) {
        let wire = name.wire();
        let mut i = 0usize;
        while i < wire.len() {
            let suffix = &wire[i..];
            if let Some(off) = self
                .table
                .offset_or_insert(self.buf, suffix, self.buf.len())
            {
                self.buf.put_u16(0xC000 | off);
                return;
            }
            let l = 1 + wire[i] as usize;
            self.buf.put_slice(&wire[i..i + l]);
            i += l;
        }
        self.buf.put_u8(0);
    }

    fn put_question(&mut self, q: &Question) {
        self.put_name(&q.name);
        self.buf.put_u16(q.rtype.code());
        self.buf.put_u16(1); // IN
    }

    fn put_record(&mut self, r: &Record) {
        match &r.rdata {
            RData::Opt(opt) => {
                // OPT: root name, CLASS = UDP size, TTL = ext fields.
                self.buf.put_u8(0);
                self.buf.put_u16(RrType::Opt.code());
                self.buf.put_u16(opt.udp_payload_size);
                let ttl = (opt.ext_rcode as u32) << 24
                    | (opt.version as u32) << 16
                    | ((opt.dnssec_ok as u32) << 15);
                self.buf.put_u32(ttl);
                let len_pos = self.buf.len();
                self.buf.put_u16(0);
                opt.encode_rdata(self.buf);
                self.patch_len(len_pos);
            }
            _ => {
                self.put_name(&r.name);
                self.buf.put_u16(r.rtype().code());
                self.buf.put_u16(1); // IN
                self.buf.put_u32(r.ttl);
                let len_pos = self.buf.len();
                self.buf.put_u16(0);
                match &r.rdata {
                    RData::A(ip) => self.buf.put_slice(&ip.octets()),
                    RData::Aaaa(ip) => self.buf.put_slice(&ip.octets()),
                    RData::Ns(n) | RData::Cname(n) => self.put_name(n),
                    RData::Soa(soa) => {
                        self.put_name(&soa.mname);
                        self.put_name(&soa.rname);
                        self.buf.put_u32(soa.serial);
                        self.buf.put_u32(soa.refresh);
                        self.buf.put_u32(soa.retry);
                        self.buf.put_u32(soa.expire);
                        self.buf.put_u32(soa.minimum);
                    }
                    RData::Txt(s) => {
                        // Split into ≤255-octet character-strings.
                        for chunk in s.as_bytes().chunks(255) {
                            self.buf.put_u8(chunk.len() as u8);
                            self.buf.put_slice(chunk);
                        }
                        if s.is_empty() {
                            self.buf.put_u8(0);
                        }
                    }
                    // lint: allow(serve-panic) — the outer match sent Opt to the first arm
                    RData::Opt(_) => unreachable!("handled above"),
                }
                self.patch_len(len_pos);
            }
        }
    }

    // lint: allow(serve-index) — len_pos came from buf.len() before two pushed bytes
    fn patch_len(&mut self, len_pos: usize) {
        let rdlen = (self.buf.len() - len_pos - 2) as u16;
        self.buf[len_pos] = (rdlen >> 8) as u8;
        self.buf[len_pos + 1] = (rdlen & 0xFF) as u8;
    }
}

/// Encodes a message into `buf`, clearing it first. Reusing `buf` across
/// calls makes encoding allocation-free once its capacity has warmed up.
pub fn encode_message_into(msg: &Message, buf: &mut Vec<u8>) {
    buf.clear();
    let mut e = Encoder {
        buf,
        table: NameTable::new(),
    };
    e.buf.put_u16(msg.id);
    e.buf.put_u16(msg.flags.to_u16());
    e.buf.put_u16(msg.questions.len() as u16);
    e.buf.put_u16(msg.answers.len() as u16);
    e.buf.put_u16(msg.authorities.len() as u16);
    e.buf.put_u16(msg.additionals.len() as u16);
    for q in &msg.questions {
        e.put_question(q);
    }
    for r in &msg.answers {
        e.put_record(r);
    }
    for r in &msg.authorities {
        e.put_record(r);
    }
    for r in &msg.additionals {
        e.put_record(r);
    }
}

/// Encodes a message to freshly allocated wire bytes.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut buf = Vec::with_capacity(512);
    encode_message_into(msg, &mut buf);
    buf
}

struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.pos + n > self.buf.len() {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    // lint: allow(serve-index) — need() bounds-checks before every index
    fn u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    // lint: allow(serve-index) — need() bounds-checks before every index
    fn u16(&mut self) -> Result<u16, WireError> {
        self.need(2)?;
        let v = u16::from_be_bytes([self.buf[self.pos], self.buf[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    // lint: allow(serve-index) — need() bounds-checks before every index
    fn u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        let v = u32::from_be_bytes([
            self.buf[self.pos],
            self.buf[self.pos + 1],
            self.buf[self.pos + 2],
            self.buf[self.pos + 3],
        ]);
        self.pos += 4;
        Ok(v)
    }

    // lint: allow(serve-index) — need() bounds-checks before every index
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.need(n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a (possibly compressed) name directly into an inline
    /// [`DnsName`] — no intermediate `Vec<String>`. Pointers must point
    /// strictly backward; a forward or self-pointer is malformed (no sane
    /// encoder emits one, and accepting them admits decompression loops).
    fn name(&mut self) -> Result<DnsName, WireError> {
        let mut out = DnsName::root();
        let mut p = self.pos;
        let mut jumped = false;
        let mut hops = 0;
        loop {
            let b = *self.buf.get(p).ok_or(WireError::Truncated)?;
            if b & 0xC0 == 0xC0 {
                let b2 = *self.buf.get(p + 1).ok_or(WireError::Truncated)?;
                if !jumped {
                    self.pos = p + 2;
                    jumped = true;
                }
                let target = (((b & 0x3F) as usize) << 8) | b2 as usize;
                if target >= p {
                    return Err(WireError::PointerLoop);
                }
                p = target;
                hops += 1;
                if hops > MAX_POINTER_HOPS {
                    return Err(WireError::PointerLoop);
                }
            } else if b == 0 {
                if !jumped {
                    self.pos = p + 1;
                }
                break;
            } else if b & 0xC0 != 0 {
                return Err(WireError::BadLabel);
            } else {
                let len = b as usize;
                let end = p + 1 + len;
                let bytes = self.buf.get(p + 1..end).ok_or(WireError::Truncated)?;
                out.push_label(bytes).map_err(|_| WireError::BadName)?;
                p = end;
            }
        }
        Ok(out)
    }

    fn question(&mut self) -> Result<Option<Question>, WireError> {
        let name = self.name()?;
        let tcode = self.u16()?;
        let _class = self.u16()?;
        Ok(RrType::from_code(tcode).map(|rtype| Question { name, rtype }))
    }

    /// Decodes one record; returns `None` for unknown types (skipped).
    fn record(&mut self) -> Result<Option<Record>, WireError> {
        let name = self.name()?;
        let tcode = self.u16()?;
        let class = self.u16()?;
        let ttl = self.u32()?;
        let rdlen = self.u16()? as usize;
        let rdata_start = self.pos;
        self.need(rdlen)?;
        let rtype = RrType::from_code(tcode);
        let rec = match rtype {
            None => {
                self.pos = rdata_start + rdlen;
                return Ok(None);
            }
            Some(RrType::A) => {
                if rdlen != 4 {
                    return Err(WireError::Truncated);
                }
                let o = self.bytes(4)?;
                // lint: allow(serve-index) — bytes(4) returned exactly four octets
                RData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            Some(RrType::Aaaa) => {
                if rdlen != 16 {
                    return Err(WireError::Truncated);
                }
                let o = self.bytes(16)?;
                let mut a = [0u8; 16];
                a.copy_from_slice(o);
                RData::Aaaa(Ipv6Addr::from(a))
            }
            Some(RrType::Ns) => RData::Ns(self.name()?),
            Some(RrType::Cname) => RData::Cname(self.name()?),
            Some(RrType::Soa) => {
                let mname = self.name()?;
                let rname = self.name()?;
                RData::Soa(SoaData {
                    mname,
                    rname,
                    serial: self.u32()?,
                    refresh: self.u32()?,
                    retry: self.u32()?,
                    expire: self.u32()?,
                    minimum: self.u32()?,
                })
            }
            Some(RrType::Txt) => {
                // lint: allow(serve-alloc) — TXT rdata is inherently heap-backed; A/ECS
                // traffic never reaches this arm
                let mut out = String::new();
                while self.pos < rdata_start + rdlen {
                    let l = self.u8()? as usize;
                    let chunk = self.bytes(l)?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| WireError::BadName)?);
                }
                RData::Txt(out)
            }
            Some(RrType::Opt) => {
                let options = OptData::decode_rdata(self.bytes(rdlen)?)?;
                RData::Opt(OptData {
                    udp_payload_size: class,
                    ext_rcode: (ttl >> 24) as u8,
                    version: (ttl >> 16) as u8,
                    dnssec_ok: ttl & 0x8000 != 0,
                    options,
                })
            }
        };
        if self.pos != rdata_start + rdlen {
            return Err(WireError::Truncated);
        }
        // OPT carries no owner TTL semantics; normal records keep theirs.
        let ttl = if matches!(rec, RData::Opt(_)) { 0 } else { ttl };
        Ok(Some(Record {
            name,
            ttl,
            rdata: rec,
        }))
    }
}

/// Decodes a message from wire bytes into `out`, reusing its section
/// vectors' capacity. On error the contents of `out` are unspecified.
pub fn decode_message_into(bytes: &[u8], out: &mut Message) -> Result<(), WireError> {
    out.questions.clear();
    out.answers.clear();
    out.authorities.clear();
    out.additionals.clear();
    let mut d = Decoder { buf: bytes, pos: 0 };
    out.id = d.u16()?;
    out.flags = Flags::from_u16(d.u16()?);
    let qd = d.u16()? as usize;
    let an = d.u16()? as usize;
    let ns = d.u16()? as usize;
    let ar = d.u16()? as usize;
    for _ in 0..qd {
        if let Some(q) = d.question()? {
            out.questions.push(q);
        }
    }
    let read_records = |d: &mut Decoder, n: usize, out: &mut Vec<Record>| {
        for _ in 0..n {
            if let Some(r) = d.record()? {
                out.push(r);
            }
        }
        Ok::<(), WireError>(())
    };
    read_records(&mut d, an, &mut out.answers)?;
    read_records(&mut d, ns, &mut out.authorities)?;
    read_records(&mut d, ar, &mut out.additionals)?;
    if d.pos != bytes.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(())
}

/// Decodes a message from wire bytes into a fresh [`Message`].
pub fn decode_message(bytes: &[u8]) -> Result<Message, WireError> {
    let mut out = Message::empty();
    decode_message_into(bytes, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edns::{EcsOption, EdnsOption};
    use crate::message::{Question, Rcode};
    use crate::name::name;

    fn round_trip(msg: &Message) -> Message {
        let bytes = encode_message(msg);
        decode_message(&bytes).expect("decode")
    }

    #[test]
    fn simple_query_round_trips() {
        let q = Message::query(0x1234, Question::a(name("www.example.com")), None);
        assert_eq!(round_trip(&q), q);
    }

    #[test]
    fn query_with_ecs_round_trips() {
        let ecs = EcsOption::query("93.184.216.34".parse().unwrap(), 24);
        let q = Message::query(
            1,
            Question::a(name("foo.net")),
            Some(OptData::with_ecs(ecs)),
        );
        assert_eq!(round_trip(&q), q);
    }

    #[test]
    fn full_response_round_trips() {
        let q = Message::query(2, Question::a(name("www.whitehouse.gov")), None);
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(Record::cname(
            name("www.whitehouse.gov"),
            300,
            name("e2561.b.akamaiedge.net"),
        ));
        r.answers.push(Record::a(
            name("e2561.b.akamaiedge.net"),
            20,
            "96.1.2.3".parse().unwrap(),
        ));
        r.answers.push(Record::a(
            name("e2561.b.akamaiedge.net"),
            20,
            "96.1.2.4".parse().unwrap(),
        ));
        r.authorities.push(Record::ns(
            name("b.akamaiedge.net"),
            4000,
            name("n0b.akamaiedge.net"),
        ));
        r.additionals.push(Record::a(
            name("n0b.akamaiedge.net"),
            4000,
            "192.5.6.7".parse().unwrap(),
        ));
        let ecs = EcsOption {
            addr: "93.184.216.0".parse().unwrap(),
            source_prefix: 24,
            scope_prefix: 20,
        };
        r.set_opt(OptData::with_ecs(ecs));
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn into_variants_reuse_buffers_and_agree_with_wrappers() {
        let q = Message::query(11, Question::a(name("reuse.example.com")), None);
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(Record::a(
            name("reuse.example.com"),
            20,
            "10.0.0.1".parse().unwrap(),
        ));
        let mut buf = Vec::new();
        let mut scratch = Message::empty();
        for msg in [&q, &r] {
            encode_message_into(msg, &mut buf);
            assert_eq!(buf, encode_message(msg));
            decode_message_into(&buf, &mut scratch).unwrap();
            assert_eq!(&scratch, msg);
        }
    }

    #[test]
    fn soa_and_txt_round_trip() {
        let q = Message::query(
            3,
            Question {
                name: name("example.com"),
                rtype: RrType::Soa,
            },
            None,
        );
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(Record {
            name: name("example.com"),
            ttl: 3600,
            rdata: RData::Soa(SoaData {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 2014032801,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        });
        r.answers.push(Record {
            name: name("example.com"),
            ttl: 60,
            rdata: RData::Txt("whoami=10.1.2.53".to_string()),
        });
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn aaaa_round_trips() {
        let mut m = Message::query(
            4,
            Question {
                name: name("v6.example"),
                rtype: RrType::Aaaa,
            },
            None,
        );
        m.answers.push(Record {
            name: name("v6.example"),
            ttl: 30,
            rdata: RData::Aaaa("2001:db8::1".parse().unwrap()),
        });
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn long_txt_splits_into_character_strings() {
        let long = "x".repeat(600);
        let mut m = Message::query(
            5,
            Question {
                name: name("t.example"),
                rtype: RrType::Txt,
            },
            None,
        );
        m.answers.push(Record {
            name: name("t.example"),
            ttl: 1,
            rdata: RData::Txt(long.clone()),
        });
        let back = round_trip(&m);
        assert_eq!(back.answers[0].rdata, RData::Txt(long));
    }

    #[test]
    fn compression_actually_shrinks_repeated_names() {
        let q = Message::query(
            6,
            Question::a(name("a.very.long.shared.suffix.example.com")),
            None,
        );
        let mut r = Message::response_to(&q, Rcode::NoError);
        for i in 0..5u8 {
            r.answers.push(Record::a(
                name("a.very.long.shared.suffix.example.com"),
                20,
                Ipv4Addr::new(10, 0, 0, i),
            ));
        }
        let bytes = encode_message(&r);
        // Without compression, five copies of the 39-octet name would need
        // ~195 octets for owner names alone; with compression the whole
        // message stays far below that.
        let uncompressed_names = 6 * name("a.very.long.shared.suffix.example.com").wire_len();
        assert!(bytes.len() < uncompressed_names + 12 + 4 + 5 * 14);
        assert_eq!(decode_message(&bytes).unwrap(), r);
    }

    #[test]
    fn compression_reuses_partial_suffixes() {
        // Sibling names must share their common suffix via one pointer.
        let q = Message::query(12, Question::a(name("a.example.com")), None);
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(Record::a(
            name("a.example.com"),
            20,
            Ipv4Addr::new(10, 0, 0, 1),
        ));
        r.answers.push(Record::a(
            name("b.example.com"),
            20,
            Ipv4Addr::new(10, 0, 0, 2),
        ));
        let bytes = encode_message(&r);
        // "b.example.com" should encode as "b" + pointer: 2 + 2 octets.
        let full = name("b.example.com").wire_len();
        let both_full = 12 + (full + 4) + 2 * (full + 14);
        assert!(bytes.len() <= both_full - 2 * (full - 4));
        assert_eq!(decode_message(&bytes).unwrap(), r);
    }

    #[test]
    fn pointer_loop_is_detected() {
        // Hand-craft: header + question whose name is a pointer to itself.
        let mut buf = vec![0u8; 12];
        buf[5] = 1; // QDCOUNT = 1
        buf.extend_from_slice(&[0xC0, 12]); // pointer to offset 12 (itself)
        buf.extend_from_slice(&[0, 1, 0, 1]); // type A, class IN
        assert_eq!(decode_message(&buf), Err(WireError::PointerLoop));
    }

    #[test]
    fn forward_pointer_is_rejected() {
        // A pointer to a position *after* itself: decompression of such a
        // name can oscillate; we reject it outright.
        let mut buf = vec![0u8; 12];
        buf[5] = 1; // QDCOUNT = 1
        buf.extend_from_slice(&[0xC0, 14]); // pointer past itself
        buf.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(decode_message(&buf), Err(WireError::PointerLoop));
    }

    #[test]
    fn truncated_messages_error() {
        let q = Message::query(7, Question::a(name("foo.example")), None);
        let bytes = encode_message(&q);
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(decode_message(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_error() {
        let q = Message::query(8, Question::a(name("foo.example")), None);
        let mut bytes = encode_message(&q);
        bytes.push(0);
        assert_eq!(decode_message(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn unknown_record_type_is_skipped() {
        // A response claiming one answer of type 99 (SPF) — we skip it.
        let q = Message::query(9, Question::a(name("foo.example")), None);
        let mut bytes = encode_message(&q);
        bytes[7] = 1; // ANCOUNT = 1
        bytes.extend_from_slice(&[0]); // root owner
        bytes.extend_from_slice(&99u16.to_be_bytes());
        bytes.extend_from_slice(&1u16.to_be_bytes());
        bytes.extend_from_slice(&60u32.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&[0xAB, 0xCD]);
        let m = decode_message(&bytes).unwrap();
        assert!(m.answers.is_empty());
    }

    #[test]
    fn reserved_label_bits_rejected() {
        let mut buf = vec![0u8; 12];
        buf[5] = 1;
        buf.push(0x80); // 10xx xxxx — reserved
        buf.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(decode_message(&buf), Err(WireError::BadLabel));
    }

    #[test]
    fn opt_fields_survive_the_class_ttl_packing() {
        let mut m = Message::query(10, Question::a(name("foo.example")), None);
        m.set_opt(OptData {
            udp_payload_size: 1232,
            ext_rcode: 1,
            version: 0,
            dnssec_ok: true,
            options: vec![EdnsOption::Other {
                code: 10,
                data: vec![9, 9],
            }]
            .into(),
        });
        let back = round_trip(&m);
        let opt = back.opt().unwrap();
        assert_eq!(opt.udp_payload_size, 1232);
        assert_eq!(opt.ext_rcode, 1);
        assert!(opt.dnssec_ok);
        assert_eq!(opt.options.len(), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::message::Question;
    use crate::name::name;
    use proptest::prelude::*;

    fn arb_name() -> impl Strategy<Value = DnsName> {
        proptest::collection::vec("[a-z0-9]{1,12}", 1..5)
            .prop_map(|labels| DnsName::from_labels(labels).unwrap())
    }

    fn arb_record() -> impl Strategy<Value = Record> {
        (
            arb_name(),
            0u32..100_000,
            0u8..5u8,
            any::<u32>(),
            arb_name(),
        )
            .prop_map(|(n, ttl, kind, ip, target)| {
                let rdata = match kind {
                    0 => RData::A(std::net::Ipv4Addr::from(ip)),
                    1 => RData::Ns(target),
                    2 => RData::Cname(target),
                    3 => RData::Txt(format!("v={ip}")),
                    _ => RData::Aaaa(std::net::Ipv6Addr::from(ip as u128)),
                };
                Record {
                    name: n,
                    ttl,
                    rdata,
                }
            })
    }

    proptest! {
        /// encode → decode is the identity for arbitrary well-formed messages.
        #[test]
        fn encode_decode_identity(
            id in any::<u16>(),
            qname in arb_name(),
            answers in proptest::collection::vec(arb_record(), 0..8),
            authorities in proptest::collection::vec(arb_record(), 0..4),
        ) {
            let mut m = Message::query(id, Question::a(qname), None);
            m.answers = answers;
            m.authorities = authorities;
            let bytes = encode_message(&m);
            let back = decode_message(&bytes).unwrap();
            prop_assert_eq!(back, m);
        }

        /// The decoder never panics on arbitrary bytes.
        #[test]
        fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
            let _ = decode_message(&bytes);
        }

        /// Decoding random mutations of a valid message never panics, and
        /// successful decodes re-encode without panicking.
        #[test]
        fn mutation_fuzz(
            flip_at in 0usize..100,
            flip_to in any::<u8>(),
        ) {
            let q = Message::query(1, Question::a(name("www.example.com")), None);
            let mut bytes = encode_message(&q);
            if flip_at < bytes.len() {
                bytes[flip_at] = flip_to;
            }
            if let Ok(m) = decode_message(&bytes) {
                let _ = encode_message(&m);
            }
        }
    }
}
