//! The end-user-mapping roll-out scenario (§4) and its report.
//!
//! Recreates the paper's measurement window: simulated days 0–180 map to
//! January 1 – June 30, 2014; ECS turns on for the ECS-capable public
//! resolver providers between day 86 (March 28) and day 104 (April 15) on
//! a linear ramp. The report holds everything the §4 and §5 figures read:
//! the RUM stream, daily authoritative query counts, the NetSession pair
//! dataset, and per-(domain, LDNS) query counts in matched windows before
//! and after the roll-out.

use crate::netsession::PairDataset;
use crate::network::QueryCounters;
use crate::rum::{Metric, RumCollector};
use crate::workload::WorkloadConfig;
use eum_geo::Country;
use eum_telemetry::Registry;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Roll-out timeline and workload parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RolloutConfig {
    /// Total simulated days (paper window: 181 = Jan 1 – Jun 30).
    pub days: u32,
    /// First day of the ECS ramp (paper: day 86 = March 28).
    pub start_day: u32,
    /// Day the ramp completes (paper: day 104 = April 15).
    pub end_day: u32,
    /// ECS source prefix public resolvers send (paper: /24).
    pub ecs_source_prefix: u8,
    /// Workload parameters.
    #[serde(skip)]
    pub workload: WorkloadConfig,
    /// Length of the before/after comparison windows, days.
    pub window_days: u32,
    /// The §8 extension scenario: from this day on, *every* resolver —
    /// ISP and enterprise included — forwards ECS, modeling the broad
    /// adoption the paper argues for ("more ISPs would need to support
    /// the EDNS0 extension"). `None` replays the paper's actual roll-out.
    pub isp_ecs_day: Option<u32>,
}

impl RolloutConfig {
    /// The paper's timeline.
    pub fn paper() -> RolloutConfig {
        RolloutConfig {
            days: 181,
            start_day: 86,
            end_day: 104,
            ecs_source_prefix: 24,
            workload: WorkloadConfig::default(),
            window_days: 30,
            isp_ecs_day: None,
        }
    }

    /// A short timeline for tests.
    pub fn quick() -> RolloutConfig {
        RolloutConfig {
            days: 40,
            start_day: 16,
            end_day: 22,
            ecs_source_prefix: 24,
            workload: WorkloadConfig {
                views_per_day: 1_200.0,
                ..WorkloadConfig::default()
            },
            window_days: 12,
            isp_ecs_day: None,
        }
    }

    /// Fraction of eligible public resolvers with ECS enabled on `day`.
    pub fn ramp_fraction(&self, day: u32) -> f64 {
        if day < self.start_day {
            0.0
        } else if day >= self.end_day {
            1.0
        } else {
            (day - self.start_day) as f64 / (self.end_day - self.start_day) as f64
        }
    }

    /// The before-roll-out comparison window `[from, to)`.
    pub fn pre_window(&self) -> (u32, u32) {
        (
            self.start_day.saturating_sub(self.window_days),
            self.start_day,
        )
    }

    /// The after-roll-out comparison window `[from, to)`.
    pub fn post_window(&self) -> (u32, u32) {
        (
            self.end_day,
            (self.end_day + self.window_days).min(self.days),
        )
    }
}

/// One Figure-24 bucket: (domain, LDNS) pairs grouped by pre-roll-out
/// popularity in queries per TTL.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AmplificationBucket {
    /// Bucket upper edge in queries per TTL (buckets of width 0.1).
    pub popularity: f64,
    /// Geometric-mean factor increase in query rate post-roll-out.
    pub factor: f64,
    /// Pairs in the bucket.
    pub pairs: usize,
    /// Share of total pre-roll-out queries contributed by this bucket.
    pub pre_query_share: f64,
}

/// Measured-vs-analytic DNS amplification from the live resolver fleet.
///
/// After the roll-out timeline completes, the scenario replays one
/// seeded demand-weighted query plan through a real `eum-ldns`
/// [`ResolverFleet`](eum_ldns::ResolverFleet) against a live `eum-authd`
/// serving the final map — once with every resolver's ECS off, once with
/// the post-roll-out policy (ECS-capable public sites on). The upstream
/// query counts are *measured*; the `analytic_*` fields are the
/// cache-key set-counting estimate (delegations + distinct answer-cache
/// keys) the analytic simulator reasons with. The two must agree — the
/// `rollout_behaviour` integration test pins them within 25%.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetMeasurement {
    /// Resolver sites in the fleet.
    pub resolvers: usize,
    /// Downstream queries replayed in each run.
    pub downstream_queries: u64,
    /// Measured upstream queries with ECS off everywhere.
    pub upstream_ecs_off: u64,
    /// Measured upstream queries with the post-roll-out ECS policy.
    pub upstream_ecs_on: u64,
    /// Analytic estimate for the ECS-off run.
    pub analytic_ecs_off: u64,
    /// Analytic estimate for the ECS-on run.
    pub analytic_ecs_on: u64,
}

impl FleetMeasurement {
    /// An empty measurement (used when the fleet replay is skipped).
    pub fn empty() -> FleetMeasurement {
        FleetMeasurement {
            resolvers: 0,
            downstream_queries: 0,
            upstream_ecs_off: 0,
            upstream_ecs_on: 0,
            analytic_ecs_off: 0,
            analytic_ecs_on: 0,
        }
    }

    fn ratio(num: u64, den: u64) -> f64 {
        if den == 0 {
            return 0.0;
        }
        num as f64 / den as f64
    }

    /// Measured amplification (upstream per downstream), ECS off.
    pub fn measured_amplification_off(&self) -> f64 {
        Self::ratio(self.upstream_ecs_off, self.downstream_queries)
    }

    /// Measured amplification (upstream per downstream), ECS on.
    pub fn measured_amplification_on(&self) -> f64 {
        Self::ratio(self.upstream_ecs_on, self.downstream_queries)
    }

    /// Analytic amplification estimate, ECS off.
    pub fn analytic_amplification_off(&self) -> f64 {
        Self::ratio(self.analytic_ecs_off, self.downstream_queries)
    }

    /// Analytic amplification estimate, ECS on.
    pub fn analytic_amplification_on(&self) -> f64 {
        Self::ratio(self.analytic_ecs_on, self.downstream_queries)
    }

    /// Measured ECS scaling factor: upstream queries with the roll-out's
    /// policy over the ECS-off baseline (the paper's §6.3 concern).
    pub fn measured_scaling(&self) -> f64 {
        Self::ratio(self.upstream_ecs_on, self.upstream_ecs_off)
    }

    /// Analytic ECS scaling estimate.
    pub fn analytic_scaling(&self) -> f64 {
        Self::ratio(self.analytic_ecs_on, self.analytic_ecs_off)
    }
}

/// One window of the fleet flip replay — **deltas** over the window,
/// not cumulative totals, so each window stands alone on a plot.
#[derive(Debug, Clone, Copy)]
pub struct FleetWindowStats {
    /// Window index (0-based).
    pub window: u32,
    /// Downstream queries the fleet served this window.
    pub queries: u64,
    /// Downstream queries answered from resolver caches this window.
    pub cache_hits: u64,
    /// Upstream (authoritative-facing) queries sent this window.
    pub upstream: u64,
    /// Truncated answers retried over TCP this window (fleet side).
    pub tcp_retries: u64,
    /// Replies the live authoritative truncated this window (TC=1).
    pub truncations: u64,
}

impl FleetWindowStats {
    /// Downstream cache-hit ratio inside the window.
    pub fn hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.queries as f64
    }

    /// Query amplification (upstream per downstream) inside the window.
    pub fn amplification(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.upstream as f64 / self.queries as f64
    }
}

/// Per-window series from the fleet flip replay: the fleet runs a warm
/// steady state, the ECS policy flips mid-run for the eligible public
/// resolvers (the config deploy flushes their caches, as a production
/// restart does), and the windows after the flip show the cache-hit-rate
/// dip and recovery — the figure a rollout operator watches live.
#[derive(Debug, Clone, Default)]
pub struct FleetTimeline {
    /// Window series in time order.
    pub windows: Vec<FleetWindowStats>,
    /// Index of the first window run with the flipped policy (`None`:
    /// no flip — the timeline replay was skipped).
    pub flip_window: Option<u32>,
}

impl FleetTimeline {
    /// An empty timeline (used when the fleet replay is skipped).
    pub fn empty() -> FleetTimeline {
        FleetTimeline::default()
    }

    /// Hit ratio of window `w`, if it exists.
    pub fn hit_ratio_at(&self, w: u32) -> Option<f64> {
        self.windows
            .iter()
            .find(|s| s.window == w)
            .map(|s| s.hit_ratio())
    }

    /// Hit ratio of the last warm window before the flip.
    pub fn pre_flip_hit_ratio(&self) -> f64 {
        self.flip_window
            .and_then(|f| f.checked_sub(1))
            .and_then(|w| self.hit_ratio_at(w))
            .unwrap_or(0.0)
    }

    /// Hit ratio of the flip window itself (the dip).
    pub fn flip_hit_ratio(&self) -> f64 {
        self.flip_window
            .and_then(|w| self.hit_ratio_at(w))
            .unwrap_or(0.0)
    }

    /// Hit ratio of the final window (the recovery).
    pub fn final_hit_ratio(&self) -> f64 {
        self.windows.last().map(|s| s.hit_ratio()).unwrap_or(0.0)
    }

    /// One JSON object per window, one line each — the figure-grade
    /// series `public_resolver_rollout` writes under `results/`.
    /// Hand-rendered: every value is a number or boolean, so the offline
    /// serde stub is not needed and the output stays exact.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.windows {
            out.push_str(&format!(
                concat!(
                    "{{\"window\": {}, \"flip\": {}, \"queries\": {}, ",
                    "\"cache_hits\": {}, \"hit_ratio\": {:.6}, ",
                    "\"upstream\": {}, \"amplification\": {:.6}, ",
                    "\"tcp_retries\": {}, \"truncations\": {}}}\n"
                ),
                s.window,
                self.flip_window == Some(s.window),
                s.queries,
                s.cache_hits,
                s.hit_ratio(),
                s.upstream,
                s.amplification(),
                s.tcp_retries,
                s.truncations,
            ));
        }
        out
    }
}

/// Everything the §4/§5 analyses read.
#[derive(Debug, Clone)]
pub struct RolloutReport {
    /// The roll-out configuration that produced this report.
    pub cfg: RolloutConfig,
    /// Client-side measurements.
    pub rum: RumCollector,
    /// Authoritative-side daily query counts.
    pub counters: QueryCounters,
    /// The NetSession client–LDNS dataset.
    pub netsession: PairDataset,
    /// High-expectation countries (§4.1.1).
    pub high_expectation: BTreeSet<Country>,
    /// Per-(domain, LDNS IP) A-query counts inside the pre window.
    pub pair_pre: HashMap<(u32, Ipv4Addr), u64>,
    /// Per-(domain, LDNS IP) A-query counts inside the post window.
    pub pair_post: HashMap<(u32, Ipv4Addr), u64>,
    /// LDNS IPs that are public resolver sites.
    pub public_ldns_ips: BTreeSet<Ipv4Addr>,
    /// Authoritative A-record TTL per catalog domain, seconds.
    pub domain_ttls: Vec<u32>,
    /// Views that failed (no live server / resolution failure).
    pub failed_views: u64,
    /// NS (per-LDNS) mapping units in the final map.
    pub ns_unit_count: usize,
    /// End-user mapping units in the final map (0 until the roll-out
    /// builds them).
    pub eu_unit_count: usize,
    /// Measured-vs-analytic amplification from the live resolver fleet.
    pub fleet: FleetMeasurement,
    /// Per-window series from the fleet flip replay (dip and recovery).
    pub timeline: FleetTimeline,
}

impl RolloutReport {
    /// Mean of a RUM metric over the pre and post windows for one
    /// expectation group — the headline before/after numbers of §4.3.
    ///
    /// Like the paper, only "qualified clients" are counted: loads that
    /// went through a public resolver the roll-out reached — an
    /// ECS-capable provider (§4.2: "we identified such clients using our
    /// client-LDNS pairing data and extracted RUM data from only those
    /// qualified clients"; the roll-out targeted Google Public DNS and
    /// OpenDNS, both ECS-capable).
    pub fn before_after(&self, metric: Metric, high_expectation: bool) -> (f64, f64) {
        let series = self.rum.daily_series(metric, |r| {
            r.ecs_capable_resolver && r.high_expectation == high_expectation
        });
        let (pre_from, pre_to) = self.cfg.pre_window();
        let (post_from, post_to) = self.cfg.post_window();
        (
            series
                .window_mean(pre_from, pre_to.saturating_sub(1))
                .unwrap_or(f64::NAN),
            series
                .window_mean(post_from, post_to.saturating_sub(1))
                .unwrap_or(f64::NAN),
        )
    }

    /// Mean daily mapping-DNS queries (total, from public resolvers) in
    /// the pre and post windows — Figure 23's step.
    pub fn query_rate_change(&self) -> ((f64, f64), (f64, f64)) {
        let (pre_from, pre_to) = self.cfg.pre_window();
        let (post_from, post_to) = self.cfg.post_window();
        let pre = self
            .counters
            .window_means(pre_from, pre_to.saturating_sub(1));
        let post = self
            .counters
            .window_means(post_from, post_to.saturating_sub(1));
        ((pre.0, pre.1), (post.0, post.1))
    }

    /// Figure 24: buckets (domain, LDNS) pairs by pre-roll-out popularity
    /// (queries per TTL) and reports the factor increase in query rate.
    /// Only pairs whose LDNS is a public resolver are affected by the
    /// roll-out, so only those are bucketed.
    pub fn amplification_buckets(&self) -> Vec<AmplificationBucket> {
        let pre_days = {
            let (f, t) = self.cfg.pre_window();
            (t - f) as f64
        };
        let post_days = {
            let (f, t) = self.cfg.post_window();
            (t - f) as f64
        };
        if pre_days <= 0.0 || post_days <= 0.0 {
            return Vec::new();
        }
        let total_pre: f64 = self
            .pair_pre
            .iter()
            .filter(|((_, ip), _)| self.public_ldns_ips.contains(ip))
            .map(|(_, c)| *c as f64)
            .sum();
        // Buckets of 0.1 queries/TTL; popularity is capped at 1 (an LDNS
        // cannot usefully exceed one query per TTL before the roll-out).
        let mut logsum = [0.0f64; 10];
        let mut counts = [0usize; 10];
        let mut pre_share = [0.0f64; 10];
        for ((domain, ip), pre) in &self.pair_pre {
            if !self.public_ldns_ips.contains(ip) || *pre == 0 {
                continue;
            }
            let ttl = self.domain_ttls[*domain as usize] as f64;
            let ttl_slots = pre_days * 86_400.0 / ttl;
            let popularity = (*pre as f64 / ttl_slots).min(1.0);
            let post = self.pair_post.get(&(*domain, *ip)).copied().unwrap_or(0);
            if post == 0 {
                continue;
            }
            let pre_rate = *pre as f64 / pre_days;
            let post_rate = post as f64 / post_days;
            let factor = post_rate / pre_rate;
            let bucket = ((popularity * 10.0).ceil() as usize).clamp(1, 10) - 1;
            logsum[bucket] += factor.ln();
            counts[bucket] += 1;
            pre_share[bucket] += *pre as f64;
        }
        (0..10)
            .filter(|b| counts[*b] > 0)
            .map(|b| AmplificationBucket {
                popularity: (b as f64 + 1.0) / 10.0,
                factor: (logsum[b] / counts[b] as f64).exp(),
                pairs: counts[b],
                pre_query_share: if total_pre > 0.0 {
                    pre_share[b] / total_pre
                } else {
                    0.0
                },
            })
            .collect()
    }

    /// Exports the report's headline numbers into a telemetry registry —
    /// the same instrument set the serving path uses, so one scrape of a
    /// long run shows the §4 story: the public-resolver query-rate step
    /// and its amplification factor (Figures 23/24) plus the mapping-unit
    /// growth the end-user tables bring (§5.1).
    pub fn record_metrics(&self, registry: &Registry) {
        let ((qt_pre, qp_pre), (qt_post, qp_post)) = self.query_rate_change();
        let rate = |window: &str, source: &str, v: f64| {
            registry
                .gauge(
                    "eum_sim_rollout_queries_per_day",
                    "Mean daily mapping-DNS queries in the matched windows",
                    &[("window", window), ("source", source)],
                )
                .set(v);
        };
        rate("pre", "total", qt_pre);
        rate("pre", "public", qp_pre);
        rate("post", "total", qt_post);
        rate("post", "public", qp_post);
        registry
            .gauge(
                "eum_sim_rollout_query_amplification",
                "Public-resolver query-rate factor, post window over pre",
                &[],
            )
            .set(if qp_pre > 0.0 { qp_post / qp_pre } else { 0.0 });
        for (kind, n) in [("ns", self.ns_unit_count), ("eu", self.eu_unit_count)] {
            registry
                .gauge(
                    "eum_sim_rollout_mapping_units",
                    "Mapping units in the final map, by kind",
                    &[("kind", kind)],
                )
                .set(n as f64);
        }
        for (mode, off, on) in [
            (
                "measured",
                self.fleet.measured_amplification_off(),
                self.fleet.measured_amplification_on(),
            ),
            (
                "analytic",
                self.fleet.analytic_amplification_off(),
                self.fleet.analytic_amplification_on(),
            ),
        ] {
            for (ecs, v) in [("off", off), ("on", on)] {
                registry
                    .gauge(
                        "eum_sim_rollout_fleet_amplification",
                        "Resolver-fleet upstream queries per downstream query",
                        &[("mode", mode), ("ecs", ecs)],
                    )
                    .set(v);
            }
        }
        for (mode, v) in [
            ("measured", self.fleet.measured_scaling()),
            ("analytic", self.fleet.analytic_scaling()),
        ] {
            registry
                .gauge(
                    "eum_sim_rollout_fleet_scaling",
                    "Resolver-fleet ECS query-scaling factor, ECS-on over ECS-off",
                    &[("mode", mode)],
                )
                .set(v);
        }
        registry
            .counter(
                "eum_sim_rollout_rum_samples_total",
                "RUM samples collected across recorded roll-outs",
                &[],
            )
            .add(self.rum.len() as u64);
        registry
            .counter(
                "eum_sim_rollout_failed_views_total",
                "Page views that failed (no live server / resolution failure)",
                &[],
            )
            .add(self.failed_views);
    }

    /// The headline numbers as a machine-readable JSON object (what
    /// `reproduce_all` writes to `results/summary.json`).
    pub fn summary_json(&self) -> String {
        fn pair((a, b): (f64, f64)) -> String {
            format!("[{a}, {b}]")
        }
        let ((qt_pre, qp_pre), (qt_post, qp_post)) = self.query_rate_change();
        let countries = self
            .high_expectation
            .iter()
            .map(|c| format!("\"{}\"", c.code()))
            .collect::<Vec<_>>()
            .join(", ");
        // Hand-rendered (the offline serde stub cannot serialize); every
        // value is a number, string literal, or pair, so this stays exact.
        format!(
            concat!(
                "{{\n",
                "  \"rum_samples\": {},\n",
                "  \"days\": {},\n",
                "  \"failed_views\": {},\n",
                "  \"high_expectation_countries\": [{}],\n",
                "  \"mapping_distance_high_before_after\": {},\n",
                "  \"rtt_high_before_after\": {},\n",
                "  \"ttfb_high_before_after\": {},\n",
                "  \"download_high_before_after\": {},\n",
                "  \"queries_total_before_after\": {},\n",
                "  \"queries_public_before_after\": {},\n",
                "  \"fleet_amplification_measured\": {},\n",
                "  \"fleet_amplification_analytic\": {},\n",
                "  \"fleet_scaling_measured\": {},\n",
                "  \"fleet_scaling_analytic\": {},\n",
                "  \"timeline_hit_ratio_pre_dip_final\": [{:.6}, {:.6}, {:.6}]\n",
                "}}"
            ),
            self.rum.len(),
            self.cfg.days,
            self.failed_views,
            countries,
            pair(self.before_after(Metric::MappingDistance, true)),
            pair(self.before_after(Metric::Rtt, true)),
            pair(self.before_after(Metric::Ttfb, true)),
            pair(self.before_after(Metric::Download, true)),
            pair((qt_pre, qt_post)),
            pair((qp_pre, qp_post)),
            pair((
                self.fleet.measured_amplification_off(),
                self.fleet.measured_amplification_on(),
            )),
            pair((
                self.fleet.analytic_amplification_off(),
                self.fleet.analytic_amplification_on(),
            )),
            self.fleet.measured_scaling(),
            self.fleet.analytic_scaling(),
            self.timeline.pre_flip_hit_ratio(),
            self.timeline.flip_hit_ratio(),
            self.timeline.final_hit_ratio(),
        )
    }

    /// A human-readable digest of the run.
    pub fn summary(&self) -> String {
        let (dist_pre, dist_post) = self.before_after(Metric::MappingDistance, true);
        let (rtt_pre, rtt_post) = self.before_after(Metric::Rtt, true);
        let (ttfb_pre, ttfb_post) = self.before_after(Metric::Ttfb, true);
        let (dl_pre, dl_post) = self.before_after(Metric::Download, true);
        let ((q_pre, qp_pre), (q_post, qp_post)) = self.query_rate_change();
        let mut s = String::new();
        s.push_str(&format!(
            "roll-out report: {} RUM samples over {} days ({} failed views)\n",
            self.rum.len(),
            self.cfg.days,
            self.failed_views
        ));
        s.push_str(&format!(
            "high-expectation countries ({}): {}\n",
            self.high_expectation.len(),
            self.high_expectation
                .iter()
                .map(|c| c.code())
                .collect::<Vec<_>>()
                .join(" ")
        ));
        s.push_str(&format!(
            "mapping distance (high): {dist_pre:.0} -> {dist_post:.0} miles ({:.1}x)\n",
            dist_pre / dist_post.max(1e-9)
        ));
        s.push_str(&format!(
            "RTT (high): {rtt_pre:.0} -> {rtt_post:.0} ms ({:.1}x)\n",
            rtt_pre / rtt_post.max(1e-9)
        ));
        s.push_str(&format!(
            "TTFB (high): {ttfb_pre:.0} -> {ttfb_post:.0} ms ({:.0}% better)\n",
            100.0 * (ttfb_pre - ttfb_post) / ttfb_pre.max(1e-9)
        ));
        s.push_str(&format!(
            "download (high): {dl_pre:.0} -> {dl_post:.0} ms ({:.1}x)\n",
            dl_pre / dl_post.max(1e-9)
        ));
        s.push_str(&format!(
            "mapping DNS queries/day: total {q_pre:.0} -> {q_post:.0}, public {qp_pre:.0} -> {qp_post:.0} ({:.1}x)\n",
            qp_post / qp_pre.max(1e-9)
        ));
        let f = &self.fleet;
        if f.downstream_queries > 0 {
            s.push_str(&format!(
                "LDNS fleet ({} resolvers, {} queries): amplification \
                 measured {:.3} -> {:.3} ({:.2}x), analytic {:.3} -> {:.3} ({:.2}x)\n",
                f.resolvers,
                f.downstream_queries,
                f.measured_amplification_off(),
                f.measured_amplification_on(),
                f.measured_scaling(),
                f.analytic_amplification_off(),
                f.analytic_amplification_on(),
                f.analytic_scaling(),
            ));
        }
        let t = &self.timeline;
        if let Some(flip) = t.flip_window {
            s.push_str(&format!(
                "flip timeline ({} windows, flip at {flip}): hit rate {:.2} -> {:.2} (dip) -> {:.2} (recovered)\n",
                t.windows.len(),
                t.pre_flip_hit_ratio(),
                t.flip_hit_ratio(),
                t.final_hit_ratio(),
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_is_zero_one_and_monotone() {
        let cfg = RolloutConfig::paper();
        assert_eq!(cfg.ramp_fraction(0), 0.0);
        assert_eq!(cfg.ramp_fraction(85), 0.0);
        assert_eq!(cfg.ramp_fraction(104), 1.0);
        assert_eq!(cfg.ramp_fraction(180), 1.0);
        let mut prev = 0.0;
        for d in 80..110 {
            let f = cfg.ramp_fraction(d);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn windows_do_not_overlap_the_ramp() {
        let cfg = RolloutConfig::paper();
        let (pre_from, pre_to) = cfg.pre_window();
        let (post_from, post_to) = cfg.post_window();
        assert!(pre_to <= cfg.start_day);
        assert!(post_from >= cfg.end_day);
        assert!(pre_from < pre_to);
        assert!(post_from < post_to);
        assert!(post_to <= cfg.days);
    }

    #[test]
    fn paper_timeline_matches_calendar() {
        // March 28 is day 86 (0-based: 31 Jan + 28 Feb + 27) and April 15
        // is day 104 (31 + 28 + 31 + 14) in 2014.
        let cfg = RolloutConfig::paper();
        assert_eq!(cfg.start_day, 31 + 28 + 27);
        assert_eq!(cfg.end_day, 31 + 28 + 31 + 14);
        assert_eq!(cfg.days, 181);
    }
}
