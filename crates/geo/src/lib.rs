#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Geographic primitives and IP geolocation.
//!
//! This crate is the reproduction's stand-in for Akamai's *Edgescape*
//! geolocation database (paper §2.2, data source (ii)): given an IP it
//! returns latitude/longitude, country, and autonomous system. It also hosts
//! the shared [`Prefix`] type used for `/x` client IP blocks throughout the
//! workspace, and a small gazetteer of world cities used by the synthetic
//! Internet generator to place clients, resolvers, and CDN deployments.
//!
//! Everything here is purely computational and deterministic; the actual
//! *content* of the database is built by `eum-netmodel` when it synthesizes
//! an Internet.

pub mod city;
pub mod country;
pub mod db;
pub mod point;
pub mod prefix;

pub use city::{City, GAZETTEER};
pub use country::Country;
pub use db::{GeoDb, GeoInfo};
pub use point::{great_circle_miles, GeoPoint, EARTH_RADIUS_MILES};
pub use prefix::Prefix;

/// An autonomous system number.
///
/// Edgescape reports the AS for an IP alongside its geographic location
/// (paper §3.1), so the type lives here with the other lookup results.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Asn(pub u32);

impl std::fmt::Display for Asn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}
