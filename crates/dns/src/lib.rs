#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! DNS for the end-user-mapping reproduction.
//!
//! A from-scratch implementation of the protocol machinery the paper's
//! mapping system rides on:
//!
//! * [`name`] — domain names with RFC 1035 limits;
//! * [`message`] — header/flags/question/record model (A, AAAA, NS,
//!   CNAME, SOA, TXT, OPT);
//! * [`wire`] — the binary codec with name compression;
//! * [`edns`] — EDNS0 (RFC 6891) and the Client Subnet option (RFC 7871),
//!   the enabler of end-user mapping (paper §2.1);
//! * [`cache`] — the ECS-aware answer cache whose per-scope entries cause
//!   the paper's §5.2 query amplification;
//! * [`resolver`] — a caching recursive resolver (the LDNS) with
//!   switchable ECS forwarding;
//! * [`authority`] — the authoritative-server trait the mapping system
//!   implements, plus a static-zone authority.
//!
//! ## Example: a resolution with ECS
//!
//! ```
//! use eum_dns::{EcsOption, Message, OptData, Question};
//! use eum_dns::name::name;
//! use eum_dns::wire::{decode_message, encode_message};
//!
//! // An LDNS forwards a /24 of the client with its query (paper Fig 4).
//! let ecs = EcsOption::query("203.0.113.99".parse().unwrap(), 24);
//! let query = Message::query(1, Question::a(name("foo.net")), Some(OptData::with_ecs(ecs)));
//! let bytes = encode_message(&query);
//! let back = decode_message(&bytes).unwrap();
//! assert_eq!(back.ecs().unwrap().source_prefix, 24);
//! assert_eq!(back.ecs().unwrap().addr.octets(), [203, 0, 113, 0]);
//! ```

pub mod authority;
pub mod cache;
pub mod edns;
pub mod message;
pub mod name;
pub mod resolver;
pub mod wire;

pub use authority::{Authority, QueryContext, StaticAuthority};
pub use cache::{CacheStats, CachedAnswer, EcsCache};
pub use edns::{EcsOption, EdnsOption, EdnsOptions, OptData};
pub use message::{Flags, Message, Question, RData, Rcode, Record, RrType, SoaData};
pub use name::{DnsName, NameError};
pub use resolver::{
    EcsMode, RecursiveResolver, Resolution, ResolverConfig, ResolverStats, Upstream,
};
pub use wire::{
    decode_message, decode_message_into, encode_message, encode_message_into, WireError,
};
