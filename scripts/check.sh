#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, and the test suite.
# Run from anywhere; operates on the repository this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> eum-lint (workspace invariants: lint.toml)"
cargo run -q -p eum-lint

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> socket smoke (multi-process loadgen over real SO_REUSEPORT shards)"
cargo run -q --release --example socket_loadgen -- --smoke

echo "==> scrape smoke (live /metrics + /timeseries.jsonl during socket load)"
cargo run -q --release --example socket_loadgen -- --scrape-smoke | tee /dev/stderr | grep -q "SCRAPE PASS"

echo "==> map-churn smoke (keyed delta invalidation vs generation clear)"
cargo run -q --release --example map_churn -- --smoke | tee /dev/stderr | grep -q "MAP-CHURN PASS"

echo "All checks passed."
