//! Scenario assembly: one call builds the entire world of the paper.
//!
//! [`Scenario::build`] generates the synthetic Internet, the content
//! catalog, the CDN deployment, the mapping system, one caching recursive
//! resolver per LDNS, the content providers' own DNS (which CNAMEs their
//! `www` names into the CDN domain, §2.2), and a root name server that
//! glues the zones together. [`Scenario::run_rollout`] then replays the
//! §4 timeline and returns the [`RolloutReport`].

use crate::client::fetch_page;
use crate::engine::{EventQueue, SimTime};
use crate::netsession::PairDataset;
use crate::network::{AuthNet, QueryCounters};
use crate::rollout::{
    FleetMeasurement, FleetTimeline, FleetWindowStats, RolloutConfig, RolloutReport,
};
use crate::rum::{RumCollector, RumSample};
use crate::workload::{Workload, WorkloadConfig};
use eum_authd::{
    channel_transports, AuthServer, ChannelClient, ServerConfig, SnapshotHandle, TelemetryConfig,
};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::name::name;
use eum_dns::{
    DnsName, EcsMode, EcsOption, Message, OptData, QueryContext, Question, RData, Rcode, Record,
    RecursiveResolver, ResolverConfig, StaticAuthority,
};
use eum_geo::{GeoInfo, Prefix};
use eum_ldns::{EcsPolicy, LdnsConfig, QueryPlan, ResolverFleet, RunConfig};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_netmodel::{Endpoint, Internet, InternetConfig, ResolverId};
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::net::Ipv4Addr;
use std::time::Instant;

/// Everything needed to build a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed.
    pub seed: u64,
    /// Synthetic-Internet parameters.
    pub internet: InternetConfig,
    /// Content-catalog parameters.
    pub catalog: CatalogConfig,
    /// Number of CDN deployment locations.
    pub n_clusters: usize,
    /// Servers per cluster.
    pub servers_per_cluster: usize,
    /// Cache objects per server.
    pub cache_objects: usize,
    /// Capacity headroom: total cluster capacity = headroom × demand.
    pub capacity_headroom: f64,
    /// Mapping-system parameters.
    pub mapping: MappingConfig,
    /// Roll-out timeline.
    pub rollout: RolloutConfig,
}

impl ScenarioConfig {
    /// Minimal scenario for unit tests (runs in under a second).
    pub fn tiny(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            internet: InternetConfig::tiny(seed),
            catalog: CatalogConfig {
                seed,
                n_domains: 6,
                zipf_s: 0.9,
            },
            n_clusters: 10,
            servers_per_cluster: 3,
            cache_objects: 512,
            capacity_headroom: 1.5,
            mapping: MappingConfig {
                max_ping_targets: 60,
                ..MappingConfig::default()
            },
            rollout: RolloutConfig::quick(),
        }
    }

    /// Mid-size scenario for examples and integration tests.
    pub fn small(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            internet: InternetConfig::small(seed),
            catalog: CatalogConfig {
                seed,
                n_domains: 40,
                zipf_s: 0.9,
            },
            n_clusters: 40,
            servers_per_cluster: 4,
            cache_objects: 2048,
            capacity_headroom: 1.5,
            mapping: MappingConfig {
                max_ping_targets: 400,
                ..MappingConfig::default()
            },
            rollout: RolloutConfig {
                workload: WorkloadConfig {
                    views_per_day: 4_000.0,
                    ..WorkloadConfig::default()
                },
                ..RolloutConfig::paper()
            },
        }
    }

    /// The scale used by the reproduction binaries.
    pub fn paper(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            internet: InternetConfig::paper(seed),
            catalog: CatalogConfig::paper(seed),
            n_clusters: 160,
            servers_per_cluster: 6,
            cache_objects: 4096,
            capacity_headroom: 1.5,
            mapping: MappingConfig {
                max_ping_targets: 2000,
                ..MappingConfig::default()
            },
            rollout: RolloutConfig {
                workload: WorkloadConfig {
                    views_per_day: 15_000.0,
                    ..WorkloadConfig::default()
                },
                ..RolloutConfig::paper()
            },
        }
    }
}

/// A fully built world.
pub struct Scenario {
    /// The configuration.
    pub cfg: ScenarioConfig,
    /// The synthetic Internet.
    pub net: Internet,
    /// The hosted-content catalog.
    pub catalog: ContentCatalog,
    /// The CDN platform.
    pub cdn: CdnPlatform,
    /// The mapping system.
    pub mapping: MappingSystem,
    /// One caching recursive resolver per LDNS (indexed by `ResolverId`).
    pub resolvers: Vec<RecursiveResolver>,
    /// Static authorities by server IP (root + provider DNS).
    pub static_auths: HashMap<Ipv4Addr, StaticAuthority>,
    /// Endpoints of all authoritative server IPs.
    pub endpoints: HashMap<Ipv4Addr, Endpoint>,
    /// The root name server's IP.
    pub root_ip: Ipv4Addr,
    /// Public resolver sites eligible for the ECS roll-out (providers
    /// that support ECS), in deterministic flip order.
    pub ecs_eligible: Vec<ResolverId>,
}

impl Scenario {
    /// Builds the world. Deterministic in `cfg.seed`.
    pub fn build(cfg: ScenarioConfig) -> Scenario {
        let mut net = Internet::generate(cfg.internet.clone());
        let catalog = ContentCatalog::generate(&cfg.catalog);

        // CDN deployment. Capacity is provisioned where demand is: each
        // block contributes to its nearest cluster, and a cluster's
        // capacity is `headroom ×` the demand in its catchment (plus a
        // floor so cold-region clusters can still absorb failover). A
        // uniform split would starve hot metros and force the load
        // balancer to scatter their mapping units across the globe.
        let sites = deployment_universe(cfg.seed, cfg.n_clusters);
        let mut cdn = CdnPlatform::deploy(
            &mut net,
            &sites,
            &DeployConfig {
                servers_per_cluster: cfg.servers_per_cluster,
                cache_objects_per_server: cfg.cache_objects,
                cluster_capacity: 0.0, // set per cluster below
            },
        );
        {
            let mut catchment = vec![0.0f64; cdn.cluster_count()];
            for b in &net.blocks {
                let nearest = cdn
                    .clusters
                    .iter()
                    .enumerate()
                    .min_by(|(_, x), (_, y)| {
                        x.loc
                            .distance_miles(&b.loc)
                            .partial_cmp(&y.loc.distance_miles(&b.loc))
                            .expect("finite distances")
                    })
                    .expect("clusters exist")
                    .0;
                catchment[nearest] += b.demand;
            }
            let floor = net.total_demand() * 0.2 / cdn.cluster_count() as f64;
            for (i, c) in cdn.clusters.iter_mut().enumerate() {
                c.capacity = cfg.capacity_headroom * catchment[i] + floor;
            }
        }

        // Mapping system over the CDN.
        let mapping = MappingSystem::build(
            &mut net,
            &cdn,
            &catalog,
            name("cdn.example"),
            cfg.mapping.clone(),
        );

        let mut endpoints: HashMap<Ipv4Addr, Endpoint> = HashMap::new();
        // Mapping NS endpoints: top-level at the first cluster, low-level
        // NS inside each cluster.
        let top_ip = mapping.top_level_ip();
        endpoints.insert(
            top_ip,
            Endpoint::infra(
                top_ip,
                cdn.cluster(eum_cdn::ClusterId(0)).loc,
                cdn.cluster(eum_cdn::ClusterId(0)).country,
                eum_cdn::CDN_ASN,
            ),
        );
        for c in &cdn.clusters {
            let ns_ip = Ipv4Addr::from(c.prefix.addr() | 2);
            endpoints.insert(ns_ip, Endpoint::infra(ns_ip, c.loc, c.country, c.asn));
        }

        // Content providers' DNS: one authority per distinct origin city
        // hosting the CNAMEs of every domain originating there.
        let mut static_auths: HashMap<Ipv4Addr, StaticAuthority> = HashMap::new();
        let mut origin_ns: HashMap<(u64, u64), Ipv4Addr> = HashMap::new();
        let mut root = StaticAuthority::new();
        // Root name server placed at a US east-coast interconnect.
        let root_prefix = net.alloc_infra_block(GeoInfo {
            point: eum_geo::GeoPoint::new(38.9, -77.0),
            country: eum_geo::Country::UnitedStates,
            asn: eum_geo::Asn(42),
        });
        let root_ip = Ipv4Addr::from(root_prefix.addr() | 1);
        endpoints.insert(
            root_ip,
            Endpoint::infra(
                root_ip,
                eum_geo::GeoPoint::new(38.9, -77.0),
                eum_geo::Country::UnitedStates,
                eum_geo::Asn(42),
            ),
        );

        for d in &catalog.domains {
            // Locate (or create) the origin city's provider-DNS server.
            let key = (d.origin_loc.lat().to_bits(), d.origin_loc.lon().to_bits());
            let ns_ip = match origin_ns.get(&key) {
                Some(ip) => *ip,
                None => {
                    let p = net.alloc_infra_block(GeoInfo {
                        point: d.origin_loc,
                        country: d.origin_country,
                        asn: eum_geo::Asn(43),
                    });
                    let ip = Ipv4Addr::from(p.addr() | 53);
                    origin_ns.insert(key, ip);
                    endpoints.insert(
                        ip,
                        Endpoint::infra(ip, d.origin_loc, d.origin_country, eum_geo::Asn(43)),
                    );
                    static_auths.insert(ip, StaticAuthority::new());
                    ip
                }
            };
            let auth = static_auths
                .get_mut(&ns_ip)
                .expect("authority just ensured");
            auth.add(Record::cname(
                d.www_name.clone(),
                86_400,
                d.cdn_name.clone(),
            ));
            // Root delegates the provider zone (siteN.example) to it.
            let zone = d.www_name.parent().expect("www names have parents");
            root.delegate(
                zone.clone(),
                zone.child("ns").expect("valid label"),
                ns_ip,
                86_400,
            );
        }
        // Root delegates the CDN zone to the mapping top-level.
        root.delegate(name("cdn.example"), name("top.cdn.example"), top_ip, 86_400);
        static_auths.insert(root_ip, root);

        // One caching recursive resolver per LDNS, ECS off initially.
        let resolvers: Vec<RecursiveResolver> = net
            .resolvers
            .iter()
            .map(|r| RecursiveResolver::new(r.ip, ResolverConfig::default()))
            .collect();

        // ECS-eligible public sites, in provider/site order.
        let ecs_eligible: Vec<ResolverId> = net
            .providers
            .iter()
            .filter(|p| p.supports_ecs)
            .flat_map(|p| p.sites.iter().copied())
            .collect();

        Scenario {
            cfg,
            net,
            catalog,
            cdn,
            mapping,
            resolvers,
            static_auths,
            endpoints,
            root_ip,
            ecs_eligible,
        }
    }

    /// Collects the NetSession client–LDNS dataset *through the protocol*
    /// (§3.1): every client block probes `whoami.cdn.example` via each of
    /// its LDNSes; the mapping system's name servers answer with the
    /// unicast IP of the querying resolver, which the client reports.
    ///
    /// This is the end-to-end counterpart of [`PairDataset::collect`]
    /// (which reads the generator's ground truth); the two must agree —
    /// asserted by the `whoami_collection` integration test.
    pub fn collect_netsession_via_whoami(&mut self) -> PairDataset {
        let latency = self.net.latency;
        let by_ip: HashMap<Ipv4Addr, eum_netmodel::ResolverId> =
            self.net.resolvers.iter().map(|r| (r.ip, r.id)).collect();
        let mut counters = QueryCounters::new();
        let mut records = Vec::new();
        let mut now_ms = 0u64;
        let whoami = self.mapping.whoami_name();
        for bi in 0..self.net.blocks.len() {
            let block = self.net.blocks[bi].clone();
            for (rid, w) in &block.ldns {
                let weight = block.demand * w;
                if weight <= 0.0 {
                    continue;
                }
                let resolver_info = self.net.resolver(*rid).clone();
                // whoami answers are TTL-0; space probes past the 1s
                // minimum cache lifetime so each probe reaches the
                // authority.
                now_ms += 2_000;
                let mut authnet = AuthNet {
                    mapping: &mut self.mapping,
                    static_auths: &self.static_auths,
                    endpoints: &self.endpoints,
                    latency: &latency,
                    resolver_ep: resolver_info.endpoint(),
                    resolver_is_public: resolver_info.kind.is_public(),
                    root_ip: self.root_ip,
                    counters: &mut counters,
                    day: 0,
                };
                let res = self.resolvers[rid.index()].resolve(
                    &whoami,
                    block.client_ip(),
                    now_ms,
                    &mut authnet,
                );
                let Some(learned_ip) = res.ips.first() else {
                    continue;
                };
                let Some(learned) = by_ip.get(learned_ip) else {
                    continue;
                };
                let ldns_loc = self.net.resolver(*learned).loc;
                records.push(crate::netsession::PairRecord {
                    block: block.id,
                    ldns: *learned,
                    weight,
                    distance_miles: block.loc.distance_miles(&ldns_loc),
                });
            }
        }
        PairDataset { records }
    }

    /// Replays the §4 roll-out timeline and returns the report.
    pub fn run_rollout(mut self) -> RolloutReport {
        let rollout = self.cfg.rollout.clone();
        let netsession = PairDataset::collect(&self.net);
        let high_expectation = netsession.high_expectation_countries(&self.net, 1000.0);
        let latency = self.net.latency;
        // The generated stream carries full client demand (measured views
        // plus unmeasured background lookups); each lookup is RUM-measured
        // with probability 1/(1+multiplier).
        let multiplier = rollout.workload.dns_background_multiplier.max(0.0);
        let measured_prob = 1.0 / (1.0 + multiplier);
        let full_rate = WorkloadConfig {
            views_per_day: rollout.workload.views_per_day * (1.0 + multiplier),
            ..rollout.workload.clone()
        };
        let mut workload = Workload::new(&self.net, &self.catalog, full_rate, self.cfg.seed);
        let mut measure_rng = rand_chacha::ChaCha12Rng::seed_from_u64(self.cfg.seed ^ 0x4D_EA_5E);

        let mut counters = QueryCounters::new();
        let mut rum = RumCollector::new();
        let mut failed_views = 0u64;
        let mut queue: EventQueue<crate::workload::PageView> = EventQueue::new();

        // Snapshot days for the Figure-24 windows.
        let (pre_from, pre_to) = rollout.pre_window();
        let (post_from, post_to) = rollout.post_window();
        let mut snapshots: HashMap<u32, HashMap<(u32, Ipv4Addr), u64>> = HashMap::new();
        let snapshot_days: BTreeSet<u32> =
            [pre_from, pre_to, post_from, post_to].into_iter().collect();

        self.mapping.refresh_liveness(&self.cdn);

        let Scenario {
            ref net,
            ref catalog,
            ref mut cdn,
            ref mut mapping,
            ref mut resolvers,
            ref static_auths,
            ref endpoints,
            root_ip,
            ref ecs_eligible,
            ..
        } = self;

        for day in 0..rollout.days {
            if day % 30 == 0 && day > 0 {
                eprintln!(
                    "[rollout] day {day}/{}: {} RUM samples, {} mapping queries so far",
                    rollout.days,
                    rum.len(),
                    mapping.stats.queries
                );
            }
            if snapshot_days.contains(&day) {
                snapshots.insert(day, mapping.stats.per_domain_ldns.clone());
            }
            // ECS ramp: flip the first `k` eligible public sites on.
            let k = (rollout.ramp_fraction(day) * ecs_eligible.len() as f64).round() as usize;
            for (i, rid) in ecs_eligible.iter().enumerate() {
                let mode = if i < k {
                    EcsMode::On {
                        source_prefix: rollout.ecs_source_prefix,
                    }
                } else {
                    EcsMode::Off
                };
                resolvers[rid.index()].set_ecs(mode);
            }
            // §8 extension: broad ISP/enterprise adoption from a given day.
            if rollout.isp_ecs_day.is_some_and(|d| day >= d) {
                for (i, r) in resolvers.iter_mut().enumerate() {
                    if !ecs_eligible.contains(&eum_netmodel::ResolverId(i as u32)) {
                        r.set_ecs(EcsMode::On {
                            source_prefix: rollout.ecs_source_prefix,
                        });
                    }
                }
            }

            for view in workload.generate_day(net, day) {
                queue.schedule(SimTime::from_days(day).plus_ms(view.offset_ms), view);
            }
            while let Some((t, view)) = queue.pop() {
                counters.add_view(day);
                let block = net.block(view.block);
                let resolver_info = net.resolver(view.ldns);
                let resolver_ep = resolver_info.endpoint();
                let is_public = resolver_info.kind.is_public();
                let is_ecs_capable = match resolver_info.kind {
                    eum_netmodel::ResolverKind::PublicSite { provider, .. } => {
                        net.provider(provider).supports_ecs
                    }
                    _ => false,
                };
                let domain = &catalog.domains[view.domain as usize];

                // DNS resolution through the LDNS.
                let mut authnet = AuthNet {
                    mapping,
                    static_auths,
                    endpoints,
                    latency: &latency,
                    resolver_ep,
                    resolver_is_public: is_public,
                    root_ip,
                    counters: &mut counters,
                    day,
                };
                let resolution = resolvers[view.ldns.index()].resolve(
                    &domain.www_name,
                    block.client_ip(),
                    t.ms(),
                    &mut authnet,
                );
                if resolution.rcode != Rcode::NoError || resolution.ips.is_empty() {
                    failed_views += 1;
                    continue;
                }
                // Unmeasured background load stops at DNS: it keeps the
                // LDNS caches at realistic occupancy but is not a RUM
                // page view.
                if !measure_rng.random_bool(measured_prob) {
                    continue;
                }
                let stub_rtt = latency.rtt_ms(&block.endpoint(), &resolver_ep);
                let dns_ms = stub_rtt + resolution.elapsed_ms;

                // HTTP fetch.
                match fetch_page(cdn, catalog, &latency, block, view.domain, &resolution.ips) {
                    Some(outcome) => rum.push(RumSample {
                        day,
                        country: block.country,
                        high_expectation: high_expectation.contains(&block.country),
                        public_resolver: is_public,
                        ecs_capable_resolver: is_ecs_capable,
                        mapping_distance_miles: outcome.mapping_distance_miles,
                        rtt_ms: outcome.rtt_ms,
                        ttfb_ms: outcome.ttfb_ms,
                        download_ms: outcome.download_ms,
                        dns_ms,
                        domain: view.domain,
                        client_ldns_miles: block.loc.distance_miles(&resolver_info.loc),
                    }),
                    None => failed_views += 1,
                }
            }
        }
        // Final snapshot in case a window ends at `days`.
        snapshots
            .entry(rollout.days)
            .or_insert_with(|| mapping.stats.per_domain_ldns.clone());

        let window_counts = |from: u32, to: u32| -> HashMap<(u32, Ipv4Addr), u64> {
            let start = snapshots.get(&from).cloned().unwrap_or_default();
            let end = snapshots
                .get(&to)
                .cloned()
                .unwrap_or_else(|| mapping.stats.per_domain_ldns.clone());
            end.into_iter()
                .filter_map(|(k, v)| {
                    let before = start.get(&k).copied().unwrap_or(0);
                    let delta = v.saturating_sub(before);
                    (delta > 0).then_some((k, delta))
                })
                .collect()
        };
        let pair_pre = window_counts(pre_from, pre_to);
        let pair_post = window_counts(post_from, post_to);

        let public_ldns_ips: BTreeSet<Ipv4Addr> = self
            .net
            .resolvers
            .iter()
            .filter(|r| r.kind.is_public())
            .map(|r| r.ip)
            .collect();
        let domain_ttls: Vec<u32> = self.catalog.domains.iter().map(|d| d.ttl_s).collect();
        let ns_unit_count = self.mapping.ns_units().len();
        let eu_unit_count = self.mapping.eu_units().map(|u| u.len()).unwrap_or(0);

        // Close the loop on the final map: hand it to a live `eum-authd`
        // and replay a query plan through a real `eum-ldns` fleet, so the
        // report carries *measured* amplification next to the analytic
        // estimate above.
        let (fleet, timeline) = measure_fleet(
            &self.net,
            &self.catalog,
            self.mapping,
            &self.ecs_eligible,
            &rollout,
            self.cfg.seed,
        );

        RolloutReport {
            cfg: rollout,
            rum,
            counters,
            netsession,
            high_expectation,
            pair_pre,
            pair_post,
            public_ldns_ips,
            domain_ttls,
            failed_views,
            ns_unit_count,
            eu_unit_count,
            fleet,
            timeline,
        }
    }
}

/// Queries replayed through the live fleet per run.
const FLEET_QUERIES: usize = 4_000;
/// Worker threads (and channel shards) for the fleet replay.
const FLEET_WORKERS: usize = 4;

/// The ECS scope the mapping system announces for `qname` asked on
/// behalf of `client` at `source_prefix`: the top-level delegation's
/// glue picks the low-level server, whose A answer carries the scope.
fn announced_scope(
    mapping: &MappingSystem,
    top: Ipv4Addr,
    qname: &DnsName,
    client: Ipv4Addr,
    source_prefix: u8,
    resolver_ip: Ipv4Addr,
) -> u8 {
    let ctx = QueryContext {
        resolver_ip,
        now_ms: 0,
    };
    let ecs = || Some(OptData::with_ecs(EcsOption::query(client, source_prefix)));
    let referral = mapping.answer(
        top,
        &Message::query(1, Question::a(qname.clone()), ecs()),
        &ctx,
    );
    let glue = referral
        .additionals
        .iter()
        .find_map(|rec| match rec.rdata {
            RData::A(ip) => Some(ip),
            _ => None,
        })
        .unwrap_or(top);
    let answer = mapping.answer(
        glue,
        &Message::query(2, Question::a(qname.clone()), ecs()),
        &ctx,
    );
    answer
        .ecs()
        .map(|e| e.scope_prefix.min(e.source_prefix))
        .unwrap_or(0)
}

/// Closes the loop the analytic day-loop only estimates: replays one
/// seeded demand-weighted [`QueryPlan`] through a real `eum-ldns`
/// [`ResolverFleet`] against a live `eum-authd` serving the final map —
/// once with ECS off everywhere, once with the post-roll-out policy —
/// and pairs the measured upstream query counts with the analytic
/// cache-key estimate: one delegation fetch per distinct
/// (resolver, qname) plus one answer fetch per distinct answer-cache
/// key under RFC 7871 §7.3.1 (global per (resolver, qname) with ECS
/// off; fragmented by the announced scope block with ECS on).
fn measure_fleet(
    net: &Internet,
    catalog: &ContentCatalog,
    mapping: MappingSystem,
    ecs_eligible: &[ResolverId],
    rollout: &RolloutConfig,
    seed: u64,
) -> (FleetMeasurement, FleetTimeline) {
    let domains: Vec<(DnsName, f64)> = catalog
        .domains
        .iter()
        .map(|d| (d.cdn_name.clone(), d.popularity))
        .collect();
    let plan = QueryPlan::generate(net, &domains, seed ^ 0xF1EE7, FLEET_QUERIES);
    let source_prefix = rollout.ecs_source_prefix;

    // Post-roll-out ECS policy per site: every eligible public site is
    // on once the ramp completes; the §8 extension turns everyone on.
    let all_on = rollout.isp_ecs_day.is_some_and(|d| d < rollout.days);
    let mut sends_ecs = vec![all_on; net.resolvers.len()];
    for rid in ecs_eligible {
        sends_ecs[rid.index()] = true;
    }

    // Analytic estimate: walk the plan counting the cache keys an ideal
    // RFC 7871 resolver cache has to fill, probing the announced scope
    // from the mapping system directly.
    let top = mapping.top_level_ip();
    let mut scope_cache: HashMap<(DnsName, Prefix), u8> = HashMap::new();
    let mut delegations: HashSet<(u32, DnsName)> = HashSet::new();
    let mut keys_off: HashSet<(u32, DnsName)> = HashSet::new();
    let mut keys_on: HashSet<(u32, DnsName, Option<Prefix>)> = HashSet::new();
    for q in &plan.queries {
        let r = q.resolver.0;
        delegations.insert((r, q.qname.clone()));
        keys_off.insert((r, q.qname.clone()));
        if !sends_ecs[q.resolver.index()] {
            keys_on.insert((r, q.qname.clone(), None));
            continue;
        }
        let block = Prefix::of(q.client, source_prefix);
        let resolver_ip = net.resolver(q.resolver).ip;
        let scope = *scope_cache
            .entry((q.qname.clone(), block))
            .or_insert_with(|| {
                announced_scope(
                    &mapping,
                    top,
                    &q.qname,
                    q.client,
                    source_prefix,
                    resolver_ip,
                )
            });
        let key_block = (scope > 0).then(|| Prefix::of(q.client, scope));
        keys_on.insert((r, q.qname.clone(), key_block));
    }
    let analytic_ecs_off = (delegations.len() + keys_off.len()) as u64;
    let analytic_ecs_on = (delegations.len() + keys_on.len()) as u64;

    // Measured: the same plan through live resolvers against a live
    // authoritative. Query interval is zero (no TTL expiry), so the
    // upstream count is purely cache-key driven and directly comparable
    // to the analytic estimate.
    let registry = std::sync::Arc::new(eum_telemetry::Registry::new());
    let (transports, connector) = channel_transports(FLEET_WORKERS);
    let server = AuthServer::spawn(
        transports,
        SnapshotHandle::new(mapping),
        ServerConfig::new(top).with_telemetry(TelemetryConfig::metrics(registry.clone())),
    );
    let epoch = Instant::now();
    let mut measured = [0u64; 2];
    let mut resolvers = 0usize;
    for (i, with_ecs) in [false, true].into_iter().enumerate() {
        let mut fleet = ResolverFleet::new(net, epoch, |r| {
            let policy = if with_ecs && sends_ecs[r.id.index()] {
                EcsPolicy::Always
            } else {
                EcsPolicy::Off
            };
            let mut cfg = LdnsConfig::new(r.ip, policy);
            cfg.source_prefix = source_prefix;
            cfg
        });
        resolvers = fleet.len();
        let clients: Vec<ChannelClient> = (0..FLEET_WORKERS)
            .map(|_| ChannelClient::new(connector.clone()))
            .collect();
        let report = fleet.run(clients, &plan, &RunConfig::new(top));
        measured[i] = report.upstream_queries;
    }

    let timeline = run_flip_timeline(
        net,
        &domains,
        &sends_ecs,
        source_prefix,
        top,
        &registry,
        &connector,
        seed,
    );
    drop(connector);
    server.stop_join();

    (
        FleetMeasurement {
            resolvers,
            downstream_queries: plan.len() as u64,
            upstream_ecs_off: measured[0],
            upstream_ecs_on: measured[1],
            analytic_ecs_off,
            analytic_ecs_on,
        },
        timeline,
    )
}

/// Windows in the flip timeline replay.
const TIMELINE_WINDOWS: u32 = 12;
/// Downstream queries per timeline window, floor. The actual per-window
/// count scales with the catalog ([`timeline_window_queries`]) so the
/// fleet reaches its warm plateau before the flip at every scale.
const TIMELINE_WINDOW_QUERIES: usize = 400;
/// First window run with the flipped ECS policy.
const TIMELINE_FLIP_WINDOW: u32 = 4;

/// Per-window query count for a catalog of `n_domains` names: larger
/// catalogs need proportionally more queries per window to warm the
/// fleet's caches within the pre-flip windows (tiny's 6-domain catalog
/// stays at the 400 floor the tests pin).
fn timeline_window_queries(n_domains: usize) -> usize {
    TIMELINE_WINDOW_QUERIES.max(40 * n_domains)
}

/// The per-window flip replay behind [`FleetTimeline`]: the fleet warms
/// an ECS-off steady state over the first windows, then — modeling the
/// roll-out's config deploy, which restarts the resolver and loses its
/// cache — every eligible public resolver flips to `EcsPolicy::Always`
/// **and flushes its cache** at [`TIMELINE_FLIP_WINDOW`]. The window
/// series shows warm-up, the sharp cache-hit dip at the flip, and the
/// recovery toward the (slightly lower, fragmentation-taxed) ECS-on
/// plateau. Virtual time stands still inside each window
/// (`query_interval` zero), so the curve is pure cache behavior, not TTL
/// churn.
#[allow(clippy::too_many_arguments)]
fn run_flip_timeline(
    net: &Internet,
    domains: &[(DnsName, f64)],
    sends_ecs: &[bool],
    source_prefix: u8,
    top: Ipv4Addr,
    registry: &eum_telemetry::Registry,
    connector: &eum_authd::ChannelConnector,
    seed: u64,
) -> FleetTimeline {
    let per_window = timeline_window_queries(domains.len());
    let plan = QueryPlan::generate(
        net,
        domains,
        seed ^ 0xD1B5,
        TIMELINE_WINDOWS as usize * per_window,
    );
    // Live authd truncation counter, summed over shards (the registry is
    // idempotent: these are the same handles the server increments).
    let truncated_total = || -> u64 {
        (0..FLEET_WORKERS)
            .map(|i| {
                let s = i.to_string();
                registry
                    .counter("eum_authd_truncated_total", "", &[("shard", &s)])
                    .get()
            })
            .sum()
    };

    let mut fleet = ResolverFleet::new(net, Instant::now(), |r| {
        let mut cfg = LdnsConfig::new(r.ip, EcsPolicy::Off);
        cfg.source_prefix = source_prefix;
        cfg
    });
    let mut windows = Vec::with_capacity(TIMELINE_WINDOWS as usize);
    let mut prev = fleet.report();
    let mut prev_trunc = truncated_total();
    for w in 0..TIMELINE_WINDOWS {
        if w == TIMELINE_FLIP_WINDOW {
            let now = Instant::now();
            for (idx, on) in sends_ecs.iter().enumerate() {
                if !on {
                    continue;
                }
                let ldns = fleet.resolver_mut(ResolverId(idx as u32));
                ldns.set_policy(EcsPolicy::Always);
                ldns.flush_cache(now);
            }
        }
        let from = w as usize * per_window;
        let chunk = QueryPlan {
            queries: plan.queries[from..from + per_window].to_vec(),
        };
        let clients: Vec<ChannelClient> = (0..FLEET_WORKERS)
            .map(|_| ChannelClient::new(connector.clone()))
            .collect();
        let cur = fleet.run(clients, &chunk, &RunConfig::new(top));
        let trunc = truncated_total();
        windows.push(FleetWindowStats {
            window: w,
            queries: cur.downstream_queries - prev.downstream_queries,
            cache_hits: cur.downstream_cache_hits - prev.downstream_cache_hits,
            upstream: cur.upstream_queries - prev.upstream_queries,
            tcp_retries: cur.upstream_tcp_retries - prev.upstream_tcp_retries,
            truncations: trunc - prev_trunc,
        });
        prev = cur;
        prev_trunc = trunc;
    }
    FleetTimeline {
        windows,
        flip_window: Some(TIMELINE_FLIP_WINDOW),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rum::Metric;

    /// One shared roll-out run: the tests below all read from the same
    /// report (the run is deterministic, so sharing loses nothing).
    fn report() -> &'static RolloutReport {
        static REPORT: std::sync::OnceLock<RolloutReport> = std::sync::OnceLock::new();
        REPORT.get_or_init(|| Scenario::build(ScenarioConfig::tiny(0x5EED)).run_rollout())
    }

    #[test]
    fn tiny_rollout_completes_with_samples() {
        let r = report();
        assert!(r.rum.len() > 10_000, "only {} samples", r.rum.len());
        assert_eq!(r.failed_views, 0, "views failed in a healthy world");
        assert!(!r.high_expectation.is_empty());
    }

    #[test]
    fn public_query_rate_rises_after_rollout() {
        let r = report();
        let ((pre_total, pre_public), (post_total, post_public)) = r.query_rate_change();
        assert!(pre_public > 0.0);
        // The tiny universe has too few client blocks per public site for
        // the paper's full 8× step, but the rise must be clear, and the
        // relative rise of the public share must dominate the total's.
        assert!(
            post_public > 1.3 * pre_public,
            "public queries/day {pre_public:.0} -> {post_public:.0}"
        );
        assert!(
            post_public / pre_public > post_total / pre_total,
            "public rise must outpace total rise"
        );
    }

    #[test]
    fn mapping_distance_improves_for_high_expectation_group() {
        let r = report();
        let (pre, post) = r.before_after(Metric::MappingDistance, true);
        assert!(pre.is_finite() && post.is_finite());
        assert!(post < pre, "mapping distance {pre:.0} -> {post:.0}");
    }

    #[test]
    fn record_metrics_exports_amplification_and_unit_counts() {
        let r = report();
        assert!(r.ns_unit_count > 0, "every map has NS units");
        assert!(
            r.eu_unit_count > 0,
            "the roll-out ends with end-user units built"
        );
        let registry = eum_telemetry::Registry::new();
        r.record_metrics(&registry);
        let amp = registry
            .gauge("eum_sim_rollout_query_amplification", "", &[])
            .get();
        assert!(amp > 1.3, "roll-out must amplify public queries: {amp}");
        let units = |kind: &str| {
            registry
                .gauge("eum_sim_rollout_mapping_units", "", &[("kind", kind)])
                .get()
        };
        assert_eq!(units("ns"), r.ns_unit_count as f64);
        assert_eq!(units("eu"), r.eu_unit_count as f64);
        let text = registry.render_text();
        assert!(text.contains("eum_sim_rollout_queries_per_day"));
        assert!(text.contains("eum_sim_rollout_rum_samples_total"));
    }

    #[test]
    fn amplification_buckets_exist_and_popular_pairs_amplify_more() {
        let r = report();
        let buckets = r.amplification_buckets();
        assert!(!buckets.is_empty());
        let first = buckets.first().unwrap();
        let last = buckets.last().unwrap();
        assert!(
            last.factor >= first.factor,
            "popular pairs should amplify more: {first:?} vs {last:?}"
        );
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let r = report();
        let s = r.summary();
        assert!(s.contains("RUM samples"));
        assert!(s.contains("mapping distance"));
        assert!(s.contains("queries/day"));
        assert!(s.contains("LDNS fleet"));
    }

    #[test]
    fn fleet_measurement_matches_analytic_estimate() {
        let f = &report().fleet;
        assert!(f.resolvers >= 8, "acceptance: at least 8 resolver sites");
        assert_eq!(f.downstream_queries, FLEET_QUERIES as u64);
        assert!(
            f.measured_scaling() > 1.5,
            "ECS must raise measured amplification over the ECS-off \
             baseline: scaling {:.2}",
            f.measured_scaling()
        );
        for (which, m, a) in [
            (
                "ecs-off",
                f.measured_amplification_off(),
                f.analytic_amplification_off(),
            ),
            (
                "ecs-on",
                f.measured_amplification_on(),
                f.analytic_amplification_on(),
            ),
        ] {
            assert!(a > 0.0, "{which}: analytic estimate must be positive");
            assert!(
                (m - a).abs() <= 0.25 * a,
                "{which}: measured amplification {m:.3} diverges more than \
                 25% from the analytic estimate {a:.3}"
            );
        }
    }

    #[test]
    fn flip_timeline_shows_dip_and_recovery() {
        let t = &report().timeline;
        assert_eq!(t.windows.len(), TIMELINE_WINDOWS as usize);
        assert_eq!(t.flip_window, Some(TIMELINE_FLIP_WINDOW));
        for w in &t.windows {
            assert_eq!(
                w.queries, TIMELINE_WINDOW_QUERIES as u64,
                "window {} deltas must reconcile to the queries driven",
                w.window
            );
        }
        let (pre, dip, last) = (
            t.pre_flip_hit_ratio(),
            t.flip_hit_ratio(),
            t.final_hit_ratio(),
        );
        // The curve the paper's §6.3 deploy plots: a warm fleet, a
        // visible hit-rate dip when the ECS flip flushes the flipped
        // resolvers, and recovery as scoped answers re-fill the caches.
        assert!(pre > 0.9, "fleet must be warm before the flip: {pre:.3}");
        assert!(
            dip < pre - 0.05,
            "the flip must dent the hit rate: pre {pre:.3} dip {dip:.3}"
        );
        assert!(
            last > dip + 0.05,
            "the fleet must recover after the flip: dip {dip:.3} final {last:.3}"
        );
        // The rendered JSONL is one object per window and carries the dip.
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), TIMELINE_WINDOWS as usize);
        assert!(jsonl.contains("\"flip\": true"));
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = Scenario::build(ScenarioConfig::tiny(7));
        let b = Scenario::build(ScenarioConfig::tiny(7));
        assert_eq!(a.net.blocks.len(), b.net.blocks.len());
        assert_eq!(a.root_ip, b.root_ip);
        assert_eq!(a.ecs_eligible, b.ecs_eligible);
        assert_eq!(a.mapping.top_level_ip(), b.mapping.top_level_ip());
    }
}
