//! End-to-end correctness of keyed delta publication: after a churned
//! map is published with [`SnapshotHandle::publish_delta`], a shard that
//! kept its answer cache across the swap must serve byte-equivalent
//! answers to a cache-disabled shard computing everything fresh from the
//! new snapshot. The cache is allowed to keep unaffected entries — that
//! is the whole point — but any stale answer that should have been
//! invalidated and wasn't shows up here as a divergence.

use eum_authd::{CacheConfig, QueryStages, ReplyCap, ServeOutcome, ShardState, SnapshotHandle};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, Message, Question};
use eum_mapping::{MappingConfig, MappingPolicy, MappingSystem, RescoreHints};
use eum_netmodel::{Internet, InternetConfig};
use std::net::Ipv4Addr;

const SEED: u64 = 0xDE17A;

fn world() -> (Internet, CdnPlatform, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(&mut net, &sites, &DeployConfig::default());
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            policy: MappingPolicy::end_user_default(),
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, cdn, map)
}

fn ecs_query(id: u16, client: Ipv4Addr) -> Vec<u8> {
    encode_message(&Message::query(
        id,
        Question::a("e0.cdn.example".parse().unwrap()),
        Some(OptData::with_ecs(EcsOption::query(client, 24))),
    ))
}

fn plain_query(id: u16) -> Vec<u8> {
    encode_message(&Message::query(
        id,
        Question::a("e0.cdn.example".parse().unwrap()),
        None,
    ))
}

/// Serves `payload` on `state` and returns the reply's answer IPs.
fn answers(
    state: &mut ShardState,
    map: &MappingSystem,
    server: Ipv4Addr,
    resolver: Ipv4Addr,
    payload: &[u8],
) -> Vec<Ipv4Addr> {
    let mut stages = QueryStages::new(false);
    let out = state.serve(map, server, resolver, payload, ReplyCap::udp(), &mut stages);
    assert!(
        matches!(out, ServeOutcome::Replied { .. }),
        "serve failed: {out:?}"
    );
    decode_message(state.reply())
        .expect("reply decodes")
        .answer_ips()
}

#[test]
fn cached_shard_matches_fresh_shard_across_delta_publications() {
    let (net, mut cdn, mut map) = world();
    let low = map.ns_ips()[1];
    let resolver = net.resolvers[0].ip;

    let snapshots = SnapshotHandle::new(map.clone_for_publish());
    let mut reader = snapshots.reader();
    let mut cached = ShardState::new(Some(CacheConfig::default()));
    // The oracle: no cache, always computes from the current snapshot.
    let mut fresh = ShardState::new(None);

    let payloads: Vec<Vec<u8>> = net
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| ecs_query(i as u16, b.client_ip()))
        .chain(std::iter::once(plain_query(9999)))
        .collect();

    // Warm every shape into the cache on generation 1.
    {
        let snap = reader.snapshot();
        cached.observe(snap);
        for p in &payloads {
            answers(&mut cached, &snap.map, low, resolver, p);
        }
        let stats = cached.cache().expect("cache enabled").stats();
        assert!(stats.insertions > 0, "warm pass must populate the cache");
    }

    // Churn round 1: kill an assigned non-escape cluster, publish the
    // incremental delta. Round 2: revive it plus a capacity edit.
    let escape = cdn.clusters[0].id;
    let victim = net
        .blocks
        .iter()
        .filter_map(|b| map.assigned_cluster_for_block(b.prefix))
        .find(|c| *c != escape)
        .expect("some block maps beyond the escape cluster");

    for round in 1..=2u64 {
        match round {
            1 => cdn.set_cluster_alive(victim, false),
            _ => {
                cdn.set_cluster_alive(victim, true);
                cdn.clusters[2].capacity = net.total_demand() * 0.4;
            }
        }
        let delta = map.rebuild_incremental(&net, &cdn, &RescoreHints::default());
        assert!(!delta.is_full(), "round {round}: churn must stay keyed");
        let generation = snapshots.publish_delta(map.clone_for_publish(), delta);
        assert_eq!(generation, round + 1, "generations number up from 1");

        let snap = reader.snapshot();
        assert_eq!(snap.generation, generation);
        cached.observe(snap);
        fresh.observe(snap);
        let mut hits = 0u64;
        for p in &payloads {
            let got = answers(&mut cached, &snap.map, low, resolver, p);
            let want = answers(&mut fresh, &snap.map, low, resolver, p);
            assert_eq!(
                got, want,
                "round {round}: cached shard diverged from fresh compute"
            );
            if !got.is_empty() {
                hits += 1;
            }
        }
        assert!(hits > 0, "round {round}: no answers at all");
    }

    // The keyed path did the invalidation work; the cache never cleared.
    let stats = cached.cache().expect("cache enabled").stats();
    assert!(
        stats.keyed_invalidations > 0,
        "delta publications must evict affected entries one by one"
    );
    assert_eq!(
        stats.generation_clears, 0,
        "keyed publications must never clear the cache wholesale"
    );
    // And unaffected entries really survived both swaps: the post-churn
    // passes hit the cache for at least some shapes.
    assert!(
        stats.hits > 0,
        "surviving entries should have served post-churn hits"
    );
}
