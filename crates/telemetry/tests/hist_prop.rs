//! Property tests pinning the two guarantees the histogram docs promise:
//!
//! * any quantile is within one bucket (≤ 6.25% relative error) of the
//!   exact sorted-sample quantile at the same rank;
//! * merging two snapshots is exactly equivalent to having recorded both
//!   sample streams into one histogram.

use eum_telemetry::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

proptest! {
    /// The histogram quantile and the exact sample quantile share a
    /// bucket, so they differ by at most one bucket's width: 1 for the
    /// exact low buckets, `exact/16` once buckets turn logarithmic.
    #[test]
    fn quantile_within_one_bucket_of_exact(
        values in proptest::collection::vec(0u64..1_000_000_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        let exact = sorted[rank];
        let approx = h.snapshot().quantile(q);
        let (lo, hi) = HistogramSnapshot::bucket_of(exact);
        prop_assert!(
            (approx - exact as f64).abs() <= hi - lo,
            "quantile({q}) = {approx} vs exact {exact}, bucket [{lo}, {hi})"
        );
        prop_assert!(
            (approx - exact as f64).abs() <= (exact as f64 / 16.0).max(1.0),
            "relative error above one bucket: {approx} vs {exact}"
        );
    }

    /// merge(a, b) is indistinguishable from one histogram that recorded
    /// both streams — counts, sums, max, every bucket, every quantile.
    #[test]
    fn merge_equals_recording_both_streams(
        a in proptest::collection::vec(0u64..u64::MAX, 0..150),
        b in proptest::collection::vec(0u64..u64::MAX, 0..150),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::striped(3);
        let hboth = Histogram::new();
        for &v in &a {
            ha.record(v);
            hboth.record(v);
        }
        for (i, &v) in b.iter().enumerate() {
            hb.record_at(i % 3, v);
            hboth.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(&merged, &hboth.snapshot());
        // Merging in the other order gives the same result.
        let mut flipped = hb.snapshot();
        flipped.merge(&ha.snapshot());
        prop_assert_eq!(&flipped, &merged);
    }
}
