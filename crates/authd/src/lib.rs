//! eum-authd: a concurrent authoritative DNS serving subsystem.
//!
//! This crate puts the repo's mapping system behind a real serving loop,
//! the shape §3 of the paper describes for Akamai's authoritative
//! infrastructure: sharded worker threads answering RFC 1035 wire-format
//! queries, a read-mostly snapshot layer so the control plane can publish
//! new map generations without stalling answers, an ECS-scope-aware
//! answer cache honoring RFC 7871 §7.3.1 reuse rules, and a closed-loop
//! load generator that replays the netmodel's resolver/client population.
//!
//! Layers, bottom up:
//!
//! - [`transport`] — pluggable datagram endpoints: an in-process channel
//!   pair for deterministic tests/benches and a loopback UDP socket per
//!   shard for end-to-end runs.
//! - [`snapshot`] — atomically swappable `Arc<MappingSystem>` with
//!   generation numbers.
//! - [`cache`] — bounded per-shard answer cache keyed by
//!   `(qname, qtype, ECS scope block)` with `/y ≤ /x` narrowing.
//! - [`server`] — the sharded worker-pool loop tying the above together.
//! - [`loadgen`] — multi-threaded closed-loop clients with latency
//!   percentiles and verification of every response.
//! - [`telemetry`] — observability wiring: per-shard counters and stage
//!   histograms in a shared `eum_telemetry::Registry`, plus sampled
//!   per-query traces, with zero locks added to the serve path.

#![forbid(unsafe_code)]

/// Atomics import surface for this crate's audited lock-free files
/// (`epoch.rs`): the eum-mcheck virtual-atomics facade — a verbatim
/// `std::sync` re-export in production builds, the modeled checker
/// primitives under `--cfg eum_mcheck`. Model tests re-bind the same
/// source file against `eum_mcheck::modeled` by `#[path]`-including it
/// next to a local `msync` alias (see `tests/snapshot_stress.rs`).
pub(crate) mod msync {
    pub use eum_mcheck::sync::atomic::{AtomicU64, Ordering};
    pub use eum_mcheck::sync::Mutex;
}

pub mod admission;
pub mod cache;
pub mod epoch;
pub mod loadgen;
pub mod server;
pub mod snapshot;
pub mod telemetry;
pub mod transport;
mod truncate;

pub use admission::{AdmissionConfig, TokenBucket};
pub use cache::{AnswerCache, AnswerCacheStats, CacheConfig, CachedAnswer};
pub use epoch::{EpochCell, EpochReader};
pub use loadgen::{LoadGenConfig, LoadReport};
pub use server::{
    AuthServer, QueryStages, ReplyCap, ScratchBuffers, ServeOutcome, ServerConfig, ShardCounters,
    ShardReport, ShardState,
};
pub use snapshot::{Snapshot, SnapshotHandle, SnapshotReader};
pub use telemetry::TelemetryConfig;
pub use transport::{
    channel_transports, BatchDatagram, BatchServerTransport, ChannelClient, ChannelConnector,
    ChannelTransport, ClientTransport, Datagram, FaultConfig, FaultInjector, ServerTransport,
    UdpClient, UdpTransport, MAX_DATAGRAM,
};
