//! Workspace call graph and the transitive serve-path closure.
//!
//! The purity rules used to stop at the fns literally pinned in
//! `lint.toml [[hot]]` — a pinned `serve` calling an un-pinned helper
//! that allocates passed the gate. This pass closes that hole: it builds
//! a workspace-wide fn → callee graph from the scanner's tokens, walks
//! the closure of every pinned fn, and applies the serve-path purity
//! rules to each fn the closure reaches, with the call chain in the
//! diagnostic so the reader sees *why* an un-pinned fn is being held to
//! the hot-path rules.
//!
//! Resolution is name-based (the scanner is token-shaped, not a type
//! checker), with three precedence tiers: a callee name binds to fns in
//! the *same file* first, then the *same crate*, then anywhere in the
//! workspace. Names that resolve nowhere are external (std, vendored
//! stubs) and are counted, not flagged. `[graph] ignore_names` prunes
//! common method names (`get`, `len`, `insert`, ...) whose bare-name
//! resolution would bind std calls to unrelated workspace fns.
//!
//! The closure stops at **boundaries**: fns carrying `#[cold]` (the
//! sanctioned cold-path marker — publication, refresh, shutdown) and
//! explicit `[graph] boundary = ["file.rs::fn"]` entries. Boundary cuts
//! are counted in the coverage summary so an audit can see exactly where
//! enforcement stops.

use crate::config::Config;
use crate::rules::{self, Diagnostic};
use crate::scan::{FileScan, Tok};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Callee names never treated as calls: keywords and the std enum
/// constructors that read like calls (`Some(x)`, `Ok(v)`).
const NEVER_CALLS: &[&str] = &[
    "fn", "if", "else", "while", "for", "loop", "match", "return", "let", "in", "as", "move",
    "unsafe", "impl", "where", "pub", "use", "mod", "const", "static", "type", "struct", "enum",
    "trait", "ref", "mut", "dyn", "await", "break", "continue", "crate", "self", "Self", "super",
    "Some", "None", "Ok", "Err", "Fn", "FnMut", "FnOnce", "Drop", "Default", "Box", "Vec",
    "String", "Arc", "Rc",
];

/// Coverage numbers for the closure, surfaced in the CLI summary and the
/// JSON report.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// Fns directly pinned by [[hot]] entries (purity-checked by the
    /// per-file pass).
    pub pinned_fns: usize,
    /// Additional fns the closure reached and purity-checked.
    pub reachable_fns: usize,
    /// Closure edges cut at a `#[cold]` fn or an explicit boundary entry.
    pub boundary_cuts: usize,
    /// Distinct callee names that resolved to no workspace fn (std,
    /// vendored stubs, tuple constructors).
    pub external_names: usize,
    /// Reachable fns left unchecked. Always 0 by construction — every
    /// resolved, non-boundary fn is purity-checked — but pinned in the
    /// report so the acceptance gate can assert it.
    pub uncovered_fns: usize,
}

/// A fn node: (index into the scans slice, index into that file's fns).
type Node = (usize, usize);

/// Builds the workspace call graph, walks the closure of every pinned
/// fn, purity-checks each reached fn, and validates boundary entries.
pub fn check_graph(cfg: &Config, scans: &[FileScan], diags: &mut Vec<Diagnostic>) -> Coverage {
    let ignore: HashSet<&str> = cfg.graph_ignore.iter().map(String::as_str).collect();

    // Name → candidate fns, workspace-wide and per file (non-test only).
    let mut by_name: HashMap<&str, Vec<Node>> = HashMap::new();
    for (si, scan) in scans.iter().enumerate() {
        for (fi, f) in scan.fns.iter().enumerate() {
            if !f.in_test {
                by_name.entry(f.name.as_str()).or_default().push((si, fi));
            }
        }
    }
    let crate_of: Vec<String> = scans.iter().map(|s| rules::crate_key(&s.path)).collect();

    // Per-fn callee-name lists, in source order.
    let calls = extract_calls(scans, &ignore);

    // Boundary set: explicit entries (validated — a stale entry is a
    // config error) plus every `#[cold]` fn.
    let mut boundary: HashSet<Node> = HashSet::new();
    for entry in &cfg.boundary {
        let Some((file, fname)) = entry.split_once("::") else {
            continue; // shape was validated at parse time
        };
        let resolved = scans.iter().enumerate().find_map(|(si, s)| {
            if s.path != file {
                return None;
            }
            s.fns
                .iter()
                .position(|f| !f.in_test && f.name == fname)
                .map(|fi| (si, fi))
        });
        match resolved {
            Some(node) => {
                boundary.insert(node);
            }
            None => diags.push(config_diag(format!(
                "[graph] boundary entry `{entry}` matches no non-test fn in the scan — stale entry"
            ))),
        }
    }
    for (si, scan) in scans.iter().enumerate() {
        for (fi, f) in scan.fns.iter().enumerate() {
            if !f.in_test && has_cold_attr(scan, f.sig_line) {
                boundary.insert((si, fi));
            }
        }
    }

    // Seed: every [[hot]]-pinned fn. Pin errors are check_file's job; a
    // throwaway diag vec keeps them from duplicating here.
    let mut pinned: HashSet<Node> = HashSet::new();
    for (si, scan) in scans.iter().enumerate() {
        let mut scratch = Vec::new();
        for fi in rules::resolve_pins(cfg, scan, &mut scratch) {
            pinned.insert((si, fi));
        }
    }

    // BFS over the closure. `chain` renders the provenance shown in
    // diagnostics: `reachable from pinned `serve` → `helper``.
    let mut reached: HashMap<Node, String> = HashMap::new();
    let mut external: BTreeSet<String> = BTreeSet::new();
    let mut boundary_cuts = 0usize;
    let mut queue: VecDeque<(Node, String)> = pinned
        .iter()
        .map(|&n @ (si, fi)| {
            let name = &scans[si].fns[fi].name;
            (n, format!("reachable from pinned `{name}`"))
        })
        .collect();
    let mut visited: HashSet<Node> = pinned.clone();
    while let Some(((si, fi), chain)) = queue.pop_front() {
        let Some(callees) = calls.get(&(si, fi)) else {
            continue;
        };
        for name in callees {
            let Some(targets) = resolve(name, si, &crate_of, &by_name) else {
                external.insert(name.clone());
                continue;
            };
            for t in targets {
                if boundary.contains(&t) {
                    boundary_cuts += 1;
                    continue;
                }
                if !visited.insert(t) {
                    continue;
                }
                let next_chain = format!("{chain} → `{name}`");
                reached.insert(t, next_chain.clone());
                queue.push_back((t, next_chain));
            }
        }
    }

    // Purity-check every reached (non-pinned) fn, grouped per file.
    let mut per_file: HashMap<usize, HashMap<usize, String>> = HashMap::new();
    for (&(si, fi), chain) in &reached {
        per_file.entry(si).or_default().insert(fi, chain.clone());
    }
    for (si, targets) in &per_file {
        rules::check_reachable(&scans[*si], targets, diags);
    }

    Coverage {
        pinned_fns: pinned.len(),
        reachable_fns: reached.len(),
        boundary_cuts,
        external_names: external.len(),
        uncovered_fns: 0,
    }
}

/// Resolves a callee name: same file, then same crate, then anywhere in
/// the workspace. Multiple matches at the winning tier all count — a
/// conservative over-approximation is the right failure mode for a gate.
fn resolve(
    name: &str,
    from_file: usize,
    crate_of: &[String],
    by_name: &HashMap<&str, Vec<Node>>,
) -> Option<Vec<Node>> {
    let all = by_name.get(name)?;
    let same_file: Vec<Node> = all
        .iter()
        .copied()
        .filter(|&(si, _)| si == from_file)
        .collect();
    if !same_file.is_empty() {
        return Some(same_file);
    }
    let same_crate: Vec<Node> = all
        .iter()
        .copied()
        .filter(|&(si, _)| crate_of[si] == crate_of[from_file])
        .collect();
    if !same_crate.is_empty() {
        return Some(same_crate);
    }
    Some(all.clone())
}

/// Extracts, for every non-test fn, the callee names appearing in its
/// body: an identifier directly followed by `(` that is not a macro
/// (`name!`), a keyword, an enum constructor, or an ignored name.
fn extract_calls(scans: &[FileScan], ignore: &HashSet<&str>) -> HashMap<Node, Vec<String>> {
    let never: HashSet<&str> = NEVER_CALLS.iter().copied().collect();
    let mut calls: HashMap<Node, HashSet<String>> = HashMap::new();
    let mut ordered: HashMap<Node, Vec<String>> = HashMap::new();
    for (si, scan) in scans.iter().enumerate() {
        for l in 1..=scan.code.len() {
            if scan.is_test_line(l) {
                continue;
            }
            let Some(fi) = scan.fn_index_at(l) else {
                continue;
            };
            if scan.fns[fi].in_test {
                continue;
            }
            let code = &scan.code[l - 1];
            if code.trim_start().starts_with('#') {
                continue; // attribute line: `#[derive(Debug)]` is not a call
            }
            let toks: Vec<(usize, Tok)> = crate::scan::tokens(code).collect();
            let mut prev_was_fn_kw = false;
            for w in 0..toks.len() {
                let Tok::Ident(name) = toks[w].1 else {
                    if let Tok::Punct(_) = toks[w].1 {
                        prev_was_fn_kw = false;
                    }
                    continue;
                };
                if name == "fn" {
                    prev_was_fn_kw = true;
                    continue;
                }
                let is_decl = prev_was_fn_kw;
                prev_was_fn_kw = false;
                if is_decl {
                    continue; // the name in `fn name(` is a definition
                }
                let followed_by_paren = matches!(toks.get(w + 1), Some((_, Tok::Punct('('))));
                let is_macro = matches!(toks.get(w + 1), Some((_, Tok::Punct('!'))));
                if !followed_by_paren
                    || is_macro
                    || never.contains(name)
                    || ignore.contains(name)
                    || name.starts_with(|c: char| c.is_ascii_digit())
                {
                    continue;
                }
                let node = (si, fi);
                if calls.entry(node).or_default().insert(name.to_string()) {
                    ordered.entry(node).or_default().push(name.to_string());
                }
            }
        }
    }
    ordered
}

/// True when the fn whose signature starts at 1-based `sig_line` carries
/// a `#[cold]` attribute on one of the lines directly above it (comment
/// lines between attributes and the signature are skipped).
fn has_cold_attr(scan: &FileScan, sig_line: usize) -> bool {
    let mut l = sig_line.saturating_sub(1);
    while l >= 1 {
        let code = scan.code[l - 1].trim();
        if code.is_empty() {
            // Comment-only line between attrs and the fn: keep scanning.
            // A fully blank line ends the attribute run.
            if scan.raw[l - 1].trim().is_empty() {
                return false;
            }
            l -= 1;
            continue;
        }
        if code.starts_with('#') {
            if code.contains("cold") {
                return true;
            }
            l -= 1;
            continue;
        }
        return false;
    }
    false
}

fn config_diag(msg: String) -> Diagnostic {
    Diagnostic {
        file: "lint.toml".to_string(),
        line: 1,
        col: 1,
        rule: "config".to_string(),
        msg,
        snippet: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> FileScan {
        FileScan::parse(path, src)
    }

    fn cfg(text: &str) -> Config {
        Config::parse(text).expect("config parses")
    }

    #[test]
    fn closure_reaches_an_unpinned_allocating_helper() {
        let s = scan(
            "crates/x/src/a.rs",
            "fn hot() { helper(); }\nfn helper() { let _ = Vec::new(); }\n",
        );
        let c = cfg("[scan]\nroots = [\"crates\"]\n[[hot]]\nfile = \"crates/x/src/a.rs\"\nfns = [\"hot\"]\n");
        let mut diags = Vec::new();
        let cov = check_graph(&c, &[s], &mut diags);
        assert_eq!(cov.pinned_fns, 1);
        assert_eq!(cov.reachable_fns, 1);
        assert_eq!(
            diags.iter().filter(|d| d.rule == "serve-alloc").count(),
            1,
            "{diags:?}"
        );
        assert!(
            diags[0].msg.contains("reachable from pinned `hot`"),
            "{diags:?}"
        );
    }

    #[test]
    fn cold_fns_are_implicit_boundaries() {
        let s = scan(
            "crates/x/src/a.rs",
            "fn hot() { refresh(); }\n#[cold]\nfn refresh() { let _ = Vec::new(); }\n",
        );
        let c = cfg("[scan]\nroots = [\"crates\"]\n[[hot]]\nfile = \"crates/x/src/a.rs\"\nfns = [\"hot\"]\n");
        let mut diags = Vec::new();
        let cov = check_graph(&c, &[s], &mut diags);
        assert_eq!(cov.reachable_fns, 0);
        assert_eq!(cov.boundary_cuts, 1);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn explicit_boundary_entries_cut_and_stale_ones_error() {
        let src = "fn hot() { publish(); }\nfn publish() { let _ = Vec::new(); }\n";
        let c = cfg(
            "[scan]\nroots = [\"crates\"]\n[graph]\nboundary = [\"crates/x/src/a.rs::publish\"]\n\
             [[hot]]\nfile = \"crates/x/src/a.rs\"\nfns = [\"hot\"]\n",
        );
        let mut diags = Vec::new();
        let cov = check_graph(&c, &[scan("crates/x/src/a.rs", src)], &mut diags);
        assert_eq!(cov.boundary_cuts, 1);
        assert!(diags.is_empty(), "{diags:?}");

        let stale = cfg(
            "[scan]\nroots = [\"crates\"]\n[graph]\nboundary = [\"crates/x/src/a.rs::no_such\"]\n\
             [[hot]]\nfile = \"crates/x/src/a.rs\"\nfns = [\"hot\"]\n",
        );
        let mut diags = Vec::new();
        check_graph(&stale, &[scan("crates/x/src/a.rs", src)], &mut diags);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "config" && d.msg.contains("stale")),
            "{diags:?}"
        );
    }

    #[test]
    fn resolution_prefers_same_file_then_same_crate() {
        let a = scan(
            "crates/x/src/a.rs",
            "fn hot() { helper(); }\nfn helper() {}\n",
        );
        let b = scan("crates/y/src/b.rs", "fn helper() { let _ = Vec::new(); }\n");
        let c = cfg("[scan]\nroots = [\"crates\"]\n[[hot]]\nfile = \"crates/x/src/a.rs\"\nfns = [\"hot\"]\n");
        let mut diags = Vec::new();
        let cov = check_graph(&c, &[a, b], &mut diags);
        // Same-file helper wins; the allocating one in crate y is never
        // bound, so no serve-alloc fires.
        assert_eq!(cov.reachable_fns, 1);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn macros_keywords_and_ignored_names_are_not_calls() {
        let s = scan(
            "crates/x/src/a.rs",
            "fn hot() { if cond() { log!(x); ignored(); } }\nfn cond() -> bool { true }\nfn ignored() { let _ = Vec::new(); }\n",
        );
        let c = cfg(
            "[scan]\nroots = [\"crates\"]\n[graph]\nignore_names = [\"ignored\"]\n\
             [[hot]]\nfile = \"crates/x/src/a.rs\"\nfns = [\"hot\"]\n",
        );
        let mut diags = Vec::new();
        let cov = check_graph(&c, &[s], &mut diags);
        assert_eq!(cov.reachable_fns, 1, "only cond() is followed");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unresolved_names_count_as_external() {
        let s = scan("crates/x/src/a.rs", "fn hot() { std_thing(); }\n");
        let c = cfg("[scan]\nroots = [\"crates\"]\n[[hot]]\nfile = \"crates/x/src/a.rs\"\nfns = [\"hot\"]\n");
        let mut diags = Vec::new();
        let cov = check_graph(&c, &[s], &mut diags);
        assert_eq!(cov.external_names, 1);
        assert_eq!(cov.uncovered_fns, 0);
    }

    #[test]
    fn closure_is_transitive_across_files() {
        let a = scan("crates/x/src/a.rs", "fn hot() { mid(); }\n");
        let b = scan(
            "crates/x/src/b.rs",
            "fn mid() { deep(); }\nfn deep() { let _ = Vec::new(); }\n",
        );
        let c = cfg("[scan]\nroots = [\"crates\"]\n[[hot]]\nfile = \"crates/x/src/a.rs\"\nfns = [\"hot\"]\n");
        let mut diags = Vec::new();
        let cov = check_graph(&c, &[a, b], &mut diags);
        assert_eq!(cov.reachable_fns, 2);
        let alloc: Vec<_> = diags.iter().filter(|d| d.rule == "serve-alloc").collect();
        assert_eq!(alloc.len(), 1, "{diags:?}");
        assert!(
            alloc[0].msg.contains("`mid` → `deep`") || alloc[0].msg.contains("→ `deep`"),
            "chain provenance missing: {}",
            alloc[0].msg
        );
    }
}
