//! §4/§5 figures driven by the roll-out run: Figures 2, 12–20, 23, 24.

use crate::{f, header, Scale};
use eum_sim::{Metric, RolloutReport, RumSample};
use eum_stats::Table;

/// Figure 2: client requests and DNS queries served by the mapping
/// system over time (weekly means).
pub fn fig02(r: &RolloutReport, scale: Scale) -> String {
    let mut out = header(
        "Figure 2",
        "Client requests served and DNS queries resolved by the mapping system (weekly means).",
        scale,
    );
    let rows = r.counters.rows();
    let mut t = Table::new(["week", "client requests/day", "DNS queries/day", "ratio"]);
    for week in rows.chunks(7) {
        if week.is_empty() {
            continue;
        }
        let days = week.len() as f64;
        let views: f64 = week.iter().map(|(_, _, _, v)| *v as f64).sum::<f64>() / days;
        let queries: f64 = week.iter().map(|(_, t, _, _)| *t as f64).sum::<f64>() / days;
        t.row([
            format!("{}", week[0].0 / 7),
            f(views),
            f(queries),
            f(views / queries.max(1.0)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper: ~30M client requests/s vs ~1.6M DNS queries/s (≈19:1), both growing; queries step up at the roll-out\n");
    out
}

/// Figure 12: RUM measurements per month by expectation group.
pub fn fig12(r: &RolloutReport, scale: Scale) -> String {
    let mut out = header(
        "Figure 12",
        "Number of RUM measurements per month (public-resolver clients).",
        scale,
    );
    let mut t = Table::new(["month", "high expectation", "low expectation"]);
    // The paper's qualified set is public-resolver clients.
    let mut high = [0u64; 6];
    let mut low = [0u64; 6];
    for s in r.rum.samples.iter().filter(|s| s.ecs_capable_resolver) {
        if let Some(m) = eum_sim::rum::month_of_day(s.day) {
            if s.high_expectation {
                high[m] += 1;
            } else {
                low[m] += 1;
            }
        }
    }
    for (i, name) in eum_sim::rum::MONTH_NAMES_2014H1.iter().enumerate() {
        t.row([name.to_string(), high[i].to_string(), low[i].to_string()]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper: 33-58M measurements/month, growing through the period\n");
    out
}

fn qualified(s: &RumSample, high: bool) -> bool {
    s.ecs_capable_resolver && s.high_expectation == high
}

/// Renders one daily-mean metric figure (13, 15, 17, 19).
pub fn fig_daily(r: &RolloutReport, metric: Metric, fig: &str, scale: Scale) -> String {
    let mut out = header(
        fig,
        &format!(
            "Daily mean of {} for public-resolver clients.",
            metric.label()
        ),
        scale,
    );
    let high = r.rum.daily_series(metric, |s| qualified(s, true));
    let low = r.rum.daily_series(metric, |s| qualified(s, false));
    let mut t = Table::new(["day", "high expectation", "low expectation"]);
    let low_pts: std::collections::HashMap<u32, f64> =
        low.points().into_iter().map(|p| (p.day, p.mean)).collect();
    for p in high.points().iter().step_by(5) {
        t.row([
            p.day.to_string(),
            f(p.mean),
            low_pts
                .get(&p.day)
                .map(|m| f(*m))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str(&t.render());
    let (pre_h, post_h) = r.before_after(metric, true);
    let (pre_l, post_l) = r.before_after(metric, false);
    out.push_str(&format!(
        "\nbefore -> after roll-out (30-day windows):\n  high expectation: {} -> {} ({:.2}x)\n  low expectation:  {} -> {} ({:.2}x)\n",
        f(pre_h),
        f(post_h),
        pre_h / post_h.max(1e-9),
        f(pre_l),
        f(post_l),
        pre_l / post_l.max(1e-9),
    ));
    out.push_str(&paper_note(metric));
    out
}

/// Renders one before/after CDF figure (14, 16, 18, 20).
pub fn fig_cdf(r: &RolloutReport, metric: Metric, fig: &str, scale: Scale) -> String {
    let mut out = header(
        fig,
        &format!("CDFs of {} before and after the roll-out.", metric.label()),
        scale,
    );
    let (pre_from, pre_to) = r.cfg.pre_window();
    let (post_from, post_to) = r.cfg.post_window();
    let series = [
        ("high before", true, pre_from, pre_to),
        ("high after", true, post_from, post_to),
        ("low before", false, pre_from, pre_to),
        ("low after", false, post_from, post_to),
    ];
    let cdfs: Vec<_> = series
        .iter()
        .map(|(_, high, from, to)| r.rum.cdf(metric, *from, *to, |s| qualified(s, *high)))
        .collect();
    let mut t = Table::new([
        "percentile",
        "high before",
        "high after",
        "low before",
        "low after",
    ]);
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99] {
        let cells: Vec<String> = cdfs
            .iter()
            .map(|c| {
                c.as_ref()
                    .map(|c| f(c.value_at(q)))
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        t.row([
            format!("p{:02.0}", q * 100.0),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&paper_note(metric));
    out
}

fn paper_note(metric: Metric) -> String {
    match metric {
        Metric::MappingDistance => {
            "paper: high-expectation mean 2000+ -> ~250 miles (8x); p90 4573 -> 936 miles\n".into()
        }
        Metric::Rtt => "paper: high-expectation mean 200 -> 100 ms (2x); p75 220 -> 137 ms\n".into(),
        Metric::Ttfb => {
            "paper: high-expectation mean ~1000 -> ~700 ms (30%); p75 1399 -> 1072 ms (high), 830 -> 667 ms (low)\n".into()
        }
        Metric::Download => {
            "paper: high-expectation mean 300 -> 150 ms (2x); p75 272 -> 157 ms (high), 192 -> 102 ms (low)\n".into()
        }
        Metric::Dns => "paper: (DNS time not plotted; included here for completeness)\n".into(),
    }
}

/// Figure 23: daily DNS queries at the mapping system through the
/// roll-out.
pub fn fig23(r: &RolloutReport, scale: Scale) -> String {
    let mut out = header(
        "Figure 23",
        "DNS queries received by the mapping system's name servers (daily; public-resolver share).",
        scale,
    );
    let mut t = Table::new(["day", "total queries", "from public resolvers"]);
    for (day, total, public, _) in r.counters.rows().iter().step_by(5) {
        t.row([day.to_string(), total.to_string(), public.to_string()]);
    }
    out.push_str(&t.render());
    let ((pre_t, pre_p), (post_t, post_p)) = r.query_rate_change();
    out.push_str(&format!(
        "\nbefore -> after roll-out (daily means): total {} -> {} ({:.2}x); public {} -> {} ({:.2}x)\n",
        f(pre_t),
        f(post_t),
        post_t / pre_t.max(1e-9),
        f(pre_p),
        f(post_p),
        post_p / pre_p.max(1e-9),
    ));
    out.push_str("paper: total 870K -> 1.17M qps (1.35x); public 33.5K -> 270K qps (8x)\n");
    out
}

/// Figure 24: query-rate amplification vs (domain, LDNS) popularity.
pub fn fig24(r: &RolloutReport, scale: Scale) -> String {
    let mut out = header(
        "Figure 24",
        "Factor increase in query rate vs pre-roll-out popularity of (domain, LDNS) pairs.",
        scale,
    );
    let buckets = r.amplification_buckets();
    let mut t = Table::new([
        "popularity (q/TTL)",
        "factor increase",
        "pairs",
        "% of pre-roll-out queries",
    ]);
    for b in &buckets {
        t.row([
            format!("<= {:.1}", b.popularity),
            f(b.factor),
            b.pairs.to_string(),
            f(100.0 * b.pre_query_share),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper: pairs near 1 query/TTL amplify the most (up to ~100x+); the top bucket held only 11% of pre-roll-out queries\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_sim::{Scenario, ScenarioConfig};

    fn report() -> &'static RolloutReport {
        static REPORT: std::sync::OnceLock<RolloutReport> = std::sync::OnceLock::new();
        REPORT.get_or_init(|| Scenario::build(ScenarioConfig::tiny(crate::SEED)).run_rollout())
    }

    #[test]
    fn rollout_figures_render_nonempty() {
        let r = report();
        let figs = [
            fig02(r, Scale::Quick),
            fig12(r, Scale::Quick),
            fig_daily(r, Metric::MappingDistance, "Figure 13", Scale::Quick),
            fig_cdf(r, Metric::MappingDistance, "Figure 14", Scale::Quick),
            fig_daily(r, Metric::Rtt, "Figure 15", Scale::Quick),
            fig_cdf(r, Metric::Rtt, "Figure 16", Scale::Quick),
            fig_daily(r, Metric::Ttfb, "Figure 17", Scale::Quick),
            fig_cdf(r, Metric::Ttfb, "Figure 18", Scale::Quick),
            fig_daily(r, Metric::Download, "Figure 19", Scale::Quick),
            fig_cdf(r, Metric::Download, "Figure 20", Scale::Quick),
            fig23(r, Scale::Quick),
            fig24(r, Scale::Quick),
        ];
        for s in figs {
            assert!(s.lines().count() > 6, "figure too short:\n{s}");
            assert!(s.contains("paper:"));
        }
    }

    #[test]
    fn fig13_shows_distance_improvement_for_high_group() {
        let r = report();
        let (pre, post) = r.before_after(Metric::MappingDistance, true);
        assert!(post < pre, "{pre} -> {post}");
    }
}
