//! Network endpoints: anything with an IP, a location, and a last-mile.
//!
//! The latency model works over [`Endpoint`]s so that clients, resolvers,
//! authoritative name servers, and CDN servers all share one RTT function —
//! mirroring how the paper's network-measurement component treats "points
//! on the Internet" uniformly (§2.2 (iv)).

use eum_geo::{Asn, Country, GeoPoint};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A point on the modeled Internet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Endpoint {
    /// The endpoint's (representative) IP.
    pub ip: Ipv4Addr,
    /// Geographic fix.
    pub loc: GeoPoint,
    /// Country.
    pub country: Country,
    /// Autonomous system.
    pub asn: Asn,
    /// One-way last-mile latency contribution in milliseconds. Client
    /// blocks carry their access-network latency here (DSL/cable/cellular);
    /// infrastructure endpoints (resolvers, CDN servers) are well-connected
    /// and carry ≤ 1 ms.
    pub access_ms: f64,
}

impl Endpoint {
    /// An infrastructure endpoint: negligible last-mile.
    pub fn infra(ip: Ipv4Addr, loc: GeoPoint, country: Country, asn: Asn) -> Self {
        Endpoint {
            ip,
            loc,
            country,
            asn,
            access_ms: 0.5,
        }
    }

    /// A client-side endpoint with an explicit access latency.
    pub fn client(ip: Ipv4Addr, loc: GeoPoint, country: Country, asn: Asn, access_ms: f64) -> Self {
        Endpoint {
            ip,
            loc,
            country,
            asn,
            access_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_access() {
        let p = GeoPoint::new(0.0, 0.0);
        let e = Endpoint::infra(Ipv4Addr::new(1, 1, 1, 1), p, Country::UnitedStates, Asn(1));
        assert_eq!(e.access_ms, 0.5);
        let c = Endpoint::client(Ipv4Addr::new(2, 2, 2, 2), p, Country::India, Asn(2), 25.0);
        assert_eq!(c.access_ms, 25.0);
    }
}
