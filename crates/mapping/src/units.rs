//! Mapping units: the finest-grain client sets the system maps (§5.1).
//!
//! "A mapping unit is the finest-grain set of client IPs for which server
//! assignment decisions are made … A traditional NS-based mapping system
//! uses a LDNS as the mapping unit … An end-user mapping system could use
//! /x client IP blocks that partition the client IP space, where x ≤ 24."
//!
//! This module builds both unit families, with the paper's BGP-CIDR
//! aggregation heuristic ("if a set of /24 IP blocks belong within the
//! same BGP CIDR, these blocks can be combined") and the §5.1 accounting:
//! unit counts, per-unit demand, and cluster radii per prefix length
//! (Figure 22).

use eum_geo::{GeoPoint, Prefix};
use eum_netmodel::{BlockId, Internet, ResolverId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Largest geographic radius (miles) a BGP-aggregated unit may have before
/// it is split back into /x blocks — beyond this, "same CIDR" stops
/// implying "proximal" and one server assignment cannot fit the unit
/// (§3.3's radius argument applied to block units).
pub const MAX_AGGREGATE_RADIUS_MILES: f64 = 250.0;

/// Index of a mapping unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UnitId(pub u32);

impl UnitId {
    /// The index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a unit is keyed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnitKey {
    /// All clients of one LDNS (NS-based mapping).
    Ldns(ResolverId),
    /// All clients in an IP block (end-user mapping). The prefix may be a
    /// /x block or a BGP CIDR when aggregation is on.
    Block(Prefix),
}

/// One mapping unit with its aggregate observables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapUnitInfo {
    /// The key.
    pub key: UnitKey,
    /// Total client demand in the unit.
    pub demand: f64,
    /// Demand-weighted centroid of the member client blocks.
    pub centroid: GeoPoint,
    /// Demand-weighted mean distance of members to the centroid — the
    /// §3.3 "cluster radius" (miles).
    pub radius: f64,
    /// Member client blocks (for client-aware scoring).
    pub members: Vec<BlockId>,
}

/// A complete unit partition with lookup indices.
#[derive(Debug, Clone, Default)]
pub struct MapUnits {
    /// All units.
    pub units: Vec<MapUnitInfo>,
    by_ldns: HashMap<ResolverId, UnitId>,
    /// /24 member prefix → owning unit (covers both block granularities
    /// and BGP aggregation).
    by_member24: HashMap<Prefix, UnitId>,
}

impl MapUnits {
    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when there are no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The unit with the given ID.
    pub fn unit(&self, id: UnitId) -> &MapUnitInfo {
        &self.units[id.index()]
    }

    /// The unit owning an LDNS (NS-based lookup).
    pub fn unit_for_ldns(&self, ldns: ResolverId) -> Option<UnitId> {
        self.by_ldns.get(&ldns).copied()
    }

    /// The unit owning a client, looked up by the /24 the client belongs
    /// to (the granularity ECS queries arrive at).
    pub fn unit_for_client(&self, client: Ipv4Addr) -> Option<UnitId> {
        self.by_member24.get(&Prefix::of(client, 24)).copied()
    }

    /// The unit owning a /24 block.
    pub fn unit_for_block24(&self, block: Prefix) -> Option<UnitId> {
        self.by_member24.get(&block.truncate(24)).copied()
    }

    /// One unit per LDNS with non-zero demand — NS-based units. Each
    /// unit's members are the blocks using that LDNS; demand is the
    /// demand flowing through it.
    pub fn ldns_units(net: &Internet) -> MapUnits {
        let mut grouped: HashMap<ResolverId, Vec<(BlockId, f64)>> = HashMap::new();
        for b in &net.blocks {
            for (r, w) in &b.ldns {
                if *w > 0.0 {
                    grouped.entry(*r).or_default().push((b.id, w * b.demand));
                }
            }
        }
        let mut keys: Vec<ResolverId> = grouped.keys().copied().collect();
        keys.sort();
        let mut out = MapUnits::default();
        for r in keys {
            let members = &grouped[&r];
            let info = summarize(net, UnitKey::Ldns(r), members.iter().map(|(b, d)| (*b, *d)));
            let id = UnitId(out.units.len() as u32);
            out.by_ldns.insert(r, id);
            out.units.push(info);
        }
        out
    }

    /// /x block units, optionally combined by covering BGP CIDR (§5.1).
    ///
    /// With `bgp_aggregate`, every /x block is first mapped to its covering
    /// announced CIDR; blocks sharing a CIDR form one unit keyed by the
    /// CIDR (when the CIDR is coarser than /x) — this is what reduced the
    /// paper's 3.76M /24 units to 444K. The paper's premise is that blocks
    /// in one CIDR "are likely proximal in the network sense"; when that
    /// fails (a multi-branch enterprise announcing one CIDR across
    /// continents), aggregation would produce a meaningless centroid, so
    /// CIDR groups whose geographic radius exceeds
    /// [`MAX_AGGREGATE_RADIUS_MILES`] are de-aggregated back to /x blocks.
    pub fn block_units(net: &Internet, prefix_len: u8, bgp_aggregate: bool) -> MapUnits {
        assert!(prefix_len <= 24, "mapping units are /x with x ≤ 24");
        let mut grouped: HashMap<Prefix, Vec<(BlockId, f64)>> = HashMap::new();
        let insert_plain = |grouped: &mut HashMap<Prefix, Vec<(BlockId, f64)>>,
                            b: &eum_netmodel::ClientBlock| {
            grouped
                .entry(b.prefix.truncate(prefix_len))
                .or_default()
                .push((b.id, b.demand));
        };
        for b in &net.blocks {
            if b.demand <= 0.0 {
                continue;
            }
            let coarse = b.prefix.truncate(prefix_len);
            let key = if bgp_aggregate {
                match net.bgp.covering(coarse) {
                    // Use the CIDR when it is at least as coarse as /x.
                    Some((cidr, _)) if cidr.len() <= prefix_len => cidr,
                    _ => coarse,
                }
            } else {
                coarse
            };
            grouped.entry(key).or_default().push((b.id, b.demand));
        }
        if bgp_aggregate {
            // De-aggregate dispersed CIDR groups.
            let keys: Vec<Prefix> = grouped.keys().copied().collect();
            for key in keys {
                if key.len() >= prefix_len {
                    continue; // not an aggregation
                }
                let members = &grouped[&key];
                let info = summarize(
                    net,
                    UnitKey::Block(key),
                    members.iter().map(|(b, d)| (*b, *d)),
                );
                if info.radius > MAX_AGGREGATE_RADIUS_MILES {
                    let members = grouped.remove(&key).expect("key present");
                    for (bid, _) in members {
                        insert_plain(&mut grouped, net.block(bid));
                    }
                }
            }
        }
        let mut keys: Vec<Prefix> = grouped.keys().copied().collect();
        keys.sort();
        let mut out = MapUnits::default();
        for key in keys {
            let members = &grouped[&key];
            let info = summarize(
                net,
                UnitKey::Block(key),
                members.iter().map(|(b, d)| (*b, *d)),
            );
            let id = UnitId(out.units.len() as u32);
            for (b, _) in members {
                out.by_member24.insert(net.block(*b).prefix, id);
            }
            out.units.push(info);
        }
        out
    }

    /// Total demand across units.
    pub fn total_demand(&self) -> f64 {
        self.units.iter().map(|u| u.demand).sum()
    }

    /// Units sorted by demand, descending — the ranking behind Figure 21.
    pub fn by_demand_desc(&self) -> Vec<UnitId> {
        let mut ids: Vec<UnitId> = (0..self.units.len()).map(|i| UnitId(i as u32)).collect();
        ids.sort_by(|a, b| {
            self.unit(*b)
                .demand
                .partial_cmp(&self.unit(*a).demand)
                .expect("finite demand")
        });
        ids
    }

    /// How many of the highest-demand units are needed to cover `fraction`
    /// of total demand (§5.1: 95% coverage needs 25K LDNSes but 2.2M /24
    /// blocks).
    pub fn units_for_demand_fraction(&self, fraction: f64) -> usize {
        let total = self.total_demand();
        if total <= 0.0 {
            return 0;
        }
        let target = fraction.clamp(0.0, 1.0) * total;
        let mut cum = 0.0;
        for (i, id) in self.by_demand_desc().into_iter().enumerate() {
            cum += self.unit(id).demand;
            if cum >= target - 1e-9 {
                return i + 1;
            }
        }
        self.units.len()
    }
}

/// Builds one unit's aggregate info from its weighted members.
fn summarize(
    net: &Internet,
    key: UnitKey,
    members: impl Iterator<Item = (BlockId, f64)> + Clone,
) -> MapUnitInfo {
    let points: Vec<(GeoPoint, f64)> = members
        .clone()
        .map(|(b, d)| (net.block(b).loc, d))
        .collect();
    let demand: f64 = points.iter().map(|(_, d)| d).sum();
    let centroid = GeoPoint::weighted_centroid(&points).unwrap_or_else(|| {
        points
            .first()
            .map(|(p, _)| *p)
            .unwrap_or(GeoPoint::new(0.0, 0.0))
    });
    let radius = if demand > 0.0 {
        points
            .iter()
            .map(|(p, d)| p.distance_miles(&centroid) * d)
            .sum::<f64>()
            / demand
    } else {
        0.0
    };
    MapUnitInfo {
        key,
        demand,
        centroid,
        radius,
        members: members.map(|(b, _)| b).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_netmodel::InternetConfig;

    fn net() -> Internet {
        Internet::generate(InternetConfig::tiny(0x11))
    }

    #[test]
    fn ldns_units_cover_all_demand() {
        let net = net();
        let units = MapUnits::ldns_units(&net);
        assert!(!units.is_empty());
        let total = units.total_demand();
        assert!((total - net.total_demand()).abs() / total < 1e-9);
    }

    #[test]
    fn block24_units_are_one_per_block() {
        let net = net();
        let units = MapUnits::block_units(&net, 24, false);
        let with_demand = net.blocks.iter().filter(|b| b.demand > 0.0).count();
        assert_eq!(units.len(), with_demand);
        // Every block resolves to its own unit.
        for b in &net.blocks {
            let u = units.unit_for_client(b.client_ip()).expect("unit exists");
            assert_eq!(units.unit(u).key, UnitKey::Block(b.prefix));
        }
    }

    #[test]
    fn coarser_prefixes_give_fewer_units_with_larger_radius() {
        let net = net();
        let mut prev_count = usize::MAX;
        let mut radii: Vec<f64> = Vec::new();
        for len in [24u8, 20, 16, 12, 8] {
            let units = MapUnits::block_units(&net, len, false);
            assert!(units.len() <= prev_count, "/{} grew the unit count", len);
            prev_count = units.len();
            let total = units.total_demand();
            let mean_radius = units.units.iter().map(|u| u.radius * u.demand).sum::<f64>() / total;
            radii.push(mean_radius);
        }
        // Figure 22's tradeoff: radius grows as prefixes coarsen.
        assert!(radii.last().unwrap() > radii.first().unwrap());
    }

    #[test]
    fn bgp_aggregation_reduces_units_without_losing_demand() {
        let net = net();
        let plain = MapUnits::block_units(&net, 24, false);
        let agg = MapUnits::block_units(&net, 24, true);
        assert!(agg.len() < plain.len(), "{} !< {}", agg.len(), plain.len());
        assert!((agg.total_demand() - plain.total_demand()).abs() < 1e-6);
        // Lookup still resolves every client.
        for b in &net.blocks {
            assert!(agg.unit_for_client(b.client_ip()).is_some());
        }
    }

    #[test]
    fn dispersed_cidrs_are_deaggregated() {
        // No aggregated unit may exceed the radius cap — multi-continent
        // enterprise CIDRs must fall back to per-block units.
        let net = Internet::generate(InternetConfig::small(0x12));
        let agg = MapUnits::block_units(&net, 24, true);
        for u in &agg.units {
            if let UnitKey::Block(p) = u.key {
                if p.len() < 24 {
                    assert!(
                        u.radius <= crate::units::MAX_AGGREGATE_RADIUS_MILES,
                        "aggregated unit {p} has radius {:.0}",
                        u.radius
                    );
                }
            }
        }
    }

    #[test]
    fn ldns_lookup_finds_units() {
        let net = net();
        let units = MapUnits::ldns_units(&net);
        for b in &net.blocks {
            for (r, _) in &b.ldns {
                assert!(units.unit_for_ldns(*r).is_some());
            }
        }
        assert!(units.unit_for_ldns(ResolverId(9999)).is_none());
    }

    #[test]
    fn demand_ranking_is_descending_and_coverage_monotone() {
        let net = net();
        let units = MapUnits::ldns_units(&net);
        let ranked = units.by_demand_desc();
        for pair in ranked.windows(2) {
            assert!(units.unit(pair[0]).demand >= units.unit(pair[1]).demand);
        }
        let n50 = units.units_for_demand_fraction(0.5);
        let n95 = units.units_for_demand_fraction(0.95);
        assert!(n50 >= 1);
        assert!(n95 >= n50);
        assert!(n95 <= units.len());
    }

    #[test]
    fn fewer_ldns_units_than_block_units_for_half_demand() {
        // Figure 21's key asymmetry (LDNS demand is more concentrated).
        let net = Internet::generate(InternetConfig::small(9));
        let ldns = MapUnits::ldns_units(&net);
        let blocks = MapUnits::block_units(&net, 24, false);
        assert!(
            ldns.units_for_demand_fraction(0.5) < blocks.units_for_demand_fraction(0.5),
            "LDNS units should concentrate demand more than /24 blocks"
        );
    }

    #[test]
    fn unknown_client_has_no_unit() {
        let net = net();
        let units = MapUnits::block_units(&net, 24, false);
        assert!(units
            .unit_for_client("203.0.113.7".parse().unwrap())
            .is_none());
    }

    #[test]
    fn radius_is_zero_for_singleton_unit() {
        let net = net();
        let units = MapUnits::block_units(&net, 24, false);
        for u in &units.units {
            if u.members.len() == 1 {
                assert!(u.radius < 1e-9);
            }
        }
    }
}
