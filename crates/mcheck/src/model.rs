//! The cooperative scheduler and DFS interleaving explorer.
//!
//! One execution runs the checked closure with every modeled thread
//! mapped onto a pooled OS thread, but with a *grant baton* that keeps
//! exactly one of them in user code at any instant. Every modeled
//! operation (atomic access, fence, mutex, spawn, join) is a schedule
//! point: the running thread parks, a scheduling decision picks who
//! performs the next operation, and the choice is recorded on a decision
//! path. The explorer then backtracks depth-first over that path —
//! flipping the deepest decision with unexplored alternatives — until the
//! space is exhausted, a budget is hit, or an assertion fails.
//!
//! Two decision kinds exist: *schedule* decisions (which runnable thread
//! moves) and *load* decisions (which store message a load reads, per the
//! weak-memory model in [`crate::memory`]). Context bounding caps how
//! often a schedule decision may switch away from a thread that could
//! have continued (a preemption); bounds are explored iteratively
//! (0, 1, …, max), so the first failure found uses the fewest preemptions
//! — the printed schedule is minimal in that sense.

use crate::memory::{LocId, Memory, ThreadMem};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrd};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub use std::sync::atomic::Ordering;

/// Exploration limits. All defaults are sized for "runs in a test suite";
/// set `EUM_MCHECK_EXHAUSTIVE=1` (see [`exhaustive`]) and pass a larger
/// config for overnight-style runs.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum preemptions per execution (context bound). Bounds are
    /// explored iteratively from 0 up to this value.
    pub max_preemptions: usize,
    /// Total execution budget across all bounds; exploration stops with
    /// `Report::complete == false` when it is exceeded.
    pub max_executions: u64,
    /// Per-execution operation budget (livelock guard).
    pub max_steps: usize,
    /// Maximum modeled threads per execution (pool size).
    pub max_threads: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_preemptions: 2,
            max_executions: 100_000,
            max_steps: 20_000,
            max_threads: 6,
        }
    }
}

impl Config {
    /// A config with explicit preemption and execution budgets.
    pub fn bounded(max_preemptions: usize, max_executions: u64) -> Config {
        Config {
            max_preemptions,
            max_executions,
            ..Config::default()
        }
    }
}

/// True when `EUM_MCHECK_EXHAUSTIVE` is set (and not "0"): tests use this
/// to switch from their bounded default configs to exhaustive ones.
pub fn exhaustive() -> bool {
    std::env::var_os("EUM_MCHECK_EXHAUSTIVE").is_some_and(|v| v != *"0")
}

/// Outcome of a completed exploration (no violation found).
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions actually run (all bounds).
    pub executions: u64,
    /// Whether the space up to `max_preemptions` was fully explored
    /// (false when `max_executions` cut it short).
    pub complete: bool,
    /// The highest preemption bound explored.
    pub bound_reached: usize,
}

/// A violation: the panic message plus the full interleaving schedule of
/// the failing execution, rendered for humans.
pub struct FailureReport {
    /// The panic/deadlock/budget message.
    pub message: String,
    /// The rendered step-by-step schedule of the failing execution.
    pub schedule: String,
    /// Executions run before the failure was found.
    pub executions: u64,
    /// The context bound the failure was found at.
    pub preemption_bound: usize,
    /// Preemptions actually used by the failing execution.
    pub preemptions: usize,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "mcheck: violation found: {}", self.message)?;
        writeln!(
            f,
            "  after {} execution(s), at preemption bound {} ({} preemption(s) used)",
            self.executions, self.preemption_bound, self.preemptions
        )?;
        writeln!(f, "  failing interleaving (minimized schedule):")?;
        write!(f, "{}", self.schedule)
    }
}

impl fmt::Debug for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

// ---------------------------------------------------------------------
// Decisions and events
// ---------------------------------------------------------------------

const DK_SCHED: u8 = 0;
const DK_LOAD: u8 = 1;

#[derive(Clone, Copy, Debug)]
struct Decision {
    chosen: u32,
    alts: u32,
    kind: u8,
}

#[derive(Clone)]
enum Ev {
    Spawn {
        child: usize,
    },
    Load {
        loc: LocId,
        ord: Ordering,
        idx: u32,
        newest: u32,
        val: u64,
    },
    Store {
        loc: LocId,
        ord: Ordering,
        idx: u32,
        val: u64,
    },
    Rmw {
        loc: LocId,
        ord: Ordering,
        old: u64,
        new: u64,
    },
    CasFail {
        loc: LocId,
        ord: Ordering,
        found: u64,
    },
    Fence {
        ord: Ordering,
    },
    LockWait {
        rid: usize,
    },
    Lock {
        rid: usize,
    },
    Unlock {
        rid: usize,
    },
    JoinWait {
        target: usize,
    },
    Join {
        target: usize,
    },
    Finish,
}

#[derive(Clone)]
struct Event {
    tid: usize,
    ev: Ev,
}

fn ord_name(o: Ordering) -> &'static str {
    match o {
        // relaxed-ok: match arm naming the variant for schedule rendering,
        // not an atomic access.
        Ordering::Relaxed => "Relaxed",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        Ordering::AcqRel => "AcqRel",
        Ordering::SeqCst => "SeqCst",
        _ => "?",
    }
}

fn render_schedule(events: &[Event]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (step, e) in events.iter().enumerate() {
        let mut desc = String::new();
        match &e.ev {
            Ev::Spawn { child } => {
                let _ = write!(desc, "spawn t{child}");
            }
            Ev::Load {
                loc,
                ord,
                idx,
                newest,
                val,
            } => {
                let _ = write!(desc, "A{loc}.load({}) -> {val}", ord_name(*ord));
                if idx < newest {
                    let _ = write!(desc, "  [store {idx}/{newest}: STALE]");
                }
            }
            Ev::Store { loc, ord, idx, val } => {
                let _ = write!(
                    desc,
                    "A{loc}.store({val}, {})  [store {idx}]",
                    ord_name(*ord)
                );
            }
            Ev::Rmw { loc, ord, old, new } => {
                let _ = write!(desc, "A{loc}.rmw({}) {old} -> {new}", ord_name(*ord));
            }
            Ev::CasFail { loc, ord, found } => {
                let _ = write!(
                    desc,
                    "A{loc}.compare_exchange({}) failed, found {found}",
                    ord_name(*ord)
                );
            }
            Ev::Fence { ord } => {
                let _ = write!(desc, "fence({})", ord_name(*ord));
            }
            Ev::LockWait { rid } => {
                let _ = write!(desc, "M{rid}.lock() [blocked]");
            }
            Ev::Lock { rid } => {
                let _ = write!(desc, "M{rid}.lock() [acquired]");
            }
            Ev::Unlock { rid } => {
                let _ = write!(desc, "M{rid}.unlock()");
            }
            Ev::JoinWait { target } => {
                let _ = write!(desc, "join(t{target}) [blocked]");
            }
            Ev::Join { target } => {
                let _ = write!(desc, "join(t{target})");
            }
            Ev::Finish => desc.push_str("finished"),
        }
        let _ = writeln!(out, "    {:>4}  t{}  {desc}", step + 1, e.tid);
    }
    out
}

// ---------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockOn {
    Lock(usize),
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Parked,
    Executing,
    Blocked(BlockOn),
    Finished,
}

struct Resource {
    owner: Option<usize>,
    view: crate::memory::View,
}

struct ExecState {
    mem: Memory,
    tmem: Vec<ThreadMem>,
    tstate: Vec<TState>,
    resources: Vec<Resource>,
    granted: usize,
    live: usize,
    cancelled: bool,
    done: bool,
    failure: Option<String>,
    path: Vec<Decision>,
    cursor: usize,
    bound: usize,
    preemptions: usize,
    steps: usize,
    max_steps: usize,
    max_threads: usize,
    run_tag: u32,
    events: Vec<Event>,
}

impl ExecState {
    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.cancelled = true;
    }

    fn decide(&mut self, kind: u8, alts: u32) -> u32 {
        if self.cursor < self.path.len() {
            let d = self.path[self.cursor];
            self.cursor += 1;
            if d.alts != alts || d.kind != kind {
                self.fail(format!(
                    "mcheck internal error: nondeterministic replay at decision {} \
                     (recorded kind {} alts {}, replayed kind {kind} alts {alts}); \
                     the checked closure must be deterministic",
                    self.cursor - 1,
                    d.kind,
                    d.alts
                ));
                return d.chosen.min(alts.saturating_sub(1));
            }
            d.chosen
        } else {
            self.path.push(Decision {
                chosen: 0,
                alts,
                kind,
            });
            self.cursor += 1;
            0
        }
    }

    /// Pick the next granted thread. `prev` is the runnable thread that
    /// just parked (switching away from it costs a preemption); `None`
    /// when the previous thread blocked or finished (free switch).
    /// Returns true when the grant changed (callers notify waiters).
    fn schedule(&mut self, prev: Option<usize>) -> bool {
        if self.cancelled {
            return true;
        }
        let mut cands: Vec<usize> = Vec::with_capacity(self.tstate.len());
        if let Some(p) = prev {
            cands.push(p);
        }
        for t in 0..self.tstate.len() {
            if Some(t) != prev && self.tstate[t] == TState::Parked {
                cands.push(t);
            }
        }
        if cands.is_empty() {
            if self.live > 0 {
                let blocked: Vec<String> = (0..self.tstate.len())
                    .filter_map(|t| match self.tstate[t] {
                        TState::Blocked(BlockOn::Lock(r)) => Some(format!("t{t} on M{r}")),
                        TState::Blocked(BlockOn::Join(j)) => Some(format!("t{t} on join(t{j})")),
                        _ => None,
                    })
                    .collect();
                self.fail(format!(
                    "deadlock: all live threads blocked ({})",
                    blocked.join(", ")
                ));
            }
            return true;
        }
        let choice = if prev.is_some() {
            if self.preemptions < self.bound && cands.len() > 1 {
                self.decide(DK_SCHED, cands.len() as u32) as usize
            } else {
                0
            }
        } else if cands.len() > 1 {
            self.decide(DK_SCHED, cands.len() as u32) as usize
        } else {
            0
        };
        let chosen = cands[choice];
        if prev == Some(self.granted) && chosen != self.granted {
            self.preemptions += 1;
        }
        let changed = self.granted != chosen;
        self.granted = chosen;
        changed
    }

    fn charge_step(&mut self) {
        self.steps += 1;
        if self.steps > self.max_steps {
            self.fail(format!(
                "step budget exceeded ({} ops): possible livelock or unbounded loop",
                self.max_steps
            ));
        }
    }

    fn resolve_loc(&mut self, slot: &StdAtomicU64, init: u64) -> LocId {
        let packed = slot.load(StdOrd::Relaxed);
        if (packed >> 32) as u32 == self.run_tag {
            return (packed as u32 as usize) - 1;
        }
        let loc = self.mem.alloc(init);
        slot.store(
            ((self.run_tag as u64) << 32) | (loc as u64 + 1),
            StdOrd::Relaxed,
        );
        loc
    }

    fn resolve_res(&mut self, slot: &StdAtomicU64) -> usize {
        let packed = slot.load(StdOrd::Relaxed);
        if (packed >> 32) as u32 == self.run_tag {
            return (packed as u32 as usize) - 1;
        }
        self.resources.push(Resource {
            owner: None,
            view: crate::memory::View::default(),
        });
        let rid = self.resources.len() - 1;
        slot.store(
            ((self.run_tag as u64) << 32) | (rid as u64 + 1),
            StdOrd::Relaxed,
        );
        rid
    }

    fn do_load(&mut self, tid: usize, loc: LocId, ord: Ordering) -> u64 {
        let (min, len) = self.tmem[tid].load_candidates(&self.mem, loc, ord);
        let n = len - min;
        let pick = if n > 1 { self.decide(DK_LOAD, n) } else { 0 };
        // Candidates are offered newest-first so the default DFS path is
        // the sequentially-consistent-looking one.
        let idx = len - 1 - pick.min(n - 1);
        let val = self.tmem[tid].apply_load(&mut self.mem, loc, idx, ord);
        self.events.push(Event {
            tid,
            ev: Ev::Load {
                loc,
                ord,
                idx,
                newest: len - 1,
                val,
            },
        });
        val
    }

    fn do_store(&mut self, tid: usize, loc: LocId, val: u64, ord: Ordering) {
        self.tmem[tid].store(&mut self.mem, loc, val, ord);
        let idx = (self.mem.locs[loc].stores.len() - 1) as u32;
        self.events.push(Event {
            tid,
            ev: Ev::Store { loc, ord, idx, val },
        });
    }

    fn do_rmw(&mut self, tid: usize, loc: LocId, f: impl FnOnce(u64) -> u64, ord: Ordering) -> u64 {
        let old = self.tmem[tid].rmw(&mut self.mem, loc, f, ord, true);
        let new = self.mem.locs[loc].stores.last().map(|s| s.val).unwrap_or(0);
        self.events.push(Event {
            tid,
            ev: Ev::Rmw { loc, ord, old, new },
        });
        old
    }
}

// ---------------------------------------------------------------------
// Execution: the shared object all modeled threads coordinate through
// ---------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    txs: Vec<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn new(n: usize) -> Pool {
        let mut txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = mpsc::channel::<Job>();
            txs.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mcheck-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn mcheck worker"),
            );
        }
        Pool { txs, handles }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    pool: Arc<Pool>,
}

/// Sentinel panic payload used to unwind modeled threads when an
/// execution is cancelled (violation found elsewhere, or reset).
struct CancelToken;

fn cancel_unwind() -> ! {
    panic::resume_unwind(Box::new(CancelToken))
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// backtrace spew for panics on modeled threads: those panics are caught
/// and turned into [`FailureReport`]s, so the hook noise is redundant.
fn install_panic_filter() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(|f| f.get()) {
                return;
            }
            prev(info);
        }));
    });
}

/// Handle to the current modeled thread's execution context.
#[derive(Clone)]
pub(crate) struct Ctx {
    exec: Arc<Execution>,
    tid: usize,
}

/// The current thread's model context, if it is a modeled thread inside a
/// running exploration. Modeled atomics fall back to real atomics when
/// this is `None`.
pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

enum Attempt<R> {
    Done(R),
    Block(BlockOn),
}

impl Execution {
    /// Run one schedule point for `tid`: park, schedule, wait for the
    /// grant, perform `attempt` (retrying after blocking). Unwinds with a
    /// cancel token if the execution is cancelled.
    fn op<R>(
        self: &Arc<Self>,
        tid: usize,
        mut attempt: impl FnMut(&mut ExecState) -> Attempt<R>,
    ) -> R {
        let mut st = self.state.lock().expect("mcheck state poisoned");
        if st.cancelled {
            drop(st);
            cancel_unwind();
        }
        st.tstate[tid] = TState::Parked;
        if st.schedule(Some(tid)) {
            self.cv.notify_all();
        }
        loop {
            if st.cancelled {
                drop(st);
                cancel_unwind();
            }
            if st.granted == tid && st.tstate[tid] == TState::Parked {
                st.charge_step();
                if st.cancelled {
                    continue;
                }
                match attempt(&mut st) {
                    Attempt::Done(r) => {
                        st.tstate[tid] = TState::Executing;
                        return r;
                    }
                    Attempt::Block(b) => {
                        st.tstate[tid] = TState::Blocked(b);
                        match b {
                            BlockOn::Lock(rid) => st.events.push(Event {
                                tid,
                                ev: Ev::LockWait { rid },
                            }),
                            BlockOn::Join(t) => st.events.push(Event {
                                tid,
                                ev: Ev::JoinWait { target: t },
                            }),
                        }
                        if st.schedule(None) {
                            self.cv.notify_all();
                        }
                    }
                }
            } else {
                st = self.cv.wait(st).expect("mcheck state poisoned");
            }
        }
    }

    /// Like [`op`], but never unwinds: used from guard destructors
    /// (mutex unlock), which may run during a panic. On cancellation the
    /// model effect is simply skipped — the execution is already dead.
    fn op_nopanic(self: &Arc<Self>, tid: usize, mut attempt: impl FnMut(&mut ExecState)) {
        let mut st = self.state.lock().expect("mcheck state poisoned");
        if st.cancelled {
            return;
        }
        st.tstate[tid] = TState::Parked;
        if st.schedule(Some(tid)) {
            self.cv.notify_all();
        }
        loop {
            if st.cancelled {
                return;
            }
            if st.granted == tid && st.tstate[tid] == TState::Parked {
                st.charge_step();
                if st.cancelled {
                    return;
                }
                attempt(&mut st);
                st.tstate[tid] = TState::Executing;
                return;
            }
            st = self.cv.wait(st).expect("mcheck state poisoned");
        }
    }

    /// First grant for a freshly spawned modeled thread: wait until the
    /// scheduler picks it, without performing an operation.
    fn wait_first_grant(self: &Arc<Self>, tid: usize) {
        let mut st = self.state.lock().expect("mcheck state poisoned");
        loop {
            if st.cancelled {
                drop(st);
                cancel_unwind();
            }
            if st.granted == tid && st.tstate[tid] == TState::Parked {
                st.tstate[tid] = TState::Executing;
                return;
            }
            st = self.cv.wait(st).expect("mcheck state poisoned");
        }
    }

    fn thread_finished(
        self: &Arc<Self>,
        tid: usize,
        payload: Option<Box<dyn std::any::Any + Send>>,
    ) {
        let mut st = self.state.lock().expect("mcheck state poisoned");
        if let Some(p) = payload {
            if !p.is::<CancelToken>() {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                st.fail(format!("thread t{tid} panicked: {msg}"));
            }
        }
        st.tstate[tid] = TState::Finished;
        st.live -= 1;
        st.events.push(Event {
            tid,
            ev: Ev::Finish,
        });
        for t in 0..st.tstate.len() {
            if st.tstate[t] == TState::Blocked(BlockOn::Join(tid)) {
                st.tstate[t] = TState::Parked;
            }
        }
        if st.live == 0 {
            st.done = true;
        } else if !st.cancelled {
            st.schedule(None);
        }
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------
// Ctx: the operations modeled primitives call
// ---------------------------------------------------------------------

impl Ctx {
    pub(crate) fn atomic_load(&self, slot: &StdAtomicU64, init: u64, ord: Ordering) -> u64 {
        let tid = self.tid;
        self.exec.op(tid, |st| {
            let loc = st.resolve_loc(slot, init);
            Attempt::Done(st.do_load(tid, loc, ord))
        })
    }

    pub(crate) fn atomic_store(&self, slot: &StdAtomicU64, init: u64, val: u64, ord: Ordering) {
        let tid = self.tid;
        self.exec.op(tid, |st| {
            let loc = st.resolve_loc(slot, init);
            st.do_store(tid, loc, val, ord);
            Attempt::Done(())
        })
    }

    pub(crate) fn atomic_rmw(
        &self,
        slot: &StdAtomicU64,
        init: u64,
        ord: Ordering,
        f: impl Fn(u64) -> u64,
    ) -> u64 {
        let tid = self.tid;
        self.exec.op(tid, |st| {
            let loc = st.resolve_loc(slot, init);
            Attempt::Done(st.do_rmw(tid, loc, &f, ord))
        })
    }

    pub(crate) fn atomic_cas(
        &self,
        slot: &StdAtomicU64,
        init: u64,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let tid = self.tid;
        self.exec.op(tid, |st| {
            let loc = st.resolve_loc(slot, init);
            let cur = st.mem.locs[loc]
                .stores
                .last()
                .map(|s| s.val)
                .unwrap_or(init);
            if cur == expected {
                Attempt::Done(Ok(st.do_rmw(tid, loc, |_| new, success)))
            } else {
                let old = st.tmem[tid].rmw(&mut st.mem, loc, |v| v, failure, false);
                st.events.push(Event {
                    tid,
                    ev: Ev::CasFail {
                        loc,
                        ord: failure,
                        found: old,
                    },
                });
                Attempt::Done(Err(old))
            }
        })
    }

    pub(crate) fn fence(&self, ord: Ordering) {
        let tid = self.tid;
        self.exec.op(tid, |st| {
            // Split borrow: fence needs tmem and mem together.
            let ExecState {
                ref mut mem,
                ref mut tmem,
                ..
            } = *st;
            tmem[tid].fence(mem, ord);
            st.events.push(Event {
                tid,
                ev: Ev::Fence { ord },
            });
            Attempt::Done(())
        })
    }

    pub(crate) fn mutex_lock(&self, slot: &StdAtomicU64) -> usize {
        let tid = self.tid;
        self.exec.op(tid, |st| {
            let rid = st.resolve_res(slot);
            if st.resources[rid].owner.is_none() {
                st.resources[rid].owner = Some(tid);
                let rv = st.resources[rid].view.clone();
                st.tmem[tid].view.join(&rv);
                st.events.push(Event {
                    tid,
                    ev: Ev::Lock { rid },
                });
                Attempt::Done(rid)
            } else {
                Attempt::Block(BlockOn::Lock(rid))
            }
        })
    }

    pub(crate) fn mutex_unlock(&self, rid: usize) {
        let tid = self.tid;
        self.exec.op_nopanic(tid, |st| {
            debug_assert_eq!(st.resources[rid].owner, Some(tid));
            let tv = st.tmem[tid].view.clone();
            st.resources[rid].view.join(&tv);
            st.resources[rid].owner = None;
            for t in 0..st.tstate.len() {
                if st.tstate[t] == TState::Blocked(BlockOn::Lock(rid)) {
                    st.tstate[t] = TState::Parked;
                }
            }
            st.events.push(Event {
                tid,
                ev: Ev::Unlock { rid },
            });
        });
    }

    fn join_thread(&self, target: usize) {
        let tid = self.tid;
        self.exec.op(tid, |st| {
            if st.tstate[target] == TState::Finished {
                let tv = st.tmem[target].view.clone();
                st.tmem[tid].view.join(&tv);
                st.events.push(Event {
                    tid,
                    ev: Ev::Join { target },
                });
                Attempt::Done(())
            } else {
                Attempt::Block(BlockOn::Join(target))
            }
        })
    }

    fn spawn_thread(&self) -> usize {
        let tid = self.tid;
        self.exec.op(tid, |st| {
            if st.tstate.len() >= st.max_threads {
                st.fail(format!(
                    "too many modeled threads (max_threads = {})",
                    st.max_threads
                ));
                // Unwind via the cancelled check at the next loop entry.
                Attempt::Block(BlockOn::Join(tid))
            } else {
                let child = st.tstate.len();
                st.tstate.push(TState::Parked);
                st.tmem.push(ThreadMem {
                    view: st.tmem[tid].view.clone(),
                    ..Default::default()
                });
                st.live += 1;
                st.events.push(Event {
                    tid,
                    ev: Ev::Spawn { child },
                });
                Attempt::Done(child)
            }
        })
    }
}

// ---------------------------------------------------------------------
// Public spawn/join surface (modeled std::thread subset)
// ---------------------------------------------------------------------

/// Handle to a modeled thread; `join` blocks (as a schedule point) until
/// the thread finishes and returns its value.
pub struct JoinHandle<T> {
    cell: Arc<Mutex<Option<T>>>,
    target: usize,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread and take its result.
    pub fn join(self) -> T {
        let ctx = current_ctx().expect("mcheck::join outside a model run");
        ctx.join_thread(self.target);
        let v = self.cell.lock().expect("mcheck join cell poisoned").take();
        v.expect("joined modeled thread produced no value")
    }
}

/// Spawn a modeled thread inside a running exploration. Panics if called
/// outside `check` — modeled tests drive all their threads through this.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let ctx = current_ctx().expect("mcheck::spawn outside a model run");
    let child = ctx.spawn_thread();
    let cell: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let cell2 = cell.clone();
    let exec = ctx.exec.clone();
    let job: Job = Box::new(move || {
        CTX.with(|c| {
            *c.borrow_mut() = Some(Ctx {
                exec: exec.clone(),
                tid: child,
            })
        });
        IN_MODEL.with(|f| f.set(true));
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            exec.wait_first_grant(child);
            f()
        }));
        IN_MODEL.with(|f| f.set(false));
        CTX.with(|c| *c.borrow_mut() = None);
        match r {
            Ok(v) => {
                *cell2.lock().expect("mcheck join cell poisoned") = Some(v);
                exec.thread_finished(child, None);
            }
            Err(p) => exec.thread_finished(child, Some(p)),
        }
    });
    ctx.exec.pool.txs[child]
        .send(job)
        .expect("mcheck worker gone");
    JoinHandle {
        cell,
        target: child,
    }
}

// ---------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------

static RUN_TAGS: StdAtomicU64 = StdAtomicU64::new(1);

struct RunOutcome {
    failure: Option<String>,
    path: Vec<Decision>,
    events: Vec<Event>,
    preemptions: usize,
}

fn run_once<F>(
    pool: &Arc<Pool>,
    cfg: &Config,
    bound: usize,
    prefix: Vec<Decision>,
    f: &Arc<F>,
) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let run_tag = RUN_TAGS.fetch_add(1, StdOrd::Relaxed) as u32;
    let exec = Arc::new(Execution {
        state: Mutex::new(ExecState {
            mem: Memory::default(),
            tmem: vec![ThreadMem::default()],
            tstate: vec![TState::Parked],
            resources: Vec::new(),
            granted: 0,
            live: 1,
            cancelled: false,
            done: false,
            failure: None,
            path: prefix,
            cursor: 0,
            bound,
            preemptions: 0,
            steps: 0,
            max_steps: cfg.max_steps,
            max_threads: cfg.max_threads,
            run_tag,
            events: Vec::with_capacity(256),
        }),
        cv: Condvar::new(),
        pool: pool.clone(),
    });

    let f2 = f.clone();
    let exec2 = exec.clone();
    let job: Job = Box::new(move || {
        CTX.with(|c| {
            *c.borrow_mut() = Some(Ctx {
                exec: exec2.clone(),
                tid: 0,
            })
        });
        IN_MODEL.with(|fl| fl.set(true));
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            exec2.wait_first_grant(0);
            f2()
        }));
        IN_MODEL.with(|fl| fl.set(false));
        CTX.with(|c| *c.borrow_mut() = None);
        exec2.thread_finished(0, r.err());
    });
    pool.txs[0].send(job).expect("mcheck worker gone");

    let mut st = exec.state.lock().expect("mcheck state poisoned");
    while !st.done {
        st = exec.cv.wait(st).expect("mcheck state poisoned");
    }
    RunOutcome {
        failure: st.failure.take(),
        path: std::mem::take(&mut st.path),
        events: std::mem::take(&mut st.events),
        preemptions: st.preemptions,
    }
}

/// Explore interleavings of `f` under `cfg`. Returns a [`Report`] when no
/// violation is found, or the first failure (with its rendered schedule).
///
/// `f` is run many times and must be deterministic apart from the modeled
/// concurrency: same spawns, same modeled ops, given the same values read.
pub fn check<F>(cfg: &Config, f: F) -> Result<Report, Box<FailureReport>>
where
    F: Fn() + Send + Sync + 'static,
{
    install_panic_filter();
    let pool = Arc::new(Pool::new(cfg.max_threads));
    let f = Arc::new(f);
    let mut executions: u64 = 0;
    let mut complete = true;
    let mut bound_reached = 0;
    'bounds: for bound in 0..=cfg.max_preemptions {
        bound_reached = bound;
        let mut prefix: Vec<Decision> = Vec::new();
        loop {
            if executions >= cfg.max_executions {
                complete = false;
                break 'bounds;
            }
            let out = run_once(&pool, cfg, bound, prefix, &f);
            executions += 1;
            if let Some(msg) = out.failure {
                return Err(Box::new(FailureReport {
                    message: msg,
                    schedule: render_schedule(&out.events),
                    executions,
                    preemption_bound: bound,
                    preemptions: out.preemptions,
                }));
            }
            prefix = out.path;
            loop {
                match prefix.last_mut() {
                    None => break,
                    Some(d) if d.chosen + 1 < d.alts => {
                        d.chosen += 1;
                        break;
                    }
                    Some(_) => {
                        prefix.pop();
                    }
                }
            }
            if prefix.is_empty() {
                break;
            }
        }
    }
    Ok(Report {
        executions,
        complete,
        bound_reached,
    })
}

/// Test helper: explore and panic (printing the schedule) on violation.
/// Returns the pass report so callers can assert on completeness.
pub fn verify<F>(name: &str, cfg: &Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    match check(cfg, f) {
        Ok(r) => r,
        Err(fail) => panic!("model check `{name}` failed:\n{fail}"),
    }
}

/// Test helper for regressions: explore and panic if **no** violation is
/// found. Returns the failure so callers can assert on its contents.
pub fn expect_failure<F>(name: &str, cfg: &Config, f: F) -> Box<FailureReport>
where
    F: Fn() + Send + Sync + 'static,
{
    match check(cfg, f) {
        Ok(r) => panic!(
            "model check `{name}` was expected to find a violation but passed \
             ({} executions, complete={})",
            r.executions, r.complete
        ),
        Err(fail) => fail,
    }
}
