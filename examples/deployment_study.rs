//! Runs the §6 deployment study (Figure 25): how many deployment
//! locations does each mapping scheme need, and who wins at the tail?
//!
//! Run with: `cargo run --release --example deployment_study`

use end_user_mapping::mapping::{run_study, Scheme, StudyConfig};
use end_user_mapping::netmodel::{Internet, InternetConfig};
use end_user_mapping::stats::Table;

fn main() {
    let net = Internet::generate(InternetConfig::small(0x5EED));
    let cfg = StudyConfig {
        seed: 0x5EED,
        universe_size: 800,
        ping_targets: 800,
        target_cover_miles: 60.0,
        deployment_counts: vec![40, 80, 160, 320, 640],
        runs: 12,
    };
    eprintln!(
        "universe of {} candidate locations, {} ping targets, {} random orderings…",
        cfg.universe_size, cfg.ping_targets, cfg.runs
    );
    let rows = run_study(&net, &cfg);

    let mut t = Table::new(["deployments", "scheme", "mean ms", "p95 ms", "p99 ms"]);
    for row in &rows {
        t.row([
            row.deployments.to_string(),
            row.scheme.label().to_string(),
            format!("{:.1}", row.mean_ms),
            format!("{:.1}", row.p95_ms),
            format!("{:.1}", row.p99_ms),
        ]);
    }
    println!("{t}");

    // The paper's two key readings of the figure.
    let max_n = rows.iter().map(|r| r.deployments).max().unwrap();
    let min_n = rows.iter().map(|r| r.deployments).min().unwrap();
    let p99 = |s: Scheme, n: usize| {
        rows.iter()
            .find(|r| r.scheme == s && r.deployments == n)
            .unwrap()
            .p99_ms
    };
    println!(
        "EU-over-NS p99 gain: {:.1} ms at {} locations vs {:.1} ms at {} locations",
        p99(Scheme::Ns, min_n) - p99(Scheme::Eu, min_n),
        min_n,
        p99(Scheme::Ns, max_n) - p99(Scheme::Eu, max_n),
        max_n,
    );
    println!(
        "NS p99 improves only {:.1} ms from {}x more deployments ({:.1} -> {:.1} ms) — \
         the paper's 'NS-based mapping provides diminishing benefits' result",
        p99(Scheme::Ns, min_n) - p99(Scheme::Ns, max_n),
        max_n / min_n,
        p99(Scheme::Ns, min_n),
        p99(Scheme::Ns, max_n),
    );
}
