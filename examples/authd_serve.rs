//! Runs the eum-authd serving subsystem end to end: a sharded
//! authoritative server answering wire-format queries from the closed-loop
//! load generator, over both transports.
//!
//!     cargo run --release --example authd_serve
//!
//! Prints throughput, p50/p99 latency, and answer-cache hit rate for
//! several shard/cache configurations on the in-process channel transport,
//! then repeats over loopback UDP sockets, and finally demonstrates a
//! mid-run map-generation swap. Shard counts above the machine's core
//! count time-slice rather than parallelize; the absolute q/s numbers are
//! whatever the hardware gives.

use eum_authd::loadgen::{self, LoadGenConfig};
use eum_authd::{
    channel_transports, AuthServer, ChannelClient, ServerConfig, SnapshotHandle, UdpClient,
    UdpTransport,
};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_netmodel::{Internet, InternetConfig};
use std::net::Ipv4Addr;
use std::time::Duration;

const SEED: u64 = 0x5E87;

fn world() -> (Internet, ContentCatalog, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, catalog, map)
}

fn loadgen_cfg() -> LoadGenConfig {
    LoadGenConfig {
        clients: 4,
        queries_per_client: 5_000,
        no_ecs_fraction: 0.1,
        timeout: Duration::from_secs(5),
        seed: SEED,
    }
}

fn report_line(label: &str, report: &loadgen::LoadReport, reports: &[eum_authd::ShardReport]) {
    let hits: u64 = reports.iter().map(|r| r.cache.hits).sum();
    let queries: u64 = reports.iter().map(|r| r.queries).sum();
    let hit_rate = if queries == 0 {
        0.0
    } else {
        hits as f64 / queries as f64
    };
    println!(
        "{label:<34} {:>9.0} q/s   p50 {:>7.1} µs   p99 {:>7.1} µs   cache hit {:>5.1}%   ok {} err {} bad {}",
        report.qps(),
        report.p50_us(),
        report.p99_us(),
        100.0 * hit_rate,
        report.ok,
        report.transport_errors,
        report.bad_responses,
    );
}

fn run_channel(
    label: &str,
    snapshots: &SnapshotHandle,
    net: &Internet,
    catalog: &ContentCatalog,
    low: Ipv4Addr,
    shards: usize,
    cached: bool,
) {
    let (transports, connector) = channel_transports(shards);
    let cfg = if cached {
        ServerConfig::new(low)
    } else {
        ServerConfig::new(low).without_cache()
    };
    let server = AuthServer::spawn(transports, snapshots.clone(), cfg);
    let report = loadgen::run(net, catalog, low, &loadgen_cfg(), |_| {
        ChannelClient::new(connector.clone())
    });
    let shard_reports = server.stop_join();
    report_line(label, &report, &shard_reports);
}

fn run_udp(
    label: &str,
    snapshots: &SnapshotHandle,
    net: &Internet,
    catalog: &ContentCatalog,
    low: Ipv4Addr,
    shards: usize,
    publish_mid_run: Option<MappingSystem>,
) {
    let mut transports = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..shards {
        let t = UdpTransport::bind().expect("bind loopback socket");
        addrs.push(t.local_addr().expect("local addr"));
        transports.push(t);
    }
    let server = AuthServer::spawn(transports, snapshots.clone(), ServerConfig::new(low));
    let publisher = publish_mid_run.map(|map2| {
        let snapshots = snapshots.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            snapshots.publish(map2)
        })
    });
    let report = loadgen::run(net, catalog, low, &loadgen_cfg(), |_| {
        UdpClient::connect(addrs.clone()).expect("bind client socket")
    });
    if let Some(p) = publisher {
        let generation = p.join().expect("publisher thread");
        println!("  (published map generation {generation} mid-run)");
    }
    let shard_reports = server.stop_join();
    report_line(label, &report, &shard_reports);
    let swaps: u64 = shard_reports.iter().map(|r| r.generations_seen).sum();
    if swaps > shard_reports.len() as u64 {
        println!(
            "  shards observed {} generation states across {} shards — zero errors during the swap",
            swaps,
            shard_reports.len()
        );
    }
}

fn main() {
    let (net, catalog, map) = world();
    let low = map.ns_ips()[1];
    println!(
        "world: {} client blocks, {} resolvers, {} domains; serving NS {low}\n",
        net.blocks.len(),
        net.resolvers.len(),
        catalog.domains.len(),
    );
    let snapshots = SnapshotHandle::new(map);

    println!("in-process channel transport:");
    run_channel(
        "  1 shard, cache on",
        &snapshots,
        &net,
        &catalog,
        low,
        1,
        true,
    );
    run_channel(
        "  4 shards, cache on",
        &snapshots,
        &net,
        &catalog,
        low,
        4,
        true,
    );
    run_channel(
        "  4 shards, cache off",
        &snapshots,
        &net,
        &catalog,
        low,
        4,
        false,
    );

    println!("\nloopback UDP transport:");
    run_udp(
        "  2 shards, cache on",
        &snapshots,
        &net,
        &catalog,
        low,
        2,
        None,
    );

    // A second generation (same world, rebuilt map) published while the
    // load generator is mid-flight: the serving plane never pauses.
    let (_, _, map2) = world();
    println!("\nloopback UDP with a mid-run snapshot swap:");
    run_udp(
        "  2 shards, cache on, swap",
        &snapshots,
        &net,
        &catalog,
        low,
        2,
        Some(map2),
    );
}
