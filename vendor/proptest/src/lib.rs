//! Offline stub of `proptest`.
//!
//! The build environment has no crates.io access, so this reimplements the
//! subset of proptest the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`, `any::<T>()`, numeric-range strategies, tuple
//! strategies, regex-character-class string strategies (`"[a-z0-9]{1,12}"`
//! style), [`collection::vec`], [`option::of`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs via the panic
//!   message of the assertion that tripped, but is not minimized;
//! * **deterministic seeding** — each test derives its RNG seed from its
//!   own name, so runs are reproducible without a persistence file. Set
//!   `PROPTEST_SEED=<u64>` to perturb every test's stream at once;
//! * fixed case count (256 per test, `PROPTEST_CASES` to override).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The per-test RNG: SplitMix64 (deterministic, seedable, fast).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a deterministic RNG from a test identifier.
    pub fn deterministic(name: &str) -> TestRng {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            extra.hash(&mut h);
        }
        TestRng { state: h.finish() }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (widening multiply).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty draw");
        (((self.next_u64() as u128).wrapping_mul(bound as u128)) >> 64) as u64
    }

    /// Uniform unit-interval draw.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Number of cases each `proptest!` test runs.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates from this strategy, then from the one `f` returns —
    /// dependent generation.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `f` (resamples, bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: the full domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Finite doubles spanning a wide magnitude range.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = rng.below(601) as i32 - 300;
        m * (2f64).powi(e)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A parsed regex-lite pattern: each atom is a char set with a repeat
/// range. Supports exactly the syntax the tests use: literal characters
/// and `[...]` classes (with `a-z` ranges), each optionally followed by
/// `{n}` or `{m,n}`.
#[derive(Debug, Clone)]
struct CharsetSeq {
    atoms: Vec<(Vec<char>, usize, usize)>,
}

fn parse_pattern(pat: &str) -> CharsetSeq {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let set: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| p + i)
                .unwrap_or_else(|| panic!("unterminated class in pattern {pat:?}"));
            let inner = &chars[i + 1..close];
            i = close + 1;
            let mut set = Vec::new();
            let mut j = 0;
            while j < inner.len() {
                if j + 2 < inner.len() && inner[j + 1] == '-' {
                    let (lo, hi) = (inner[j], inner[j + 2]);
                    assert!(lo <= hi, "bad range in class: {pat:?}");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(inner[j]);
                    j += 1;
                }
            }
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional {n} / {m,n} repetition.
        let (mut lo, mut hi) = (1usize, 1usize);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .unwrap_or_else(|| panic!("unterminated repeat in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            if let Some((a, b)) = body.split_once(',') {
                lo = a.trim().parse().expect("repeat lower bound");
                hi = b.trim().parse().expect("repeat upper bound");
            } else {
                lo = body.trim().parse().expect("repeat count");
                hi = lo;
            }
        }
        assert!(lo <= hi && !set.is_empty(), "bad atom in pattern {pat:?}");
        atoms.push((set, lo, hi));
    }
    CharsetSeq { atoms }
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let seq = parse_pattern(self);
        let mut out = String::new();
        for (set, lo, hi) in &seq.atoms {
            let n = *lo + rng.below((*hi - *lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(set[rng.below(set.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for [`vec`]: a fixed count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// `Option<T>` that is `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Runs `cases()` samples of a property. The macro front-end for tests.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..$crate::cases() {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Property assertion (no shrinking: plain assert with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The glob import tests use.
pub mod prelude {
    pub use crate::{
        any, cases, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Just, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_lite_patterns_generate_in_class() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z0-9]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let t = Strategy::sample(&"[a-z0-9_-]{1,20}", &mut rng);
            assert!((1..=20).contains(&t.len()));
            assert!(t
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
        }
    }

    proptest! {
        #[test]
        fn macro_front_end_works(
            v in crate::collection::vec((any::<u32>(), 0u8..=32), 0..10),
            x in -1e5f64..1e5,
            o in crate::option::of(1u32..5),
        ) {
            prop_assert!(v.len() < 10);
            for (_, len) in &v { prop_assert!(*len <= 32); }
            prop_assert!((-1e5..1e5).contains(&x));
            if let Some(o) = o { prop_assert!((1..5).contains(&o)); }
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (0u32..10, 0u8..=4).prop_map(|(a, b)| a as u64 + b as u64);
        let mut rng = TestRng::deterministic("compose");
        for _ in 0..100 {
            assert!(strat.sample(&mut rng) < 14);
        }
    }
}
