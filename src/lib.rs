#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # end-user-mapping
//!
//! A full-system Rust reproduction of *"End-User Mapping: Next Generation
//! Request Routing for Content Delivery"* (Chen, Sitaraman, Torres —
//! SIGCOMM 2015).
//!
//! This facade crate re-exports every workspace crate under one roof so that
//! examples, integration tests, and downstream users can depend on a single
//! package:
//!
//! * [`geo`] — geographic primitives and the Edgescape-style geolocation DB.
//! * [`stats`] — weighted quantiles, histograms, CDFs, and table rendering.
//! * [`netmodel`] — the seeded synthetic Internet (ASes, client blocks,
//!   resolver infrastructure, anycast, BGP, latency/loss model).
//! * [`dns`] — DNS wire protocol with EDNS0 Client Subnet (RFC 7871), an
//!   ECS-aware recursive resolver, and authority traits.
//! * [`cdn`] — the CDN platform model (deployments, clusters, caches,
//!   origin/overlay, TCP transfer model).
//! * [`mapping`] — the paper's contribution: the mapping system with
//!   NS-based, end-user, and client-aware-NS policies.
//! * [`sim`] — discrete-event simulation, workload, NetSession and RUM
//!   measurement substrates, and the §4 roll-out scenario.
//! * [`authd`] — the concurrent authoritative DNS serving subsystem
//!   (sharded server, ECS-aware answer cache, closed-loop load generator).
//! * [`ldns`] — the recursive-resolver fleet: ECS-partitioned caching
//!   LDNS instances that close the client→LDNS→authoritative loop and
//!   measure DNS amplification.
//! * [`telemetry`] — the lock-free metrics registry, latency histograms,
//!   per-query trace ring, and Prometheus-style text exposition wired
//!   through the serving path.
//! * [`chaos`] — the adversarial workload engine: seeded attack
//!   scenarios (NXDOMAIN floods, flash crowds, site outages, ECS flips,
//!   cache pressure) replayed live against the serving stack with
//!   defenses off versus on.
//!
//! ## Quickstart
//!
//! ```no_run
//! use end_user_mapping::sim::scenario::{Scenario, ScenarioConfig};
//!
//! let scenario = Scenario::build(ScenarioConfig::small(0x5EED));
//! let report = scenario.run_rollout();
//! println!("{}", report.summary());
//! ```
//!
//! See `examples/quickstart.rs` for a guided tour and `crates/repro` for the
//! binaries that regenerate every figure in the paper.

pub use eum_authd as authd;
pub use eum_cdn as cdn;
pub use eum_chaos as chaos;
pub use eum_dns as dns;
pub use eum_geo as geo;
pub use eum_ldns as ldns;
pub use eum_mapping as mapping;
pub use eum_netmodel as netmodel;
pub use eum_sim as sim;
pub use eum_stats as stats;
pub use eum_telemetry as telemetry;
