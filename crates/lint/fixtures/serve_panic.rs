// Fixture for the serve-panic rule.

fn violating(v: Option<u32>) -> u32 {
    v.unwrap() // line 4: fires serve-panic
}

fn violating_macro(v: Option<u32>) -> u32 {
    match v {
        Some(x) => x,
        None => panic!("no value"), // line 10: fires serve-panic
    }
}

fn justified(v: Option<u32>) -> u32 {
    // lint: allow(serve-panic) — v is Some by construction two lines up
    v.expect("set above")
}

fn clean(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}
