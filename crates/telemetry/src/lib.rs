//! eum-telemetry: the workspace's observability layer.
//!
//! The paper's roll-out is a *monitored* one — Akamai watched DNS query
//! amplification, mapping-unit growth, cache-hit-ratio shifts, and
//! per-query latency percentiles continuously while flipping resolvers to
//! ECS (§§6–8). This crate is the measurement substrate that lets the
//! reproduction see the same quantities while serving, without adding a
//! single lock to the per-query hot path:
//!
//! - [`metrics`] — [`Counter`] and [`Gauge`]: single relaxed atomics.
//! - [`hist`] — [`Histogram`]: log-bucketed latency histograms with
//!   per-shard stripes (each stripe its own allocation, so concurrent
//!   recorders never share a cache line), cheap [`HistogramSnapshot`]
//!   extraction, exact merge, and bounded-relative-error quantiles.
//! - [`registry`] — [`Registry`]: named metric families with labels and
//!   Prometheus-style text exposition via [`Registry::render_text`].
//!   Registration takes a short internal lock; the returned handles are
//!   `Arc`s touched with `&self` atomics only.
//! - [`trace`] — [`TraceRing`]: a bounded, lock-free ring of sampled
//!   [`QueryTrace`] events (per-stage nanosecond timings, generation, ECS
//!   scope, shard, propagated trace id + hop) dumpable on demand, with a
//!   runtime-adjustable sampling rate.
//! - [`span`] — [`stitch`](span::stitch): joins per-layer trace rings
//!   into end-to-end [`QuerySpan`] hop timelines via the propagated id.
//! - [`timeseries`] — [`WindowCapturer`]: snapshots the registry at a
//!   fixed cadence, diffs captures into per-window counter deltas and
//!   bucket-diff histogram quantiles, and retains a bounded JSONL-able
//!   ring of windows.
//! - [`report`] — [`Reporter`]: a periodic background thread driving any
//!   reporting closure (typically one that renders the registry or
//!   drives a [`WindowCapturer`]).
//!
//! # Metric naming conventions
//!
//! Every metric this workspace registers follows these rules, which all
//! future subsystems should keep to:
//!
//! - names are `eum_<crate>_<subsystem>_<quantity>`, lowercase snake case;
//! - monotone counters end in `_total`; gauges carry no suffix;
//! - histograms carry a unit suffix (`_ns` for nanoseconds — the
//!   workspace measures latencies in integer nanoseconds);
//! - per-shard series use a `shard="<idx>"` label so the hot path owns its
//!   series outright and cross-shard aggregation happens at read time;
//! - low-cardinality dimensions (cache table, answer path, traffic
//!   window) are labels; unbounded dimensions (client IPs, domain names)
//!   are never labels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Atomics import surface for this crate's audited lock-free files
/// (`trace.rs`, `metrics.rs`, `hist.rs`): the eum-mcheck virtual-atomics
/// facade — a verbatim `std::sync::atomic` re-export in production
/// builds, the modeled checker primitives under `--cfg eum_mcheck`.
/// Model tests re-bind the same source files against
/// `eum_mcheck::modeled` by `#[path]`-including them next to a local
/// `msync` alias (see `tests/trace_stress.rs`).
pub(crate) mod msync {
    pub use eum_mcheck::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
}

pub mod hist;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge};
pub use registry::{MetricKind, Registry, SampleValue, SeriesSample};
pub use report::Reporter;
pub use span::QuerySpan;
pub use timeseries::{Window, WindowCapturer, WindowRow, WindowValue};
pub use trace::{QueryTrace, TraceHop, TraceOutcome, TraceRing};

/// Name of the gauge mirroring a [`TraceRing`]'s 1-in-N sampling rate.
pub const TRACE_SAMPLE_RATE_GAUGE: &str = "eum_trace_sample_rate";

/// Registers (or refreshes) the `eum_trace_sample_rate` gauge from
/// `ring`'s current rate, so span stitching can correct sampled counts.
/// Call it again after [`TraceRing::set_sample_every`].
pub fn export_trace_sample_rate(registry: &Registry, ring: &TraceRing) {
    registry
        .gauge(
            TRACE_SAMPLE_RATE_GAUGE,
            "1-in-N trace sampling rate currently applied to the trace ring (0: disabled)",
            &[],
        )
        .set(ring.sample_every() as f64);
}
