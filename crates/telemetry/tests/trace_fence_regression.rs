//! PR 4 regression, model-checked: re-introduce the missing `Release`
//! fence in `TraceRing::push` and prove the checker catches it.
//!
//! PR 4's review found `push` publishing the odd sequence marker without
//! a release fence before the relaxed word stores; on weakly-ordered
//! hardware the words could float above the marker and a reader could
//! accept a torn record whose re-checked sequence never changed. The
//! fix was `fence(Ordering::Release)` between the marker and the words.
//!
//! This binary compiles the *real* `src/trace.rs` — the same source
//! text the crate ships — against an `msync` surface whose `fence`
//! swallows `Release` fences. That is exactly the buggy program: same
//! code, fence gone. The model checker must find a torn-record
//! interleaving and print the minimized schedule; if it ever stops
//! failing here, the checker lost the sensitivity the audited files
//! rely on.
//!
//! This lives in its own test binary (not `trace_stress.rs`) because
//! the whole binary shares one `crate::msync`, and the passing model
//! tests need the honest fence.

use eum_mcheck as mcheck;
use std::sync::Arc;

mod msync {
    pub use eum_mcheck::modeled::AtomicU64;
    pub use std::sync::atomic::Ordering;

    /// The PR 4 bug, re-introduced at the import surface: `Release`
    /// fences compile to nothing, as if `TraceRing::push` had never
    /// gained the fence between the odd marker and the word stores.
    /// `Acquire` fences stay real so the failure is attributable to the
    /// writer side alone.
    pub fn fence(ord: Ordering) {
        if ord == Ordering::Release {
            return;
        }
        eum_mcheck::modeled::fence(ord);
    }
}

#[path = "../src/trace.rs"]
#[allow(dead_code)]
mod trace_model;

/// Same detectable-mix construction as `trace_stress.rs`.
fn model_trace(i: u32) -> trace_model::QueryTrace {
    trace_model::QueryTrace {
        seq: 0,
        trace_id: 0xA000_0000 | i,
        hop: trace_model::TraceHop::Authd,
        shard: i as u16,
        generation: 100 + i as u64,
        ecs_scope: Some(i as u8),
        outcome: trace_model::TraceOutcome::Computed,
        truncated: false,
        decode_ns: i,
        cache_ns: 1000 + i,
        route_ns: 2000 + i,
        encode_ns: 3000 + i,
        total_ns: 4000 + i,
    }
}

fn model_consistent(t: &trace_model::QueryTrace) -> bool {
    let want = trace_model::QueryTrace {
        seq: t.seq,
        ..model_trace(t.decode_ns)
    };
    *t == want && t.seq == t.decode_ns as u64
}

/// The exact scenario `model_no_torn_record_is_ever_observable` passes
/// with the honest fence must *fail* without it — and the failure
/// report must carry a concrete interleaving an engineer can replay.
#[test]
fn missing_release_fence_is_caught_with_a_printed_schedule() {
    let cfg = mcheck::Config::bounded(2, 2_000_000);
    let failure = mcheck::expect_failure("trace-ring-missing-release-fence", &cfg, || {
        let ring = Arc::new(trace_model::TraceRing::new(1));
        let writer = {
            let ring = ring.clone();
            mcheck::spawn(move || {
                ring.push(&model_trace(0));
                ring.push(&model_trace(1));
            })
        };
        for t in ring.dump() {
            assert!(model_consistent(&t), "torn trace record accepted: {t:?}");
        }
        writer.join();
    });
    assert!(
        failure.message.contains("torn trace record"),
        "failure must be the torn-record assertion, got: {}",
        failure.message
    );
    assert!(
        !failure.schedule.is_empty(),
        "failure report must print the interleaving"
    );
    // The torn read is a stale-store choice; the rendered schedule marks
    // those, so the trace explains *why* the record tore.
    assert!(
        failure.schedule.contains("STALE"),
        "schedule should mark the stale load:\n{}",
        failure.schedule
    );
    eprintln!("minimized failing interleaving (expected, regression guard):\n{failure}");
}
