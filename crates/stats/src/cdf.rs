//! Weighted empirical CDFs.
//!
//! Used for the paper's cumulative views: Figure 11 (cluster radius /
//! client–LDNS distance), Figures 14/16/18/20 (before/after roll-out), and
//! Figures 21/22a (demand coverage and radius per prefix length).

use crate::WeightedSample;
use serde::{Deserialize, Serialize};

/// An immutable weighted empirical CDF built from a [`WeightedSample`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    /// Sorted (value, cumulative weight) steps; cumulative weight is
    /// strictly increasing and ends at `total`.
    steps: Vec<(f64, f64)>,
    total: f64,
}

impl Cdf {
    /// Builds a CDF from a sample. Returns `None` when the sample is empty.
    pub fn from_sample(sample: &WeightedSample) -> Option<Cdf> {
        if sample.is_empty() {
            return None;
        }
        let mut pairs: Vec<(f64, f64)> = sample.pairs().to_vec();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
        let mut steps: Vec<(f64, f64)> = Vec::with_capacity(pairs.len());
        let mut cum = 0.0;
        for (v, w) in pairs {
            cum += w;
            match steps.last_mut() {
                // Merge equal values into one step.
                Some(last) if last.0 == v => last.1 = cum,
                _ => steps.push((v, cum)),
            }
        }
        let total = cum;
        Some(Cdf { steps, total })
    }

    /// Builds directly from `(value, weight)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> Option<Cdf> {
        let sample: WeightedSample = pairs.into_iter().collect();
        Cdf::from_sample(&sample)
    }

    /// Total weight.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Fraction (0..=1) of weight at values `≤ x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        // Binary search for the last step with value <= x.
        let idx = self.steps.partition_point(|(v, _)| *v <= x);
        if idx == 0 {
            0.0
        } else {
            self.steps[idx - 1].1 / self.total
        }
    }

    /// Percent (0..=100) of weight at values `≤ x`.
    pub fn percent_at(&self, x: f64) -> f64 {
        100.0 * self.fraction_at(x)
    }

    /// Inverse CDF: smallest value with cumulative fraction `≥ q`.
    pub fn value_at(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total;
        let idx = self.steps.partition_point(|(_, c)| *c < target - 1e-12);
        self.steps[idx.min(self.steps.len() - 1)].0
    }

    /// Samples the CDF at `n` evenly spaced quantiles (for plotting): the
    /// returned pairs are `(value, percent ≤ value)`.
    pub fn percentile_series(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least 2 points");
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1) as f64;
                (self.value_at(q), 100.0 * q)
            })
            .collect()
    }

    /// The distinct step values (sorted ascending).
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.steps.iter().map(|(v, _)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Cdf {
        Cdf::from_pairs([(1.0, 1.0), (2.0, 1.0), (3.0, 2.0)]).unwrap()
    }

    #[test]
    fn empty_sample_gives_none() {
        assert!(Cdf::from_sample(&WeightedSample::new()).is_none());
    }

    #[test]
    fn fraction_at_steps() {
        let c = simple();
        assert_eq!(c.fraction_at(0.5), 0.0);
        assert_eq!(c.fraction_at(1.0), 0.25);
        assert_eq!(c.fraction_at(2.5), 0.5);
        assert_eq!(c.fraction_at(3.0), 1.0);
        assert_eq!(c.fraction_at(99.0), 1.0);
    }

    #[test]
    fn value_at_inverts() {
        let c = simple();
        assert_eq!(c.value_at(0.0), 1.0);
        assert_eq!(c.value_at(0.25), 1.0);
        assert_eq!(c.value_at(0.26), 2.0);
        assert_eq!(c.value_at(0.5), 2.0);
        assert_eq!(c.value_at(0.51), 3.0);
        assert_eq!(c.value_at(1.0), 3.0);
    }

    #[test]
    fn equal_values_merge_into_one_step() {
        let c = Cdf::from_pairs([(5.0, 1.0), (5.0, 3.0)]).unwrap();
        assert_eq!(c.values().count(), 1);
        assert_eq!(c.fraction_at(5.0), 1.0);
    }

    #[test]
    fn percentile_series_is_monotone() {
        let c = Cdf::from_pairs((0..100).map(|i| (i as f64, 1.0))).unwrap();
        let series = c.percentile_series(11);
        assert_eq!(series.len(), 11);
        for w in series.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(series[0].1, 0.0);
        assert_eq!(series[10].1, 100.0);
    }

    #[test]
    fn round_trip_fraction_value() {
        let c = simple();
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let v = c.value_at(q);
            assert!(c.fraction_at(v) + 1e-12 >= q, "q={q} v={v}");
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// fraction_at is a monotone non-decreasing step function from 0 to 1.
        #[test]
        fn cdf_is_monotone(
            pairs in proptest::collection::vec((-1e5f64..1e5, 0.01f64..10.0), 1..60),
            probes in proptest::collection::vec(-2e5f64..2e5, 2..20),
        ) {
            let c = Cdf::from_pairs(pairs).unwrap();
            let mut sorted = probes;
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = 0.0;
            for x in sorted {
                let f = c.fraction_at(x);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
                prop_assert!(f + 1e-12 >= prev);
                prev = f;
            }
        }

        /// value_at(fraction_at(v)) never exceeds v for values in the support.
        #[test]
        fn inverse_consistency(
            pairs in proptest::collection::vec((-1e5f64..1e5, 0.01f64..10.0), 1..60),
        ) {
            let c = Cdf::from_pairs(pairs).unwrap();
            for v in c.values().collect::<Vec<_>>() {
                let q = c.fraction_at(v);
                prop_assert!(c.value_at(q) <= v + 1e-9);
            }
        }
    }
}
