//! CDN deployments: clusters of servers placed around the world.
//!
//! "Akamai's CDN achieves its goal by deploying a large number of servers
//! in hundreds of data centers around the world, so as to be 'proximal' in
//! a network sense to clients" (§1). A [`Cluster`] is one deployment
//! location (the paper's §6 universe has 2642 of them); each holds a rack
//! of [`Server`]s with LRU content caches.

use crate::content::ContentId;
use crate::lru::LruSet;
use eum_geo::{Asn, Country, GeoPoint, Prefix};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use std::ops::Range;

/// Index of a cluster (deployment location).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// The index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

impl ServerId {
    /// The index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A candidate deployment location.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentSite {
    /// Human-readable site name (city + ordinal).
    pub name: String,
    /// Location.
    pub loc: GeoPoint,
    /// Country.
    pub country: Country,
}

/// Builds a universe of candidate deployment sites, mirroring §6's
/// methodology ("a universe U of possible deployment locations by using
/// 2642 different locations around the globe … chosen to provide good
/// coverage of the global Internet").
///
/// Sites are scattered around gazetteer cities proportionally to city
/// weight until `n` sites exist. Deterministic in `seed`.
pub fn deployment_universe(seed: u64, n: usize) -> Vec<DeploymentSite> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0xDE_9107);
    let mut cities: Vec<&eum_geo::City> = eum_geo::GAZETTEER.iter().collect();
    // Heaviest cities first, so small deployments still sit where demand is.
    cities.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));
    let total_weight: f64 = cities.iter().map(|c| c.weight).sum();
    let mut sites = Vec::with_capacity(n);
    // First pass: guarantee every city hosts at least one site (coverage),
    // then fill the remainder weighted.
    for city in &cities {
        if sites.len() >= n {
            break;
        }
        sites.push(DeploymentSite {
            name: format!("{}-0", city.name),
            loc: city.point(),
            country: city.country,
        });
    }
    let mut per_city_count: Vec<usize> = vec![1; cities.len()];
    while sites.len() < n {
        // Weighted city choice.
        let mut r = rng.random_range(0.0..total_weight);
        let mut idx = 0;
        for (i, c) in cities.iter().enumerate() {
            r -= c.weight;
            if r <= 0.0 {
                idx = i;
                break;
            }
        }
        let city = &cities[idx];
        let ord = per_city_count[idx];
        per_city_count[idx] += 1;
        // Additional sites sit at nearby interconnection points.
        let dist = rng.random_range(2.0..40.0);
        let theta: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        sites.push(DeploymentSite {
            name: format!("{}-{}", city.name, ord),
            loc: city
                .point()
                .offset_miles(dist * theta.sin(), dist * theta.cos()),
            country: city.country,
        });
    }
    sites
}

/// One deployment location with its servers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    /// Arena index.
    pub id: ClusterId,
    /// Site name.
    pub name: String,
    /// Location.
    pub loc: GeoPoint,
    /// Country.
    pub country: Country,
    /// The CDN AS announcing this cluster's prefix.
    pub asn: Asn,
    /// The cluster's /24.
    pub prefix: Prefix,
    /// Serving capacity in demand units (global LB constraint).
    pub capacity: f64,
    /// Index range of this cluster's servers in the server arena.
    pub servers: Range<u32>,
    /// Liveness flag (failure injection flips this).
    pub alive: bool,
}

impl Cluster {
    /// Iterates the cluster's server IDs.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> {
        self.servers.clone().map(ServerId)
    }
}

/// One edge server.
#[derive(Debug, Clone)]
pub struct Server {
    /// Arena index.
    pub id: ServerId,
    /// Owning cluster.
    pub cluster: ClusterId,
    /// Serving IP.
    pub ip: Ipv4Addr,
    /// Content cache.
    pub cache: LruSet<ContentId>,
    /// Liveness flag.
    pub alive: bool,
    /// Requests served (diagnostics).
    pub requests: u64,
    /// Cache hits (diagnostics).
    pub hits: u64,
}

impl Server {
    /// Serves one request for `content`: returns `true` on cache hit.
    /// A miss inserts the object (fetch-on-miss), evicting LRU content.
    pub fn serve(&mut self, content: ContentId, cacheable: bool) -> bool {
        self.requests += 1;
        if !cacheable {
            return false;
        }
        if self.cache.touch(&content) {
            self.hits += 1;
            true
        } else {
            self.cache.insert(content);
            false
        }
    }

    /// Observed cache hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_is_deterministic_and_sized() {
        let a = deployment_universe(1, 500);
        let b = deployment_universe(1, 500);
        assert_eq!(a.len(), 500);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn universe_covers_every_country_first() {
        let sites = deployment_universe(2, eum_geo::GAZETTEER.len());
        let countries: std::collections::BTreeSet<_> = sites.iter().map(|s| s.country).collect();
        assert_eq!(countries.len(), eum_geo::Country::ALL.len());
    }

    #[test]
    fn universe_site_names_are_unique() {
        let sites = deployment_universe(3, 2642);
        let mut names: Vec<_> = sites.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 2642);
    }

    #[test]
    fn big_cities_host_more_sites() {
        let sites = deployment_universe(4, 2000);
        let count = |city: &str| sites.iter().filter(|s| s.name.starts_with(city)).count();
        assert!(count("New York") > count("Chiang Mai"));
    }

    #[test]
    fn server_serve_tracks_hits() {
        let mut s = Server {
            id: ServerId(0),
            cluster: ClusterId(0),
            ip: "96.0.0.10".parse().unwrap(),
            cache: LruSet::new(4),
            alive: true,
            requests: 0,
            hits: 0,
        };
        let c = ContentId {
            domain: 0,
            object: 1,
        };
        assert!(!s.serve(c, true), "first request is a miss");
        assert!(s.serve(c, true), "second request hits");
        assert!(!s.serve(c, false), "uncacheable never hits");
        assert_eq!(s.requests, 3);
        assert_eq!(s.hits, 1);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
