//! The metric registry and its Prometheus-style text exposition.
//!
//! A [`Registry`] owns named metric *families*; each family has a kind
//! (counter, gauge, histogram), a help string, and one series per label
//! set. Registration (`counter` / `gauge` / `histogram`) takes a short
//! internal mutex and is idempotent — asking for an existing
//! `(name, labels)` pair returns the same handle — so subsystems can be
//! wired independently against one shared registry. The handles are
//! `Arc`s backed purely by atomics: once a shard holds its handles, the
//! per-query path never touches the registry again, and never takes a
//! lock.
//!
//! [`Registry::render_text`] emits the classic text exposition format:
//! one `# HELP` and one `# TYPE` line per family, then one sample line
//! per series, families sorted by name and series by label value, so the
//! output is stable for golden-file tests and scrapable by standard
//! tooling. Histograms render cumulative `_bucket{le="…"}` series for
//! their non-empty buckets (upper edges are exclusive), plus `_sum`,
//! `_count`, and a final `le="+Inf"` bucket.

use crate::hist::Histogram;
use crate::metrics::{format_value, Counter, Gauge};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter (`_total` names).
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Log-bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One series' point-in-time value inside a [`Registry::sample`].
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// A counter's cumulative count.
    Counter(u64),
    /// A gauge's current value.
    Gauge(f64),
    /// A histogram's merged snapshot.
    Histogram(crate::hist::HistogramSnapshot),
}

/// One `(family, label set)` pair captured by [`Registry::sample`].
#[derive(Debug, Clone)]
pub struct SeriesSample {
    /// The family name (e.g. `eum_authd_queries_total`).
    pub name: String,
    /// The rendered label string (e.g. `{shard="0"}`, empty for none).
    pub labels: String,
    /// The captured value.
    pub value: SampleValue,
}

#[derive(Clone)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    kind: MetricKind,
    help: String,
    /// Rendered label string (e.g. `{shard="0"}`) → series, sorted for
    /// stable exposition.
    series: BTreeMap<String, Series>,
}

/// A registry of named metric families.
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.families.lock().expect("registry poisoned").len();
        f.debug_struct("Registry").field("families", &n).finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            families: Mutex::new(BTreeMap::new()),
        }
    }
}

/// `[a-zA-Z_][a-zA-Z0-9_]*` — metric and label names.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Renders a label set as `{k="v",…}` (empty string for no labels),
/// escaping `\`, `"`, and newlines in values.
fn label_string(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        assert!(valid_name(k), "invalid label name {k:?}");
        if i > 0 {
            out.push(',');
        }
        let escaped = v
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    out.push('}');
    out
}

/// Splices extra labels (e.g. `le`) into an already-rendered label string.
fn with_extra_label(labels: &str, key: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        format!("{},{key}=\"{value}\"}}", &labels[..labels.len() - 1])
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Series,
        unwrap: impl Fn(&Series) -> Option<Arc<T>>,
    ) -> Arc<T> {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let key = label_string(labels);
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} registered as {:?}, requested as {kind:?}",
            family.kind
        );
        let series = family.series.entry(key).or_insert_with(make);
        unwrap(series)
            .unwrap_or_else(|| unreachable!("family kind checked above; series kind cannot differ"))
    }

    /// Gets or creates a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Counter,
            || Series::Counter(Arc::new(Counter::new())),
            |s| match s {
                Series::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Gets or creates a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Gauge,
            || Series::Gauge(Arc::new(Gauge::new())),
            |s| match s {
                Series::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Gets or creates a single-stripe histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_striped(name, help, labels, 1)
    }

    /// Gets or creates a histogram series with `stripes` stripes (the
    /// stripe count of an existing series is left as it was).
    pub fn histogram_striped(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        stripes: usize,
    ) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Histogram,
            || Series::Histogram(Arc::new(Histogram::striped(stripes))),
            |s| match s {
                Series::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// A structured point-in-time capture of every series: one
    /// [`SeriesSample`] per `(family, label set)`, families and series in
    /// render order. This is what the window capturer diffs against its
    /// previous capture; it allocates and briefly holds the registration
    /// mutex, so it belongs on the Reporter/scrape threads, never the
    /// per-query path.
    pub fn sample(&self) -> Vec<SeriesSample> {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (labels, series) in &family.series {
                out.push(SeriesSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: match series {
                        Series::Counter(c) => SampleValue::Counter(c.get()),
                        Series::Gauge(g) => SampleValue::Gauge(g.get()),
                        Series::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                    },
                });
            }
        }
        out
    }

    /// Family names currently registered (sorted).
    pub fn family_names(&self) -> Vec<String> {
        self.families
            .lock()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Renders every family in the Prometheus text exposition format.
    pub fn render_text(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", format_value(g.get()));
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        for (le, cum) in snap.cumulative_buckets() {
                            let lab = with_extra_label(labels, "le", &format_value(le));
                            let _ = writeln!(out, "{name}_bucket{lab} {cum}");
                        }
                        let lab = with_extra_label(labels, "le", "+Inf");
                        let _ = writeln!(out, "{name}_bucket{lab} {}", snap.count());
                        let _ = writeln!(out, "{name}_sum{labels} {}", snap.sum());
                        let _ = writeln!(out, "{name}_count{labels} {}", snap.count());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("eum_test_total", "help", &[("shard", "0")]);
        let b = reg.counter("eum_test_total", "help", &[("shard", "0")]);
        a.inc();
        assert_eq!(b.get(), 1, "same (name, labels) must share the series");
        let other = reg.counter("eum_test_total", "help", &[("shard", "1")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("eum_test_total", "help", &[]);
        let _ = reg.gauge("eum_test_total", "help", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_rejected() {
        let reg = Registry::new();
        let _ = reg.counter("9starts_with_digit", "help", &[]);
    }

    #[test]
    fn render_is_sorted_and_labeled() {
        let reg = Registry::new();
        reg.counter("eum_b_total", "second", &[("shard", "1")])
            .add(2);
        reg.counter("eum_b_total", "second", &[("shard", "0")])
            .add(1);
        reg.gauge("eum_a_gauge", "first", &[]).set(2.5);
        let text = reg.render_text();
        let a = text.find("eum_a_gauge").unwrap();
        let b = text.find("eum_b_total").unwrap();
        assert!(a < b, "families must render in sorted order");
        assert!(text.contains("eum_a_gauge 2.5"));
        let s0 = text.find("eum_b_total{shard=\"0\"} 1").unwrap();
        let s1 = text.find("eum_b_total{shard=\"1\"} 2").unwrap();
        assert!(s0 < s1, "series must render in label order");
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("eum_lat_ns", "latency", &[("shard", "0")]);
        h.record(3);
        h.record(3);
        h.record(100);
        let text = reg.render_text();
        assert!(text.contains("# TYPE eum_lat_ns histogram"));
        assert!(text.contains("eum_lat_ns_bucket{shard=\"0\",le=\"4\"} 2"));
        assert!(text.contains("eum_lat_ns_bucket{shard=\"0\",le=\"+Inf\"} 3"));
        assert!(text.contains("eum_lat_ns_sum{shard=\"0\"} 106"));
        assert!(text.contains("eum_lat_ns_count{shard=\"0\"} 3"));
    }

    #[test]
    fn sample_captures_every_series_in_render_order() {
        let reg = Registry::new();
        reg.counter("eum_b_total", "second", &[("shard", "1")])
            .add(7);
        reg.gauge("eum_a_gauge", "first", &[]).set(1.5);
        reg.histogram("eum_lat_ns", "latency", &[]).record(42);
        let samples = reg.sample();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "eum_a_gauge");
        assert!(matches!(samples[0].value, SampleValue::Gauge(v) if v == 1.5));
        assert_eq!(samples[1].name, "eum_b_total");
        assert_eq!(samples[1].labels, "{shard=\"1\"}");
        assert!(matches!(samples[1].value, SampleValue::Counter(7)));
        match &samples[2].value {
            SampleValue::Histogram(h) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(
            label_string(&[("k", "a\"b\\c\nd")]),
            "{k=\"a\\\"b\\\\c\\nd\"}"
        );
    }
}
