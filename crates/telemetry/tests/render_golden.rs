//! Golden-file and structural tests for the text exposition format.
//!
//! The golden file pins `render_text` output byte for byte, so any
//! accidental format change (ordering, float formatting, label escaping)
//! shows up as a readable diff. Regenerate after an intentional change
//! with `BLESS=1 cargo test -p eum-telemetry --test render_golden`.

use eum_telemetry::Registry;
use std::collections::BTreeMap;

/// A registry with one family of each kind, deterministic values, and
/// the label shapes the serving path actually uses.
fn sample_registry() -> Registry {
    let reg = Registry::new();
    for (shard, n) in [("0", 7u64), ("1", 11)] {
        reg.counter(
            "eum_authd_queries_total",
            "Queries received",
            &[("shard", shard)],
        )
        .add(n);
    }
    reg.gauge("eum_authd_generation", "Published snapshot generation", &[])
        .set(3.0);
    reg.gauge(
        "eum_mapping_units",
        "Mapping units in the current map",
        &[("kind", "eu")],
    )
    .set(120.0);
    let h = reg.histogram("eum_authd_serve_ns", "Serve latency", &[]);
    for v in [3, 17, 17, 900, 6_000_000] {
        h.record(v);
    }
    // The PR 7 observability series: the batched transport's batch-fill
    // histogram + partial-send counter, and the trace sampling gauge.
    let fill = reg.histogram(
        "eum_net_recv_batch_fill",
        "Datagrams returned per recvmmsg batch",
        &[("shard", "0")],
    );
    for v in [1, 8, 8, 32] {
        fill.record(v);
    }
    reg.counter(
        "eum_net_sendmmsg_partial_total",
        "sendmmsg calls that sent fewer datagrams than staged",
        &[("shard", "0")],
    )
    .add(2);
    let ring = eum_telemetry::TraceRing::with_sampling(16, 64);
    eum_telemetry::export_trace_sample_rate(&reg, &ring);
    reg
}

#[test]
fn render_matches_golden() {
    let text = sample_registry().render_text();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/render.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &text).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists; BLESS=1 regenerates");
    assert_eq!(
        text, golden,
        "render_text drifted from the golden file; run with BLESS=1 if intentional"
    );
}

#[test]
fn render_is_structurally_valid_prometheus_text() {
    let text = sample_registry().render_text();
    let mut type_lines: BTreeMap<String, usize> = BTreeMap::new();
    let mut current_family: Option<String> = None;
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "no blank lines in the exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split(' ').next().unwrap().to_string();
            current_family = Some(family);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let family = parts.next().unwrap().to_string();
            let kind = parts.next().unwrap();
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE {kind} for {family}"
            );
            assert_eq!(
                current_family.as_deref(),
                Some(family.as_str()),
                "TYPE must follow its own HELP line"
            );
            *type_lines.entry(family).or_default() += 1;
            continue;
        }
        // Sample line: name[{labels}] value — value parses as a float,
        // and the name extends the family the preceding TYPE declared.
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        let name = series.split('{').next().unwrap();
        let family = current_family.as_deref().expect("sample before any TYPE");
        assert!(
            name == family
                || name == format!("{family}_bucket")
                || name == format!("{family}_sum")
                || name == format!("{family}_count"),
            "sample {name} does not belong to family {family}"
        );
        if let Some(labels) = series.strip_prefix(&format!("{name}{{")) {
            let labels = labels.strip_suffix('}').expect("balanced label braces");
            for pair in labels.split(',') {
                let (k, v) = pair.split_once('=').expect("label is key=\"value\"");
                assert!(!k.is_empty());
                assert!(
                    v.starts_with('"') && v.ends_with('"'),
                    "unquoted label {pair:?}"
                );
            }
        }
    }
    for (family, n) in &type_lines {
        assert_eq!(
            *n, 1,
            "family {family} has {n} TYPE lines; exactly one expected"
        );
    }
    assert_eq!(type_lines.len(), 7, "all seven families present");
    assert!(
        type_lines.contains_key("eum_net_recv_batch_fill")
            && type_lines.contains_key("eum_net_sendmmsg_partial_total")
            && type_lines.contains_key("eum_trace_sample_rate"),
        "the PR 7 observability families must render"
    );
}

#[test]
fn histogram_buckets_are_cumulative_and_end_at_inf() {
    let text = sample_registry().render_text();
    let mut last = 0u64;
    let mut saw_inf = false;
    for line in text
        .lines()
        .filter(|l| l.starts_with("eum_authd_serve_ns_bucket"))
    {
        let cum: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!(cum >= last, "bucket counts must be cumulative: {line}");
        last = cum;
        saw_inf = line.contains("le=\"+Inf\"");
    }
    assert!(saw_inf, "the +Inf bucket must come last");
    assert_eq!(last, 5, "+Inf bucket equals the sample count");
}
