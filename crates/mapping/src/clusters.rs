//! Client-cluster analytics (§3.3).
//!
//! "A client cluster is a set of clients that use the same LDNS … We
//! define the radius of a client cluster to be the mean distance of the
//! clients in the cluster to the centroid of the cluster", with demand
//! weights. These statistics drive Figure 11 and explain *why* NS-based
//! mapping cannot serve public resolvers well: their client clusters are
//! large, so no single server assignment fits the whole cluster.

use eum_geo::GeoPoint;
use eum_netmodel::{Internet, ResolverId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregate geometry of one LDNS's client cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientCluster {
    /// The LDNS.
    pub ldns: ResolverId,
    /// Demand flowing through this LDNS.
    pub demand: f64,
    /// Demand-weighted centroid of the clients.
    pub centroid: GeoPoint,
    /// Demand-weighted mean client→centroid distance, miles.
    pub radius: f64,
    /// Demand-weighted mean client→LDNS distance, miles.
    pub mean_client_ldns_miles: f64,
    /// Number of distinct client blocks.
    pub block_count: usize,
}

/// Computes the client cluster of every LDNS with non-zero demand.
pub fn client_clusters(net: &Internet) -> Vec<ClientCluster> {
    let mut members: HashMap<ResolverId, Vec<(GeoPoint, f64)>> = HashMap::new();
    for b in &net.blocks {
        for (r, w) in &b.ldns {
            let d = w * b.demand;
            if d > 0.0 {
                members.entry(*r).or_default().push((b.loc, d));
            }
        }
    }
    let mut keys: Vec<ResolverId> = members.keys().copied().collect();
    keys.sort();
    keys.into_iter()
        .map(|ldns| {
            let pts = &members[&ldns];
            let demand: f64 = pts.iter().map(|(_, d)| d).sum();
            let centroid = GeoPoint::weighted_centroid(pts).unwrap_or_else(|| pts[0].0);
            let radius = pts
                .iter()
                .map(|(p, d)| p.distance_miles(&centroid) * d)
                .sum::<f64>()
                / demand;
            let ldns_loc = net.resolver(ldns).loc;
            let mean_client_ldns_miles = pts
                .iter()
                .map(|(p, d)| p.distance_miles(&ldns_loc) * d)
                .sum::<f64>()
                / demand;
            ClientCluster {
                ldns,
                demand,
                centroid,
                radius,
                mean_client_ldns_miles,
                block_count: pts.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_netmodel::InternetConfig;

    fn clusters() -> (Internet, Vec<ClientCluster>) {
        let net = Internet::generate(InternetConfig::small(0xC1));
        let cc = client_clusters(&net);
        (net, cc)
    }

    #[test]
    fn every_used_ldns_has_a_cluster() {
        let (net, cc) = clusters();
        let used: std::collections::BTreeSet<ResolverId> = net
            .blocks
            .iter()
            .flat_map(|b| b.ldns.iter().map(|(r, _)| *r))
            .collect();
        let have: std::collections::BTreeSet<ResolverId> = cc.iter().map(|c| c.ldns).collect();
        assert_eq!(used, have);
    }

    #[test]
    fn demand_totals_match() {
        let (net, cc) = clusters();
        let total: f64 = cc.iter().map(|c| c.demand).sum();
        assert!((total - net.total_demand()).abs() / total < 1e-9);
    }

    #[test]
    fn radii_are_nonnegative_and_bounded_by_globe() {
        let (_, cc) = clusters();
        for c in &cc {
            assert!(c.radius >= 0.0);
            assert!(c.radius < 13_000.0);
            assert!(c.mean_client_ldns_miles >= 0.0);
            assert!(c.block_count > 0);
        }
    }

    #[test]
    fn public_resolver_clusters_have_larger_radii() {
        // The §3.3 finding behind Figure 11: public-resolver client
        // clusters are much wider than ISP ones (demand-weighted).
        let (net, cc) = clusters();
        let mut public = (0.0, 0.0);
        let mut other = (0.0, 0.0);
        for c in &cc {
            let slot = if net.resolver(c.ldns).kind.is_public() {
                &mut public
            } else {
                &mut other
            };
            slot.0 += c.radius * c.demand;
            slot.1 += c.demand;
        }
        let pub_mean = public.0 / public.1;
        let other_mean = other.0 / other.1;
        assert!(
            pub_mean > 3.0 * other_mean,
            "public radius {pub_mean:.0} vs other {other_mean:.0}"
        );
    }

    #[test]
    fn ldns_is_often_off_center_for_public_resolvers() {
        // §3.3: "for public resolvers the mean cluster-LDNS distance tends
        // to be larger than the cluster radius" — the LDNS is not at the
        // centroid of the clients it serves.
        let (net, cc) = clusters();
        let mut larger = 0.0;
        let mut total = 0.0;
        for c in cc.iter().filter(|c| net.resolver(c.ldns).kind.is_public()) {
            total += c.demand;
            if c.mean_client_ldns_miles > c.radius {
                larger += c.demand;
            }
        }
        assert!(total > 0.0, "no public clusters in universe");
        assert!(
            larger / total > 0.5,
            "only {:.0}% of public demand off-center",
            100.0 * larger / total
        );
    }

    #[test]
    fn singleton_cluster_radius_is_zero() {
        let (_, cc) = clusters();
        for c in cc.iter().filter(|c| c.block_count == 1) {
            assert!(c.radius < 1e-9);
        }
    }
}
