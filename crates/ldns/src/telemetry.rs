//! Fleet observability through `eum-telemetry`.
//!
//! The fleet's counters live as plain `u64`s inside each single-owner
//! [`crate::Ldns`] — the resolve path never touches an atomic. This
//! module bridges them into a shared [`Registry`] by delta, exactly like
//! `eum-authd` bridges its answer-cache stats: [`FleetMetrics::publish`]
//! takes the current [`FleetReport`], adds the change since the previous
//! publish to the exported counters, and refreshes the gauges. Metric
//! names keep the upstream/downstream split explicit (`downstream` =
//! client-facing resolutions, `upstream` = authoritative-facing
//! queries) so amplification is readable straight off a scrape.

use crate::fleet::FleetReport;
use eum_telemetry::{Counter, Gauge, Registry};
use std::sync::Arc;

/// Exported fleet-level instruments plus the last published report for
/// delta bridging.
pub struct FleetMetrics {
    downstream_queries: Arc<Counter>,
    downstream_cache_hits: Arc<Counter>,
    upstream_queries: Arc<Counter>,
    upstream_timeouts: Arc<Counter>,
    upstream_servfails: Arc<Counter>,
    upstream_tcp_retries: Arc<Counter>,
    failures: Arc<Counter>,
    negative_answers: Arc<Counter>,
    expirations: Arc<Counter>,
    hits_by_scope: Vec<Arc<Counter>>,
    cache_entries: Arc<Gauge>,
    amplification: Arc<Gauge>,
    hit_ratio: Arc<Gauge>,
    prev: FleetReport,
}

impl FleetMetrics {
    /// Registers the fleet's instruments in `reg`.
    pub fn register(reg: &Registry) -> FleetMetrics {
        let hits_by_scope = (0u8..=32)
            .map(|s| {
                let v = s.to_string();
                reg.counter(
                    "eum_ldns_downstream_cache_hits_by_scope_total",
                    "Resolver-cache hits by the serving entry's ECS scope length (0: global)",
                    &[("scope", &v)],
                )
            })
            .collect();
        FleetMetrics {
            downstream_queries: reg.counter(
                "eum_ldns_downstream_queries_total",
                "Client-facing resolutions served by the fleet",
                &[],
            ),
            downstream_cache_hits: reg.counter(
                "eum_ldns_downstream_cache_hits_total",
                "Client-facing resolutions answered from resolver caches",
                &[],
            ),
            upstream_queries: reg.counter(
                "eum_ldns_upstream_queries_total",
                "Authoritative-facing queries sent, retries included",
                &[],
            ),
            upstream_timeouts: reg.counter(
                "eum_ldns_upstream_timeouts_total",
                "Authoritative-facing attempts that timed out",
                &[],
            ),
            upstream_servfails: reg.counter(
                "eum_ldns_upstream_servfails_total",
                "SERVFAIL responses received from the authoritative",
                &[],
            ),
            upstream_tcp_retries: reg.counter(
                "eum_ldns_upstream_tcp_retries_total",
                "Truncated (TC=1) answers retried over the TCP leg",
                &[],
            ),
            failures: reg.counter(
                "eum_ldns_failures_total",
                "Resolutions that ended in SERVFAIL toward the client",
                &[],
            ),
            negative_answers: reg.counter(
                "eum_ldns_negative_answers_total",
                "NXDOMAIN/NODATA answers served, cached or fresh",
                &[],
            ),
            expirations: reg.counter(
                "eum_ldns_cache_expirations_total",
                "Cache entries reaped by timer-wheel TTL expiry",
                &[],
            ),
            hits_by_scope,
            cache_entries: reg.gauge(
                "eum_ldns_cache_entries",
                "Live resolver-cache entries across the fleet",
                &[],
            ),
            amplification: reg.gauge(
                "eum_ldns_amplification",
                "Measured upstream queries per downstream query",
                &[],
            ),
            hit_ratio: reg.gauge(
                "eum_ldns_downstream_hit_ratio",
                "Fraction of downstream queries served from cache",
                &[],
            ),
            prev: FleetReport {
                resolvers: 0,
                downstream_queries: 0,
                downstream_cache_hits: 0,
                upstream_queries: 0,
                upstream_timeouts: 0,
                upstream_servfails: 0,
                upstream_tcp_retries: 0,
                failures: 0,
                negative_answers: 0,
                expired_churn: 0,
                cache_entries: 0,
                hits_by_scope: [0; 33],
            },
        }
    }

    /// Publishes `report` (a cumulative fleet report): counters advance
    /// by the delta since the previous publish, gauges snap to the
    /// report's current values.
    pub fn publish(&mut self, report: &FleetReport) {
        let p = &self.prev;
        self.downstream_queries.add(
            report
                .downstream_queries
                .saturating_sub(p.downstream_queries),
        );
        self.downstream_cache_hits.add(
            report
                .downstream_cache_hits
                .saturating_sub(p.downstream_cache_hits),
        );
        self.upstream_queries
            .add(report.upstream_queries.saturating_sub(p.upstream_queries));
        self.upstream_timeouts
            .add(report.upstream_timeouts.saturating_sub(p.upstream_timeouts));
        self.upstream_servfails.add(
            report
                .upstream_servfails
                .saturating_sub(p.upstream_servfails),
        );
        self.upstream_tcp_retries.add(
            report
                .upstream_tcp_retries
                .saturating_sub(p.upstream_tcp_retries),
        );
        self.failures
            .add(report.failures.saturating_sub(p.failures));
        self.negative_answers
            .add(report.negative_answers.saturating_sub(p.negative_answers));
        self.expirations
            .add(report.expired_churn.saturating_sub(p.expired_churn));
        for (i, c) in self.hits_by_scope.iter().enumerate() {
            c.add(report.hits_by_scope[i].saturating_sub(p.hits_by_scope[i]));
        }
        self.cache_entries.set(report.cache_entries as f64);
        self.amplification.set(report.amplification());
        self.hit_ratio.set(report.hit_ratio());
        self.prev = report.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(down: u64, hits: u64, up: u64) -> FleetReport {
        let mut r = FleetReport {
            resolvers: 4,
            downstream_queries: down,
            downstream_cache_hits: hits,
            upstream_queries: up,
            upstream_timeouts: 1,
            upstream_servfails: 2,
            upstream_tcp_retries: 0,
            failures: 0,
            negative_answers: 3,
            expired_churn: 5,
            cache_entries: 17,
            hits_by_scope: [0; 33],
        };
        r.hits_by_scope[0] = hits / 2;
        r.hits_by_scope[24] = hits - hits / 2;
        r
    }

    #[test]
    fn publish_bridges_cumulative_reports_by_delta() {
        let reg = Registry::new();
        let mut m = FleetMetrics::register(&reg);
        m.publish(&report(100, 40, 130));
        m.publish(&report(250, 90, 300));
        let text = reg.render_text();
        assert!(text.contains("eum_ldns_downstream_queries_total 250"));
        assert!(text.contains("eum_ldns_upstream_queries_total 300"));
        assert!(text.contains("eum_ldns_downstream_cache_hits_total 90"));
        // Gauges snap to the latest report, not a sum.
        assert!(text.contains("eum_ldns_cache_entries 17"));
    }

    #[test]
    fn scope_split_is_labeled() {
        let reg = Registry::new();
        let mut m = FleetMetrics::register(&reg);
        m.publish(&report(10, 8, 4));
        let text = reg.render_text();
        assert!(text.contains(r#"eum_ldns_downstream_cache_hits_by_scope_total{scope="0"} 4"#));
        assert!(text.contains(r#"eum_ldns_downstream_cache_hits_by_scope_total{scope="24"} 4"#));
    }
}
