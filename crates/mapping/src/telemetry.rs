//! Instrumentation for the serving side of the mapping system.
//!
//! [`MappingTelemetry`] is attached to a [`crate::MappingSystem`] with
//! [`crate::MappingSystem::attach_telemetry`]. The lock-free
//! [`crate::MappingSystem::answer`] path then records, through `&self`
//! atomics only:
//!
//! * which answer path each query took (`eum_mapping_answers_total`,
//!   labeled by path — end-user, NS, top-level delegation, whoami, error);
//! * how deep into a unit's ranked candidate list health fallback had
//!   to walk (`eum_mapping_fallback_depth_total` — `primary` means the
//!   load balancer's assignment was healthy, `ranked` a lower-ranked
//!   healthy candidate, `overloaded` that every healthy candidate was
//!   filtered and a ranked-but-overloaded cluster answered, `any_live`
//!   that every candidate was down and the nearest live cluster
//!   answered);
//! * round-robin answer rotations (`eum_mapping_rr_rotations_total`);
//! * per-mapping-unit query counts, kept in plain atomic arrays because
//!   unit indices are unbounded-cardinality and must never become label
//!   values; [`MappingTelemetry::publish_unit_stats`] folds them into
//!   bounded gauges (units configured / units queried / hottest unit).
//!
//! [`crate::MappingSystem::rebuild`] re-attaches automatically: counter
//! handles are re-fetched idempotently from the registry (totals keep
//! accumulating) while the per-unit arrays are re-sized for the new map.

use eum_telemetry::{Counter, Gauge, Histogram, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which serving path produced an answer.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AnswerPath {
    /// Low-level A answer through the end-user (ECS) tables.
    EndUser,
    /// Low-level A answer through the NS (per-LDNS) tables.
    Ns,
    /// Top-level delegation.
    TopLevel,
    /// The `whoami.<suffix>` discovery answer.
    Whoami,
    /// Any error response (FORMERR, REFUSED, NXDOMAIN, SERVFAIL).
    Error,
}

/// Registered handles plus per-unit atomic query counts.
pub struct MappingTelemetry {
    registry: Arc<Registry>,
    answers_eu: Arc<Counter>,
    answers_ns: Arc<Counter>,
    answers_top: Arc<Counter>,
    answers_whoami: Arc<Counter>,
    answers_error: Arc<Counter>,
    fallback_primary: Arc<Counter>,
    fallback_ranked: Arc<Counter>,
    fallback_overloaded: Arc<Counter>,
    fallback_any_live: Arc<Counter>,
    rr_rotations: Arc<Counter>,
    rebuild_full_ns: Arc<Histogram>,
    rebuild_incremental_ns: Arc<Histogram>,
    units_changed: Arc<Counter>,
    /// Queries attributed to each end-user unit (empty without EU units).
    eu_unit_queries: Box<[AtomicU64]>,
    /// Queries attributed to each NS (LDNS) unit.
    ns_unit_queries: Box<[AtomicU64]>,
}

impl std::fmt::Debug for MappingTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappingTelemetry")
            .field("eu_units", &self.eu_unit_queries.len())
            .field("ns_units", &self.ns_unit_queries.len())
            .finish()
    }
}

fn counts(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

impl MappingTelemetry {
    /// Registers (idempotently) every mapping instrument and sizes the
    /// per-unit arrays for a map with `ns_units`/`eu_units` units.
    pub(crate) fn new(
        registry: Arc<Registry>,
        ns_units: usize,
        eu_units: usize,
    ) -> MappingTelemetry {
        let answers = |path: &str| {
            registry.counter(
                "eum_mapping_answers_total",
                "Answers produced, by serving path",
                &[("path", path)],
            )
        };
        let fallback = |rank: &str| {
            registry.counter(
                "eum_mapping_fallback_depth_total",
                "Liveness fallback depth per answered query",
                &[("rank", rank)],
            )
        };
        let t = MappingTelemetry {
            answers_eu: answers("eu"),
            answers_ns: answers("ns"),
            answers_top: answers("top"),
            answers_whoami: answers("whoami"),
            answers_error: answers("error"),
            fallback_primary: fallback("primary"),
            fallback_ranked: fallback("ranked"),
            fallback_overloaded: fallback("overloaded"),
            fallback_any_live: fallback("any_live"),
            rr_rotations: registry.counter(
                "eum_mapping_rr_rotations_total",
                "Round-robin local-LB answer rotations",
                &[],
            ),
            rebuild_full_ns: registry.histogram(
                "eum_mapping_rebuild_ns",
                "Map rebuild wall time, nanoseconds",
                &[("mode", "full")],
            ),
            rebuild_incremental_ns: registry.histogram(
                "eum_mapping_rebuild_ns",
                "Map rebuild wall time, nanoseconds",
                &[("mode", "incremental")],
            ),
            units_changed: registry.counter(
                "eum_mapping_units_changed_total",
                "Mapping units republished across map generations",
                &[],
            ),
            eu_unit_queries: counts(eu_units),
            ns_unit_queries: counts(ns_units),
            registry,
        };
        t.unit_gauge("configured", "ns").set(ns_units as f64);
        t.unit_gauge("configured", "eu").set(eu_units as f64);
        t
    }

    fn unit_gauge(&self, what: &str, kind: &str) -> Arc<Gauge> {
        let (name, help) = match what {
            "configured" => ("eum_mapping_units", "Mapping units in the current map"),
            "queried" => (
                "eum_mapping_units_queried",
                "Mapping units that answered at least one query",
            ),
            _ => (
                "eum_mapping_unit_queries_max",
                "Queries answered by the hottest mapping unit",
            ),
        };
        self.registry.gauge(name, help, &[("kind", kind)])
    }

    pub(crate) fn count_answer(&self, path: AnswerPath) {
        match path {
            AnswerPath::EndUser => self.answers_eu.inc(),
            AnswerPath::Ns => self.answers_ns.inc(),
            AnswerPath::TopLevel => self.answers_top.inc(),
            AnswerPath::Whoami => self.answers_whoami.inc(),
            AnswerPath::Error => self.answers_error.inc(),
        }
    }

    /// Records how deep [`crate::MappingSystem`]'s health walk went:
    /// `Some(0)` primary, `Some(_)` a ranked alternate, `None` the
    /// any-live escape hatch.
    pub(crate) fn count_fallback(&self, depth: Option<usize>) {
        match depth {
            Some(0) => self.fallback_primary.inc(),
            Some(_) => self.fallback_ranked.inc(),
            None => self.fallback_any_live.inc(),
        }
    }

    /// Records an answer that had to serve a ranked-but-overloaded
    /// cluster because the health filter emptied the candidate row.
    pub(crate) fn count_fallback_overloaded(&self) {
        self.fallback_overloaded.inc();
    }

    pub(crate) fn count_rr_rotation(&self) {
        self.rr_rotations.inc();
    }

    /// Records one map rebuild: wall time into the mode-labeled
    /// `eum_mapping_rebuild_ns` histogram and how many units the new
    /// generation republished (all of them, for a full rebuild).
    pub fn record_rebuild(&self, full: bool, elapsed_ns: u64, units_changed: u64) {
        if full {
            self.rebuild_full_ns.record(elapsed_ns);
        } else {
            self.rebuild_incremental_ns.record(elapsed_ns);
        }
        self.units_changed.add(units_changed);
    }

    pub(crate) fn count_eu_unit(&self, unit: usize) {
        if let Some(c) = self.eu_unit_queries.get(unit) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn count_ns_unit(&self, unit: usize) {
        if let Some(c) = self.ns_unit_queries.get(unit) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Per-end-user-unit query counts since attach (index = unit index).
    pub fn eu_unit_queries(&self) -> Vec<u64> {
        self.eu_unit_queries
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-NS-unit query counts since attach (index = unit index).
    pub fn ns_unit_queries(&self) -> Vec<u64> {
        self.ns_unit_queries
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Folds the unbounded per-unit arrays into bounded gauges: how many
    /// units answered at least one query and how hot the hottest unit is,
    /// per unit kind. Call from a reporter tick.
    pub fn publish_unit_stats(&self) {
        for (kind, counts) in [("ns", &self.ns_unit_queries), ("eu", &self.eu_unit_queries)] {
            let mut queried = 0u64;
            let mut max = 0u64;
            for c in counts.iter() {
                let v = c.load(Ordering::Relaxed);
                if v > 0 {
                    queried += 1;
                }
                max = max.max(v);
            }
            self.unit_gauge("queried", kind).set(queried as f64);
            self.unit_gauge("max", kind).set(max as f64);
        }
    }

    /// The registry this telemetry is attached to.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}
