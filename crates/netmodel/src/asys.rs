//! Autonomous systems and their name-service policies.
//!
//! §3.2 of the paper explains the three LDNS architectures that drive
//! client–LDNS distance: large ISPs run their own geographically
//! distributed (anycast) resolvers; small ISPs "outsource" name service to
//! public resolver providers for economic reasons; enterprises centralize
//! resolvers at one office while having geographically diverse branches.

use crate::ids::{AsId, BlockId, ProviderId, ResolverId};
use eum_geo::{Asn, Country};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// The structural category of an AS. Determines block count, geographic
/// spread, and resolver policy distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsTier {
    /// A large national ISP: many client blocks, self-hosted anycast LDNS.
    LargeIsp,
    /// A small regional ISP: few blocks, often outsources DNS.
    SmallIsp,
    /// An enterprise with branch offices, centralized LDNS at headquarters.
    Enterprise,
}

impl AsTier {
    /// All tiers.
    pub const ALL: &'static [AsTier] = &[AsTier::LargeIsp, AsTier::SmallIsp, AsTier::Enterprise];
}

/// How the AS provides recursive name service to its clients (§3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResolverPolicy {
    /// The AS operates its own resolver sites; clients reach the nearest
    /// via IP anycast (with occasional misrouting, see
    /// [`crate::resolver::AnycastRouter`]).
    SelfHosted {
        /// The AS's resolver sites.
        sites: Vec<ResolverId>,
    },
    /// The AS points all clients at a public resolver provider.
    Outsourced {
        /// The provider serving this AS's clients.
        provider: ProviderId,
    },
    /// A single centralized resolver (enterprise headquarters).
    Centralized {
        /// The lone resolver.
        resolver: ResolverId,
    },
}

/// An autonomous system in the synthetic Internet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsInfo {
    /// Arena index.
    pub id: AsId,
    /// The AS number (unique).
    pub asn: Asn,
    /// Structural tier.
    pub tier: AsTier,
    /// Home country (enterprises also have blocks elsewhere).
    pub country: Country,
    /// Contiguous range of this AS's client blocks in the block arena.
    pub blocks: Range<u32>,
    /// Name-service policy.
    pub policy: ResolverPolicy,
    /// Total client demand originating from this AS (sum of block demands),
    /// filled in by the generator after block demands are drawn.
    pub demand: f64,
}

impl AsInfo {
    /// Iterates the AS's block IDs.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        self.blocks.clone().map(BlockId)
    }

    /// Number of /24 client blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ids_cover_range() {
        let info = AsInfo {
            id: AsId(0),
            asn: Asn(64512),
            tier: AsTier::SmallIsp,
            country: Country::France,
            blocks: 10..13,
            policy: ResolverPolicy::Outsourced {
                provider: ProviderId(0),
            },
            demand: 0.0,
        };
        let ids: Vec<_> = info.block_ids().collect();
        assert_eq!(ids, vec![BlockId(10), BlockId(11), BlockId(12)]);
        assert_eq!(info.block_count(), 3);
    }
}
