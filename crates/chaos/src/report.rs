//! Ground-truth window statistics and hand-rendered JSONL reporting.
//!
//! Every number here is measured, not modeled: latencies from the live
//! open-loop replay, shed/admitted from the spawned server's own
//! telemetry registry, answer quality from checking answered IPs
//! against the platform's real liveness state. The JSONL layout is one
//! line per (arm, window) plus one summary line per scenario, so a
//! whole lab run concatenates into a single streaming file under
//! `results/`.

/// One arrival window's measured outcome for one arm.
#[derive(Debug, Clone, Default)]
pub struct WindowStats {
    /// Window index.
    pub window: usize,
    /// Attack arrivals offered this window (ground truth).
    pub attack_offered: u64,
    /// Legit arrivals offered this window (ground truth).
    pub legit_offered: u64,
    /// Legit queries answered healthily within the deadline.
    pub legit_ok: u64,
    /// Legit queries answered healthily but past the deadline (the
    /// client had given up).
    pub legit_late: u64,
    /// Legit queries answered with an address of a dead server.
    pub legit_unhealthy: u64,
    /// Legit queries with no usable answer (SERVFAIL — including
    /// admission sheds surfacing at the resolver — or empty).
    pub legit_failed: u64,
    /// Attack queries that got a real answer (NXDOMAIN for floods, an
    /// address for crowds/scans).
    pub attack_answered: u64,
    /// Attack queries that got no usable answer (shed or failed).
    pub attack_failed: u64,
    /// `eum_authd_shed_total` delta across the window.
    pub shed: u64,
    /// `eum_authd_admitted_total` delta across the window.
    pub admitted: u64,
    /// Median legit latency, microseconds (queue + service).
    pub legit_p50_us: f64,
    /// 99th-percentile legit latency, microseconds.
    pub legit_p99_us: f64,
    /// Legit goodput over the window's offered timeline, answers/s.
    pub goodput_qps: f64,
}

impl WindowStats {
    pub(crate) fn new(window: usize) -> WindowStats {
        WindowStats {
            window,
            ..WindowStats::default()
        }
    }

    /// Computes the derived figures once the window's raw counts and
    /// legit latencies are in.
    pub(crate) fn finish(&mut self, legit_lat_ns: &[u64], span_ns: u64) {
        let mut sorted = legit_lat_ns.to_vec();
        sorted.sort_unstable();
        self.legit_p50_us = percentile_us(&sorted, 0.50);
        self.legit_p99_us = percentile_us(&sorted, 0.99);
        self.goodput_qps = self.legit_ok as f64 / (span_ns as f64 / 1e9);
    }

    fn jsonl(&self, scenario: &str, arm: &str) -> String {
        format!(
            concat!(
                "{{\"scenario\":\"{}\",\"arm\":\"{}\",\"window\":{},",
                "\"attack_offered\":{},\"legit_offered\":{},",
                "\"legit_ok\":{},\"legit_late\":{},\"legit_unhealthy\":{},\"legit_failed\":{},",
                "\"attack_answered\":{},\"attack_failed\":{},",
                "\"shed\":{},\"admitted\":{},",
                "\"legit_p50_us\":{:.2},\"legit_p99_us\":{:.2},\"goodput_qps\":{:.1}}}"
            ),
            scenario,
            arm,
            self.window,
            self.attack_offered,
            self.legit_offered,
            self.legit_ok,
            self.legit_late,
            self.legit_unhealthy,
            self.legit_failed,
            self.attack_answered,
            self.attack_failed,
            self.shed,
            self.admitted,
            self.legit_p50_us,
            self.legit_p99_us,
            self.goodput_qps,
        )
    }
}

/// One arm's full run plus its impact-range aggregate.
#[derive(Debug, Clone)]
pub struct ArmReport {
    /// Whether this arm ran with defenses.
    pub defended: bool,
    /// Every window, in order.
    pub windows: Vec<WindowStats>,
    /// Aggregates over the scenario's impact range:
    pub legit_offered: u64,
    pub legit_ok: u64,
    pub shed: u64,
    pub admitted: u64,
    /// Legit goodput over the impact range, answers/s.
    pub goodput_qps: f64,
    /// Worst window p50/p99 are noisy; these aggregate the impact
    /// range's per-window percentiles by weighted mean (p50) and max
    /// (p99 — tail of the worst window is the tail the user saw).
    pub legit_p50_us: f64,
    pub legit_p99_us: f64,
    /// Fraction of impact-range legit queries answered usable and on
    /// time.
    pub legit_quality: f64,
}

impl ArmReport {
    pub(crate) fn aggregate(
        defended: bool,
        windows: Vec<WindowStats>,
        impact: std::ops::Range<usize>,
    ) -> ArmReport {
        let sel: Vec<&WindowStats> = windows
            .iter()
            .filter(|s| impact.contains(&s.window))
            .collect();
        let legit_offered: u64 = sel.iter().map(|s| s.legit_offered).sum();
        let legit_ok: u64 = sel.iter().map(|s| s.legit_ok).sum();
        let shed: u64 = sel.iter().map(|s| s.shed).sum();
        let admitted: u64 = sel.iter().map(|s| s.admitted).sum();
        let goodput_qps = sel.iter().map(|s| s.goodput_qps).sum::<f64>() / sel.len().max(1) as f64;
        let weight: u64 = sel.iter().map(|s| s.legit_offered).sum();
        let legit_p50_us = if weight == 0 {
            0.0
        } else {
            sel.iter()
                .map(|s| s.legit_p50_us * s.legit_offered as f64)
                .sum::<f64>()
                / weight as f64
        };
        let legit_p99_us = sel.iter().map(|s| s.legit_p99_us).fold(0.0, f64::max);
        ArmReport {
            defended,
            windows,
            legit_offered,
            legit_ok,
            shed,
            admitted,
            goodput_qps,
            legit_p50_us,
            legit_p99_us,
            legit_quality: if legit_offered == 0 {
                0.0
            } else {
                legit_ok as f64 / legit_offered as f64
            },
        }
    }

    fn summary_json(&self) -> String {
        format!(
            concat!(
                "{{\"legit_offered\":{},\"legit_ok\":{},\"shed\":{},\"admitted\":{},",
                "\"goodput_qps\":{:.1},\"legit_p50_us\":{:.2},\"legit_p99_us\":{:.2},",
                "\"legit_quality\":{:.4}}}"
            ),
            self.legit_offered,
            self.legit_ok,
            self.shed,
            self.admitted,
            self.goodput_qps,
            self.legit_p50_us,
            self.legit_p99_us,
            self.legit_quality,
        )
    }
}

/// The A/B outcome of one scenario: identical offered schedule, one
/// arm undefended, one defended.
#[derive(Debug, Clone)]
pub struct AbReport {
    pub scenario: String,
    pub seed: u64,
    /// The fixed offered arrival interval both arms replayed at.
    pub interval_ns: u64,
    /// Client patience both arms were judged against.
    pub deadline_ns: u64,
    /// Calibrated mean cost per resolution, undefended arm.
    pub cost_off_ns: u64,
    /// Calibrated mean cost per resolution, defended arm.
    pub cost_on_ns: u64,
    pub off: ArmReport,
    pub on: ArmReport,
}

impl AbReport {
    /// Defended-over-undefended legit goodput across the impact range.
    pub fn goodput_ratio(&self) -> f64 {
        if self.off.goodput_qps <= 0.0 {
            if self.on.goodput_qps > 0.0 {
                f64::INFINITY
            } else {
                1.0
            }
        } else {
            self.on.goodput_qps / self.off.goodput_qps
        }
    }

    /// Every JSONL line for this scenario: per-window rows for both
    /// arms, then one summary row.
    pub fn jsonl_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (arm, report) in [("off", &self.off), ("on", &self.on)] {
            for w in &report.windows {
                out.push(w.jsonl(&self.scenario, arm));
            }
        }
        out.push(self.summary_jsonl());
        out
    }

    /// The one-line scenario summary (also the last JSONL row).
    pub fn summary_jsonl(&self) -> String {
        format!(
            concat!(
                "{{\"scenario\":\"{}\",\"summary\":true,\"seed\":{},",
                "\"interval_ns\":{},\"deadline_ns\":{},",
                "\"cost_off_ns\":{},\"cost_on_ns\":{},",
                "\"off\":{},\"on\":{},\"goodput_ratio\":{:.3}}}"
            ),
            self.scenario,
            self.seed,
            self.interval_ns,
            self.deadline_ns,
            self.cost_off_ns,
            self.cost_on_ns,
            self.off.summary_json(),
            self.on.summary_json(),
            self.goodput_ratio(),
        )
    }
}

/// Interpolation-free percentile of pre-sorted nanosecond samples, in
/// microseconds.
fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}
