//! Workload generation: who loads which page when.
//!
//! Page views are drawn per simulated day: the day's view count follows
//! the configured base rate with week-scale modulation and a linear
//! growth trend (the paper's measurement volume grows month over month,
//! Figure 12; total traffic grows through the period, Figures 2 and 23).
//! Each view samples a client block proportionally to demand (Walker's
//! alias method — O(1) per draw over tens of thousands of blocks), an
//! LDNS by the block's usage weights, and a domain by Zipf popularity.

use eum_cdn::ContentCatalog;
use eum_netmodel::{BlockId, Internet, ResolverId};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Walker's alias method for O(1) weighted sampling.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds a table from non-negative weights (at least one positive).
    pub fn new(weights: &[f64]) -> AliasTable {
        assert!(!weights.is_empty(), "alias table needs weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias table needs positive total weight");
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, p) in prob.iter().enumerate() {
            if *p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining entries are exactly 1 up to rounding.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when there are no entries (cannot happen after `new`).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws an index.
    pub fn sample(&self, rng: &mut ChaCha12Rng) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random_range(0.0..1.0) < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// One scheduled page view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageView {
    /// Millisecond offset within the day.
    pub offset_ms: u64,
    /// The client block loading the page.
    pub block: BlockId,
    /// The LDNS the client uses for this load.
    pub ldns: ResolverId,
    /// The catalog domain being loaded.
    pub domain: u32,
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Mean *measured* (RUM-sampled) page views on day 0.
    pub views_per_day: f64,
    /// Linear growth: day `d` has `views_per_day * (1 + growth * d)`.
    pub daily_growth: f64,
    /// Weekly modulation amplitude (weekends dip).
    pub weekly_amplitude: f64,
    /// Unmeasured client requests per measured view. RUM instruments a
    /// thin sample of page loads, but *every* load exercises the client's
    /// LDNS — pre-roll-out cache saturation (≈ 1 query per TTL for popular
    /// pairs, §5.2) only exists at full demand. The paper's own ratio of
    /// client requests to DNS queries is ~19:1 (Figure 2: 30M rps vs 1.6M
    /// qps), which is the default here.
    pub dns_background_multiplier: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            views_per_day: 5_000.0,
            daily_growth: 0.004,
            weekly_amplitude: 0.15,
            dns_background_multiplier: 19.0,
        }
    }
}

/// The workload generator.
pub struct Workload {
    cfg: WorkloadConfig,
    blocks: AliasTable,
    domains: AliasTable,
    rng: ChaCha12Rng,
}

impl Workload {
    /// Builds a generator over an Internet and catalog.
    pub fn new(
        net: &Internet,
        catalog: &ContentCatalog,
        cfg: WorkloadConfig,
        seed: u64,
    ) -> Workload {
        let block_weights: Vec<f64> = net.blocks.iter().map(|b| b.demand).collect();
        Workload {
            cfg,
            blocks: AliasTable::new(&block_weights),
            domains: AliasTable::new(&catalog.popularity_weights()),
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0x0030_17AD),
        }
    }

    /// Expected views on a given day.
    pub fn day_rate(&self, day: u32) -> f64 {
        let weekly = 1.0 - self.cfg.weekly_amplitude * if day % 7 >= 5 { 1.0 } else { 0.0 };
        self.cfg.views_per_day * (1.0 + self.cfg.daily_growth * day as f64) * weekly
    }

    /// Generates one day of page views, sorted by time offset.
    pub fn generate_day(&mut self, net: &Internet, day: u32) -> Vec<PageView> {
        let expect = self.day_rate(day);
        // Poisson(expect) via normal approximation for large rates.
        let count = if expect > 200.0 {
            let u1: f64 = self.rng.random_range(1e-12..1.0);
            let u2: f64 = self.rng.random_range(0.0..std::f64::consts::TAU);
            let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
            (expect + z * expect.sqrt()).round().max(0.0) as usize
        } else {
            // Direct Poisson for small rates.
            let l = (-expect).exp();
            let mut k = 0usize;
            let mut p = 1.0;
            loop {
                p *= self.rng.random_range(0.0..1.0);
                if p <= l {
                    break k;
                }
                k += 1;
            }
        };
        let mut views = Vec::with_capacity(count);
        for _ in 0..count {
            let block = BlockId(self.blocks.sample(&mut self.rng) as u32);
            let info = net.block(block);
            // LDNS by usage weight.
            let r: f64 = self.rng.random_range(0.0..1.0);
            let mut cum = 0.0;
            let mut ldns = info.ldns[0].0;
            for (rid, w) in &info.ldns {
                cum += w;
                if r <= cum {
                    ldns = *rid;
                    break;
                }
            }
            let domain = self.domains.sample(&mut self.rng) as u32;
            let offset_ms = self.rng.random_range(0..crate::engine::SimTime::DAY_MS);
            views.push(PageView {
                offset_ms,
                block,
                ldns,
                domain,
            });
        }
        views.sort_by_key(|v| v.offset_ms);
        views
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_cdn::CatalogConfig;
    use eum_netmodel::InternetConfig;

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 3.0, 6.0];
        let table = AliasTable::new(&weights);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, w) in weights.iter().enumerate() {
            let expect = w / 10.0;
            let got = counts[i] as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "index {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn alias_table_handles_zero_weights() {
        let table = AliasTable::new(&[0.0, 5.0, 0.0]);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn alias_table_rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn single_entry_table() {
        let table = AliasTable::new(&[7.5]);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        assert_eq!(table.sample(&mut rng), 0);
    }

    fn workload() -> (Internet, Workload) {
        let net = Internet::generate(InternetConfig::tiny(0x30));
        let catalog = ContentCatalog::generate(&CatalogConfig::tiny(0x30));
        let w = Workload::new(
            &net,
            &catalog,
            WorkloadConfig {
                views_per_day: 500.0,
                ..WorkloadConfig::default()
            },
            0x30,
        );
        (net, w)
    }

    #[test]
    fn day_generation_is_sorted_and_plausible() {
        let (net, mut w) = workload();
        let views = w.generate_day(&net, 0);
        assert!(
            views.len() > 300 && views.len() < 700,
            "got {}",
            views.len()
        );
        for pair in views.windows(2) {
            assert!(pair[0].offset_ms <= pair[1].offset_ms);
        }
        for v in &views {
            assert!(v.offset_ms < crate::engine::SimTime::DAY_MS);
            // LDNS actually belongs to the block.
            let b = net.block(v.block);
            assert!(b.ldns.iter().any(|(r, _)| *r == v.ldns));
        }
    }

    #[test]
    fn rate_grows_over_time_and_dips_on_weekends() {
        let (_, w) = workload();
        assert!(w.day_rate(100) > w.day_rate(0));
        // Day 5 and 6 are the weekend of week 0.
        assert!(w.day_rate(5) < w.day_rate(4));
    }

    #[test]
    fn popular_domains_get_more_views() {
        let (net, mut w) = workload();
        let mut counts = std::collections::HashMap::new();
        for day in 0..20 {
            for v in w.generate_day(&net, day) {
                *counts.entry(v.domain).or_insert(0usize) += 1;
            }
        }
        let top = counts.get(&0).copied().unwrap_or(0);
        let tail = counts.get(&11).copied().unwrap_or(0);
        assert!(
            top > tail,
            "domain 0 ({top}) should beat domain 11 ({tail})"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let (net, mut w1) = workload();
        let (_, mut w2) = workload();
        assert_eq!(w1.generate_day(&net, 0), w2.generate_day(&net, 0));
    }
}
