//! The client side of one page load: HTTP over the modeled transport.
//!
//! Takes the A-record answer the DNS path produced and turns it into the
//! §4.1 metrics: pick a live server, measure RTT and loss on the client↔
//! server path, serve the base page (origin-assisted when dynamic or
//! missed), serve the embedded objects against the server's cache, and
//! produce TTFB / content-download-time via the TCP model.

use eum_cdn::{
    overlay_fetch_ms, page_timings, CdnPlatform, ContentCatalog, ContentId, PageLoadInputs,
    ServerId,
};
use eum_netmodel::{ClientBlock, Endpoint, LatencyModel};
use std::net::Ipv4Addr;

/// The transport-level outcome of one page load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchOutcome {
    /// The server that served the page.
    pub server: ServerId,
    /// Client↔server RTT, ms.
    pub rtt_ms: f64,
    /// Time to first byte, ms.
    pub ttfb_ms: f64,
    /// Content download time, ms.
    pub download_ms: f64,
    /// Mapping distance: client ↔ serving cluster, miles.
    pub mapping_distance_miles: f64,
    /// Whether the base page hit the edge cache.
    pub base_cache_hit: bool,
}

/// Time the origin itself takes to produce a response, ms.
const ORIGIN_SERVICE_MS: f64 = 8.0;

/// Fraction of the origin round trip that gates the first byte on a
/// *dynamic* page. Production CDNs flush the static page shell while the
/// personalized elements are fetched over warm overlay connections, so
/// only part of the origin leg blocks TTFB. A *cache miss* on a static
/// base page has no shell to flush and pays the full fetch.
const DYNAMIC_ORIGIN_BLOCKING: f64 = 0.35;

/// How many relay clusters the overlay considers per fetch.
const OVERLAY_RELAYS: usize = 6;

/// Performs one page load against the CDN.
///
/// `ips` is the A-record answer (first live server wins — "more than one
/// server is returned as an additional precaution", §1 fn. 2). Returns
/// `None` when no answered server is alive (the view fails).
pub fn fetch_page(
    cdn: &mut CdnPlatform,
    catalog: &ContentCatalog,
    latency: &LatencyModel,
    block: &ClientBlock,
    domain_idx: u32,
    ips: &[Ipv4Addr],
) -> Option<FetchOutcome> {
    let domain = &catalog.domains[domain_idx as usize];
    // First live answered server.
    let server_id = ips
        .iter()
        .filter_map(|ip| cdn.server_by_ip(*ip))
        .find(|s| cdn.server(*s).alive)?;
    let client_ep = block.endpoint();
    let server_ep = cdn.server_endpoint(server_id);
    let cluster = cdn.server(server_id).cluster;
    let cluster_loc = cdn.cluster(cluster).loc;

    let rtt = latency.rtt_ms(&client_ep, &server_ep);
    let loss = latency.loss_rate(&client_ep, &server_ep);

    // Origin path: direct or via one overlay relay (§4.1 "Overlay
    // transport is used to speedup origin-server communication").
    let origin_ep = Endpoint::infra(
        // Origins live outside the CDN address plan; synthesize a stable
        // IP from the domain index so latency noise is reproducible.
        Ipv4Addr::from(0xE000_0000u32 | domain_idx << 8 | 1),
        domain.origin_loc,
        domain.origin_country,
        eum_cdn::CDN_ASN,
    );
    let origin_fetch_ms = {
        let direct = latency.rtt_ms(&server_ep, &origin_ep);
        let relays = relay_candidates(cdn, cluster, OVERLAY_RELAYS)
            .into_iter()
            .map(|c| {
                let relay_ep = cdn.cluster_endpoint(c);
                (
                    latency.rtt_ms(&server_ep, &relay_ep),
                    latency.rtt_ms(&relay_ep, &origin_ep),
                )
            });
        overlay_fetch_ms(direct, relays.collect::<Vec<_>>(), ORIGIN_SERVICE_MS)
    };

    // Base page.
    let base_id = ContentId {
        domain: domain_idx,
        object: 0,
    };
    let base_cacheable = !domain.dynamic_base;
    let base_hit = cdn.server_mut(server_id).serve(base_id, base_cacheable);
    let origin_ms = if domain.dynamic_base {
        Some(origin_fetch_ms * DYNAMIC_ORIGIN_BLOCKING)
    } else if !base_hit {
        Some(origin_fetch_ms)
    } else {
        None
    };

    // Embedded objects against the same server's cache.
    let mut embedded_kb = 0.0;
    let mut misses = 0usize;
    for (i, obj) in domain.objects.iter().enumerate() {
        embedded_kb += obj.size_kb;
        let id = ContentId {
            domain: domain_idx,
            object: i as u32 + 1,
        };
        if !cdn.server_mut(server_id).serve(id, obj.cacheable) {
            misses += 1;
        }
    }
    // Missed embedded objects fetch from origin concurrently: the first
    // miss pays a full origin round trip; further misses mostly overlap,
    // adding a small serialization tail each.
    let embedded_miss_penalty_ms = if misses > 0 {
        origin_fetch_ms + (misses.saturating_sub(1) as f64) * 2.0
    } else {
        0.0
    };

    let timings = page_timings(
        &cdn.tcp,
        &PageLoadInputs {
            rtt_ms: rtt,
            loss_rate: loss,
            server_time_ms: domain.server_time_ms,
            origin_fetch_ms: origin_ms,
            base_size_kb: domain.base_size_kb,
            embedded_kb,
            embedded_miss_penalty_ms,
        },
    );

    Some(FetchOutcome {
        server: server_id,
        rtt_ms: rtt,
        ttfb_ms: timings.ttfb_ms,
        download_ms: timings.download_ms,
        mapping_distance_miles: block.loc.distance_miles(&cluster_loc),
        base_cache_hit: base_hit,
    })
}

/// A deterministic set of relay clusters for overlay routing: a stride
/// over the live clusters, excluding the serving cluster itself.
fn relay_candidates(
    cdn: &CdnPlatform,
    exclude: eum_cdn::ClusterId,
    k: usize,
) -> Vec<eum_cdn::ClusterId> {
    let live: Vec<eum_cdn::ClusterId> = cdn.live_clusters().filter(|c| *c != exclude).collect();
    if live.is_empty() {
        return Vec::new();
    }
    let stride = (live.len() / k.max(1)).max(1);
    live.into_iter().step_by(stride).take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_cdn::{deployment_universe, CatalogConfig, DeployConfig};
    use eum_netmodel::{Internet, InternetConfig};

    fn world() -> (Internet, CdnPlatform, ContentCatalog) {
        let mut net = Internet::generate(InternetConfig::tiny(0xC7));
        let sites = deployment_universe(0xC7, 10);
        let cdn = CdnPlatform::deploy(
            &mut net,
            &sites,
            &DeployConfig {
                servers_per_cluster: 3,
                cache_objects_per_server: 128,
                cluster_capacity: 1e9,
            },
        );
        let catalog = ContentCatalog::generate(&CatalogConfig::tiny(0xC7));
        (net, cdn, catalog)
    }

    #[test]
    fn fetch_produces_positive_metrics() {
        let (net, mut cdn, catalog) = world();
        let block = net.blocks[0].clone();
        let ips = [cdn.server(ServerId(0)).ip];
        let out = fetch_page(&mut cdn, &catalog, &net.latency, &block, 0, &ips).unwrap();
        assert!(out.rtt_ms > 0.0);
        assert!(out.ttfb_ms > out.rtt_ms, "TTFB includes a full RTT");
        assert!(out.download_ms > 0.0);
        assert!(out.mapping_distance_miles >= 0.0);
    }

    #[test]
    fn second_fetch_warms_the_cache() {
        let (net, mut cdn, catalog) = world();
        // Use a static-base domain so the base page is cacheable.
        let static_domain = catalog
            .domains
            .iter()
            .position(|d| !d.dynamic_base)
            .expect("catalog has a static domain") as u32;
        let block = net.blocks[0].clone();
        let ips = [cdn.server(ServerId(0)).ip];
        let cold = fetch_page(
            &mut cdn,
            &catalog,
            &net.latency,
            &block,
            static_domain,
            &ips,
        )
        .unwrap();
        let warm = fetch_page(
            &mut cdn,
            &catalog,
            &net.latency,
            &block,
            static_domain,
            &ips,
        )
        .unwrap();
        assert!(!cold.base_cache_hit);
        assert!(warm.base_cache_hit);
        assert!(
            warm.ttfb_ms < cold.ttfb_ms,
            "warm {} vs cold {}",
            warm.ttfb_ms,
            cold.ttfb_ms
        );
        assert!(warm.download_ms <= cold.download_ms);
    }

    #[test]
    fn dead_first_server_falls_to_second() {
        let (net, mut cdn, catalog) = world();
        let block = net.blocks[0].clone();
        let s0 = ServerId(0);
        let s1 = ServerId(1);
        cdn.servers[s0.index()].alive = false;
        let ips = [cdn.server(s0).ip, cdn.server(s1).ip];
        let out = fetch_page(&mut cdn, &catalog, &net.latency, &block, 0, &ips).unwrap();
        assert_eq!(out.server, s1);
    }

    #[test]
    fn all_dead_servers_fail_the_view() {
        let (net, mut cdn, catalog) = world();
        let block = net.blocks[0].clone();
        cdn.servers[0].alive = false;
        let ips = [cdn.server(ServerId(0)).ip];
        assert!(fetch_page(&mut cdn, &catalog, &net.latency, &block, 0, &ips).is_none());
        // Unknown IPs also fail.
        assert!(fetch_page(
            &mut cdn,
            &catalog,
            &net.latency,
            &block,
            0,
            &["9.9.9.9".parse().unwrap()]
        )
        .is_none());
    }

    #[test]
    fn closer_server_means_faster_download() {
        let (net, mut cdn, catalog) = world();
        let static_domain = catalog
            .domains
            .iter()
            .position(|d| !d.dynamic_base)
            .expect("catalog has a static domain") as u32;
        let block = net.blocks[0].clone();
        // Find nearest and farthest clusters to the client.
        let mut by_dist: Vec<_> = cdn
            .clusters
            .iter()
            .map(|c| (c.id, c.loc.distance_miles(&block.loc)))
            .collect();
        by_dist.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let near_server = cdn
            .cluster(by_dist.first().unwrap().0)
            .server_ids()
            .next()
            .unwrap();
        let far_server = cdn
            .cluster(by_dist.last().unwrap().0)
            .server_ids()
            .next()
            .unwrap();
        let near_ip = [cdn.server(near_server).ip];
        let far_ip = [cdn.server(far_server).ip];
        // Warm both caches first so the comparison is pure transport.
        for _ in 0..2 {
            let _ = fetch_page(
                &mut cdn,
                &catalog,
                &net.latency,
                &block,
                static_domain,
                &near_ip,
            );
            let _ = fetch_page(
                &mut cdn,
                &catalog,
                &net.latency,
                &block,
                static_domain,
                &far_ip,
            );
        }
        let near = fetch_page(
            &mut cdn,
            &catalog,
            &net.latency,
            &block,
            static_domain,
            &near_ip,
        )
        .unwrap();
        let far = fetch_page(
            &mut cdn,
            &catalog,
            &net.latency,
            &block,
            static_domain,
            &far_ip,
        )
        .unwrap();
        assert!(near.rtt_ms < far.rtt_ms);
        assert!(near.download_ms < far.download_ms);
        assert!(near.mapping_distance_miles < far.mapping_distance_miles);
    }

    #[test]
    fn relay_candidates_exclude_serving_cluster() {
        let (_, cdn, _) = world();
        let relays = relay_candidates(&cdn, eum_cdn::ClusterId(0), 4);
        assert!(!relays.is_empty());
        assert!(relays.iter().all(|c| *c != eum_cdn::ClusterId(0)));
        assert!(relays.len() <= 4);
    }
}
