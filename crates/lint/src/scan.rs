//! Lightweight Rust source scanning: comment/string-aware line blanking,
//! function-span and `#[cfg(test)]`-region tracking.
//!
//! This is *not* a parser. The linter only needs to know, for every line
//! of a file: (a) what the line's code text is with comment and string
//! contents blanked out (so `"format!"` inside a string never matches a
//! deny pattern), (b) what comment text rides on the line (justification
//! tags live there), (c) which `fn` body the line belongs to, and
//! (d) whether the line sits inside test-only code. A character-level
//! state machine plus a brace-depth token walk recovers all four without
//! any dependency on `syn` — the container has no crates.io access, and
//! the invariants checked here are token-shaped anyway.

/// One function item found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// The function's bare name (no path, no generics).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 1-based last line of the body (inclusive).
    pub end_line: usize,
    /// True when the fn sits inside a `#[cfg(test)]` module or carries a
    /// `#[test]` / `#[cfg(test)]` attribute itself.
    pub in_test: bool,
}

/// A scanned file: raw lines plus the derived per-line views.
#[derive(Debug)]
pub struct FileScan {
    /// Path label used in diagnostics (workspace-relative).
    pub path: String,
    /// The raw source lines.
    pub raw: Vec<String>,
    /// Source lines with comments and string/char contents blanked to
    /// spaces (delimiters kept, so token boundaries survive).
    pub code: Vec<String>,
    /// Comment text found on each line (block and line comments merged).
    pub comments: Vec<String>,
    /// True when the line's comment is a doc comment (`///` or `//!`).
    /// Justification tags are directives and only count in plain
    /// comments, so docs can *describe* the tag syntax without enacting it.
    pub comment_is_doc: Vec<bool>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnSpan>,
    /// For each line, the innermost enclosing fn (index into `fns`).
    line_fn: Vec<Option<usize>>,
    /// For each line, whether it sits inside test-only code.
    line_test: Vec<bool>,
}

impl FileScan {
    /// Scans `src`, labeling diagnostics with `path`.
    pub fn parse(path: &str, src: &str) -> FileScan {
        let (code, comments, comment_is_doc) = blank_comments_and_strings(src);
        let raw: Vec<String> = src.lines().map(str::to_string).collect();
        let n = raw.len();
        let (fns, line_test) = walk_items(&code);
        let mut line_fn = vec![None; n];
        // Innermost fn wins: later spans are either disjoint or nested
        // inside earlier ones, so assigning in span order and letting
        // narrower (nested, necessarily later-starting) spans overwrite
        // produces the innermost mapping.
        let mut order: Vec<usize> = (0..fns.len()).collect();
        order.sort_by_key(|&i| (fns[i].sig_line, std::cmp::Reverse(fns[i].end_line)));
        for i in order {
            let f = &fns[i];
            for l in f.sig_line..=f.end_line.min(n) {
                line_fn[l - 1] = Some(i);
            }
        }
        FileScan {
            path: path.to_string(),
            raw,
            code,
            comments,
            comment_is_doc,
            fns,
            line_fn,
            line_test,
        }
    }

    /// The innermost fn containing 1-based `line`, if any.
    pub fn fn_at(&self, line: usize) -> Option<&FnSpan> {
        self.fn_index_at(line).map(|i| &self.fns[i])
    }

    /// Index into [`FileScan::fns`] of the innermost fn containing `line`.
    pub fn fn_index_at(&self, line: usize) -> Option<usize> {
        self.line_fn.get(line - 1).copied().flatten()
    }

    /// True when 1-based `line` is inside test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.line_test.get(line - 1).copied().unwrap_or(false)
            || self.fn_at(line).is_some_and(|f| f.in_test)
    }
}

/// Character-level pass: returns, per line, the code text with comments
/// and string/char-literal contents blanked, and the comment text.
fn blank_comments_and_strings(src: &str) -> (Vec<String>, Vec<String>, Vec<bool>) {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        Block(u32),
        Str,
        RawStr(u8),
    }
    let mut state = St::Code;
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut doc_flags = Vec::new();
    for line in src.lines() {
        let b: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(b.len());
        let mut comment = String::new();
        let mut is_doc = false;
        let mut i = 0usize;
        while i < b.len() {
            match state {
                St::Block(depth) => {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        state = St::Block(depth + 1);
                        code.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        state = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        code.push_str("  ");
                        i += 2;
                    } else {
                        comment.push(b[i]);
                        code.push(' ');
                        i += 1;
                    }
                }
                St::Str => {
                    if b[i] == '\\' {
                        code.push_str("  ");
                        i += 2; // skip the escaped char (may run past EOL)
                    } else if b[i] == '"' {
                        state = St::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    if b[i] == '"'
                        && b[i + 1..]
                            .iter()
                            .take(hashes as usize)
                            .filter(|&&c| c == '#')
                            .count()
                            == hashes as usize
                    {
                        state = St::Code;
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                St::Code => {
                    let c = b[i];
                    if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
                        is_doc = i + 2 < b.len() && (b[i + 2] == '/' || b[i + 2] == '!');
                        comment.push_str(&line.chars().skip(i + 2).collect::<String>());
                        for _ in i..b.len() {
                            code.push(' ');
                        }
                        i = b.len();
                    } else if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        state = St::Block(1);
                        code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        state = St::Str;
                        code.push('"');
                        i += 1;
                    } else if (c == 'r' || c == 'b')
                        && !prev_is_ident(&b, i)
                        && raw_str_hashes(&b, i).is_some()
                    {
                        let (hashes, skip) = raw_str_hashes(&b, i).expect("checked");
                        state = St::RawStr(hashes);
                        for _ in 0..skip {
                            code.push(' ');
                        }
                        code.push('"');
                        i += skip + 1;
                    } else if c == '\'' {
                        // Char literal vs lifetime: a literal is 'x' or an
                        // escape; anything else ('a in generics) is a
                        // lifetime tick and stays code.
                        if i + 1 < b.len() && b[i + 1] == '\\' {
                            code.push('\'');
                            let mut j = i + 2;
                            while j < b.len() && b[j] != '\'' {
                                code.push(' ');
                                j += 1;
                            }
                            code.push_str(" '");
                            i = (j + 1).min(b.len());
                        } else if i + 2 < b.len() && b[i + 2] == '\'' {
                            code.push_str("'  ");
                            i += 3;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        code_lines.push(code);
        comment_lines.push(comment);
        doc_flags.push(is_doc);
    }
    (code_lines, comment_lines, doc_flags)
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// If `b[i..]` starts a raw (or raw-byte) string literal, returns
/// `(hash_count, chars before the opening quote)`.
fn raw_str_hashes(b: &[char], i: usize) -> Option<(u8, usize)> {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != 'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0u8;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == '"' {
        Some((hashes, j - i))
    } else {
        None
    }
}

/// Token walk over blanked code: recovers fn spans and test regions.
fn walk_items(code: &[String]) -> (Vec<FnSpan>, Vec<bool>) {
    let mut fns: Vec<FnSpan> = Vec::new();
    let mut line_test = vec![false; code.len()];

    let mut depth: i32 = 0;
    // Depths at which a #[cfg(test)] mod body opened.
    let mut test_depths: Vec<i32> = Vec::new();
    // Open fn bodies: (fns index, depth at which the body opened).
    let mut open_fns: Vec<(usize, i32)> = Vec::new();
    // Attribute state: a pending cfg(test)/test attribute applies to the
    // next `mod` or `fn` item.
    let mut pending_test_attr = false;
    // A `fn` whose name was read but whose body `{` (or `;`) has not
    // appeared yet: (fns index, true once we are between name and body).
    let mut pending_fn: Option<usize> = None;
    // A `mod` keyword seen, waiting for its `{` or `;`.
    let mut pending_mod = false;
    let mut pending_mod_test = false;
    // Set while the previous token was `fn`, to capture the name.
    let mut after_fn_kw = false;

    for (li, line) in code.iter().enumerate() {
        line_test[li] = !test_depths.is_empty();
        let trimmed = line.trim_start();
        if trimmed.starts_with('#') && trimmed.contains("cfg(") && trimmed.contains("test") {
            pending_test_attr = true;
        }
        if trimmed.starts_with("#[test]") || trimmed.starts_with("#[should_panic") {
            pending_test_attr = true;
        }
        for (ci, tok) in tokens(line) {
            match tok {
                Tok::Ident(w) => {
                    if after_fn_kw {
                        let in_test = !test_depths.is_empty()
                            || pending_test_attr
                            || open_fns.last().is_some_and(|&(i, _)| fns[i].in_test);
                        fns.push(FnSpan {
                            name: w.to_string(),
                            sig_line: li + 1,
                            end_line: li + 1,
                            in_test,
                        });
                        pending_fn = Some(fns.len() - 1);
                        pending_test_attr = false;
                        after_fn_kw = false;
                    } else if w == "fn" {
                        after_fn_kw = true;
                    } else if w == "mod" {
                        pending_mod = true;
                        pending_mod_test = pending_test_attr;
                        pending_test_attr = false;
                    }
                    let _ = ci;
                }
                Tok::Punct('{') => {
                    after_fn_kw = false;
                    depth += 1;
                    if let Some(fi) = pending_fn.take() {
                        open_fns.push((fi, depth));
                    } else if pending_mod {
                        if pending_mod_test {
                            test_depths.push(depth);
                        }
                        pending_mod = false;
                        pending_mod_test = false;
                    }
                }
                Tok::Punct('}') => {
                    if let Some(&(fi, d)) = open_fns.last() {
                        if d == depth {
                            fns[fi].end_line = li + 1;
                            open_fns.pop();
                        }
                    }
                    if test_depths.last() == Some(&depth) {
                        test_depths.pop();
                    }
                    depth -= 1;
                }
                Tok::Punct(';') => {
                    // Trait method without a body, or `mod foo;`.
                    pending_fn = None;
                    pending_mod = false;
                    pending_mod_test = false;
                    after_fn_kw = false;
                }
                Tok::Punct(_) => {
                    after_fn_kw = false;
                }
            }
        }
    }
    // Close anything left open at EOF.
    while let Some((fi, _)) = open_fns.pop() {
        fns[fi].end_line = code.len();
    }
    (fns, line_test)
}

/// One token of a blanked code line. Public so the call-graph extractor
/// ([`crate::graph`]) shares the item walker's exact tokenization.
pub enum Tok<'a> {
    Ident(&'a str),
    Punct(char),
}

/// Word/punct tokens of a blanked code line with byte columns (0-based).
/// Every non-identifier, non-space byte is a punct token so keyword state
/// (e.g. "the token right after `fn`") resets on any punctuation.
pub fn tokens(line: &str) -> impl Iterator<Item = (usize, Tok<'_>)> {
    let b = line.as_bytes();
    let mut i = 0usize;
    std::iter::from_fn(move || {
        while i < b.len() && (b[i] == b' ' || b[i] == b'\t') {
            i += 1;
        }
        if i >= b.len() {
            return None;
        }
        let start = i;
        if !(b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
            return Some((start, Tok::Punct(b[start] as char)));
        }
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        Some((start, Tok::Ident(&line[start..i])))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = r#"let x = "format!(no)"; // vec! here
let y = 'a'; /* .lock() */ let z = 1;"#;
        let s = FileScan::parse("t.rs", src);
        assert!(!s.code[0].contains("format!"));
        assert!(!s.code[0].contains("vec!"));
        assert!(s.comments[0].contains("vec! here"));
        assert!(!s.code[1].contains(".lock()"));
        assert!(s.code[1].contains("let z = 1;"));
        assert!(s.comments[1].contains(".lock()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = FileScan::parse("t.rs", "fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(s.code[0].contains("str"));
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "f");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = FileScan::parse("t.rs", "let x = r#\"panic!(\"no\")\"#; let ok = 2;");
        assert!(!s.code[0].contains("panic!"));
        assert!(s.code[0].contains("let ok = 2;"));
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() {\n    inner();\n}\n\nfn b() -> u32 {\n    7\n}\n";
        let s = FileScan::parse("t.rs", src);
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fn_at(2).map(|f| f.name.as_str()), Some("a"));
        assert_eq!(s.fn_at(6).map(|f| f.name.as_str()), Some("b"));
        assert_eq!(s.fn_at(4), None);
    }

    #[test]
    fn cfg_test_mod_marks_lines() {
        let src = "fn hot() { x(); }\n#[cfg(test)]\nmod tests {\n    fn helper() { y(); }\n}\n";
        let s = FileScan::parse("t.rs", src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(4));
        let helper = s.fns.iter().find(|f| f.name == "helper").expect("found");
        assert!(helper.in_test);
    }

    #[test]
    fn test_attr_marks_fn() {
        let src = "#[test]\nfn check() { assert!(true); }\nfn hot() {}\n";
        let s = FileScan::parse("t.rs", src);
        assert!(
            s.fns
                .iter()
                .find(|f| f.name == "check")
                .expect("found")
                .in_test
        );
        assert!(
            !s.fns
                .iter()
                .find(|f| f.name == "hot")
                .expect("found")
                .in_test
        );
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let s = FileScan::parse("t.rs", "type F = fn(u32) -> u32;\nfn real() {}\n");
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "real");
    }
}
