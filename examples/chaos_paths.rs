//! Microbenchmark for the three serve-path cost classes the chaos
//! engine's calibration reasons about: a cache-busting flood query
//! against an undefended authd (two upstream exchanges plus the
//! mapping compute), the same query shed by admission control (one
//! REFUSED exchange), and a warm legitimate hit (resolver-cached, no
//! upstream traffic).
//!
//! Run with: `cargo run --release --example chaos_paths`

use end_user_mapping::authd::{
    channel_transports, AdmissionConfig, AuthServer, ChannelClient, ServerConfig, SnapshotHandle,
};
use end_user_mapping::chaos::ChaosWorld;
use end_user_mapping::ldns::{EcsPolicy, Ldns, LdnsConfig};
use std::time::Instant;

/// Enough iterations to average over scheduler noise while staying
/// below the resolver cache's insert-churn cliff (one resolver
/// absorbing tens of thousands of one-shot names starts paying
/// eviction costs the chaos scenarios never see — their flood spreads
/// across the whole fleet).
const N: usize = 8000;

fn main() {
    let world = ChaosWorld::build(0x000C_4A05);

    for (label, admission) in [
        ("undefended flood (full path)", None),
        (
            "shed flood (REFUSED path)",
            Some(AdmissionConfig::new(0, 1)),
        ),
    ] {
        let (transports, connector) = channel_transports(1);
        let mut cfg = ServerConfig::new(world.top_ip);
        if let Some(adm) = admission {
            cfg = cfg.with_admission(adm);
        }
        let server = AuthServer::spawn(
            transports,
            SnapshotHandle::new(world.map.clone_for_publish()),
            cfg,
        );
        let mut client = ChannelClient::new(connector);
        let epoch = Instant::now();
        let r = &world.net.resolvers[0];
        let mut ldns = Ldns::new(LdnsConfig::new(r.ip, EcsPolicy::Always), epoch);
        let src = world.net.blocks[0].client_ip();

        let t0 = Instant::now();
        for i in 0..N {
            let qname = format!("x{i:016x}.cdn.example").parse().unwrap();
            ldns.resolve(&mut client, 0, world.top_ip, &qname, src, epoch);
        }
        let per = t0.elapsed().as_nanos() as u64 / N as u64;
        println!("{label:>30}: {per:>6} ns/query");
        drop(client);
        server.stop_join();
    }

    // Warm legit hit: resolve once cold, then time repeats.
    let (transports, connector) = channel_transports(1);
    let server = AuthServer::spawn(
        transports,
        SnapshotHandle::new(world.map.clone_for_publish()),
        ServerConfig::new(world.top_ip),
    );
    let mut client = ChannelClient::new(connector);
    let epoch = Instant::now();
    let r = &world.net.resolvers[0];
    let mut ldns = Ldns::new(LdnsConfig::new(r.ip, EcsPolicy::Always), epoch);
    let src = world.net.blocks[0].client_ip();
    let hot: end_user_mapping::dns::DnsName = "www-0.cdn.example".parse().unwrap();
    ldns.resolve(&mut client, 0, world.top_ip, &hot, src, epoch);
    let t0 = Instant::now();
    for _ in 0..N {
        ldns.resolve(&mut client, 0, world.top_ip, &hot, src, epoch);
    }
    let per = t0.elapsed().as_nanos() as u64 / N as u64;
    println!("{:>30}: {per:>6} ns/query", "warm legit hit");
    drop(client);
    server.stop_join();
}
