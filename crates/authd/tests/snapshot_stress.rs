//! Snapshot generation-swap stress: serving threads drive [`ShardState`]
//! directly (no sockets) while the main thread publishes new map
//! generations through the shared [`SnapshotHandle`]. Each thread pins
//! that every reply is well-formed, matches exactly the answer the
//! generation it grabbed computes, and that observed generations never go
//! backwards — a torn publish, a cache surviving a swap, or an answer
//! mixing two maps all fail these assertions.

//! Two complementary checks live in this binary:
//!
//! * the nondeterministic stress below — real shard threads serving real
//!   queries across snapshot swaps;
//! * model-checked variants (bottom of the file) — the *same source
//!   file* `src/epoch.rs` is `#[path]`-included against the eum-mcheck
//!   modeled atomics and the publication/reader protocol is explored
//!   exhaustively, including the unpaired-prime race the module's audit
//!   documents (and a regression reproducing it).
//!
//! The expensive exhaustive configuration runs under
//! `EUM_MCHECK_EXHAUSTIVE=1`; the default bound keeps `cargo test -q`
//! fast.

use eum_authd::{
    AnswerCache, CacheConfig, QueryStages, ReplyCap, ServeOutcome, ShardState, Snapshot,
    SnapshotHandle,
};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, Message, QueryContext, Question, Rcode};
use eum_mapping::{MapDelta, MappingConfig, MappingSystem};
use eum_mcheck as mcheck;
use eum_netmodel::{Internet, InternetConfig};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x5AB;

/// Deterministic world; every call yields an identical map.
fn world() -> (Internet, CdnPlatform, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, cdn, map)
}

fn answer_ips(map: &MappingSystem, server: Ipv4Addr, query: &Message) -> Vec<Ipv4Addr> {
    let ctx = QueryContext {
        resolver_ip: Ipv4Addr::LOCALHOST,
        now_ms: 0,
    };
    let resp = map.answer(server, query, &ctx);
    assert_eq!(resp.flags.rcode, Rcode::NoError);
    let mut ips = resp.answer_ips();
    ips.sort_unstable();
    ips
}

/// One probe plus the exact answer each published generation computes.
struct Probe {
    payload: Vec<u8>,
    id: u16,
    /// `expect[g - 1]` is the sorted answer set generation `g` serves.
    expect: Vec<Vec<Ipv4Addr>>,
}

#[test]
fn generation_swaps_under_concurrent_serving_stay_consistent() {
    // Four identical worlds: one to serve as generation 1, one (with a
    // cluster killed) as generation 2, one as generation 3, and one kept
    // aside purely to precompute what generations 1/3 answer.
    let (net, _cdn, map1) = world();
    let (_n2, mut cdn2, mut map2) = world();
    let (_n3, _c3, map3) = world();
    let low = map1.ns_ips()[1];

    let probe_blocks: Vec<_> = net.blocks.iter().take(24).map(|b| b.client_ip()).collect();
    let victim = probe_blocks
        .iter()
        .find_map(|ip| map1.assigned_cluster_for_block(eum_geo::Prefix::of(*ip, 24)))
        .expect("some probe block maps to a cluster");
    cdn2.set_cluster_alive(victim, false);
    map2.refresh_liveness(&cdn2);

    let mut probes = Vec::new();
    for (i, client) in probe_blocks.iter().take(6).enumerate() {
        let id = 0x6000 + i as u16;
        let q = Message::query(
            id,
            Question::a("e0.cdn.example".parse().unwrap()),
            Some(OptData::with_ecs(EcsOption::query(*client, 24))),
        );
        let e1 = answer_ips(&map1, low, &q);
        let e2 = answer_ips(&map2, low, &q);
        probes.push(Probe {
            payload: encode_message(&q),
            id,
            // Generation 3 republishes a fresh identical world, so its
            // answers equal generation 1's.
            expect: vec![e1.clone(), e2, e1],
        });
    }
    assert!(
        probes.iter().any(|p| p.expect[0] != p.expect[1]),
        "the killed cluster must change at least one probe's answer"
    );
    let probes = Arc::new(probes);

    let snapshots = SnapshotHandle::new(map1);
    let done = Arc::new(AtomicBool::new(false));

    let mut workers = Vec::new();
    for t in 0..4usize {
        let probes = probes.clone();
        let snapshots = snapshots.clone();
        let done = done.clone();
        workers.push(std::thread::spawn(move || {
            let mut state = ShardState::new(Some(CacheConfig::default()));
            let mut stages = QueryStages::new(false);
            let mut last_gen = 0u64;
            let mut served = 0u64;
            let mut pass = 0usize;
            while !done.load(Ordering::Acquire) || last_gen < 3 {
                let snap: Arc<Snapshot> = snapshots.current();
                assert!(
                    snap.generation >= last_gen,
                    "generation went backwards: {} after {last_gen}",
                    snap.generation
                );
                last_gen = snap.generation;
                state.observe(&snap);
                // Stagger the probe order per thread and per pass so the
                // cache sees both hits and misses around each swap.
                for i in 0..probes.len() {
                    let probe = &probes[(t + pass + i) % probes.len()];
                    let outcome = state.serve(
                        &snap.map,
                        low,
                        Ipv4Addr::LOCALHOST,
                        &probe.payload,
                        ReplyCap::udp(),
                        &mut stages,
                    );
                    assert!(
                        matches!(outcome, ServeOutcome::Replied { .. }),
                        "probe {:#06x} got {outcome:?}",
                        probe.id
                    );
                    let resp = decode_message(state.reply()).expect("reply must decode");
                    assert_eq!(resp.id, probe.id);
                    assert_eq!(resp.flags.rcode, Rcode::NoError);
                    let mut ips = resp.answer_ips();
                    ips.sort_unstable();
                    let want = &probe.expect[(snap.generation - 1) as usize];
                    assert_eq!(
                        ips, *want,
                        "generation {} answered {ips:?}, expected {want:?}",
                        snap.generation
                    );
                    served += 1;
                }
                pass += 1;
            }
            assert!(
                state.generations_seen() >= 2,
                "worker never observed a swap (saw {})",
                state.generations_seen()
            );
            served
        }));
    }

    // Let generation 1 serve, then swap twice under load.
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(snapshots.publish(map2), 2);
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(snapshots.publish(map3), 3);
    std::thread::sleep(Duration::from_millis(30));
    done.store(true, Ordering::Release);

    let mut total = 0u64;
    for w in workers {
        total += w.join().expect("worker thread");
    }
    assert!(total > 0, "workers served nothing");
    assert_eq!(snapshots.generation(), 3);
}

// ---------------------------------------------------------------------
// Model-checked variants
// ---------------------------------------------------------------------

/// Atomics surface the `#[path]`-included copy of `src/epoch.rs`
/// compiles against: the eum-mcheck modeled primitives instead of the
/// production facade, so every atomic op and lock below is a schedule
/// point.
mod msync {
    pub use eum_mcheck::modeled::{AtomicU64, Mutex};
    pub use std::sync::atomic::Ordering;
}

/// The real publication-cell source, re-bound against the modeled
/// atomics. This is the same text the crate compiles — not a replica —
/// so the model verdict applies to the shipped `EpochCell`.
#[path = "../src/epoch.rs"]
#[allow(dead_code)]
mod epoch_model;

/// Default: exhaustive at 2 preemptions (the checker's default bound).
/// `EUM_MCHECK_EXHAUSTIVE=1` raises the bound and the execution budget.
fn model_cfg() -> mcheck::Config {
    if mcheck::exhaustive() {
        mcheck::Config::bounded(3, 10_000_000)
    } else {
        mcheck::Config::bounded(2, 2_000_000)
    }
}

/// The tentpole invariant, exhaustively: the payload *is* the epoch it
/// was published at (exactly how `SnapshotHandle` keeps `generation` in
/// lockstep with the cell epoch), so a reader whose value disagrees with
/// `seen_epoch()` has seen a snapshot inconsistent with the epoch it
/// loaded. No interleaving of one publication against a reader priming
/// and revalidating may break the pairing.
#[test]
fn model_reader_value_always_matches_loaded_epoch() {
    let report = mcheck::verify("epoch-cell-paired-reader", &model_cfg(), || {
        let cell = Arc::new(epoch_model::EpochCell::new(Arc::new(1u64)));
        let publisher = {
            let cell = cell.clone();
            mcheck::spawn(move || {
                cell.publish_with(|cur| Arc::new(**cur + 1));
            })
        };
        let mut r = epoch_model::EpochCell::reader(&cell);
        let (v, e) = (**r.get(), r.seen_epoch());
        assert_eq!(v, e, "prime paired a stale value with a newer epoch");
        // A second read may observe the publication mid-flight; the
        // pairing must hold again.
        let (v, e) = (**r.get(), r.seen_epoch());
        assert_eq!(v, e, "revalidation paired a stale value with a newer epoch");
        publisher.join();
        // Post-join the publication is ordered before us: one read must
        // land on it.
        let (v, e) = (**r.get(), r.seen_epoch());
        assert_eq!((v, e), (2, 2), "reader missed a joined publication");
    });
    eprintln!(
        "epoch-cell model: {} executions, complete = {}",
        report.executions, report.complete
    );
    assert!(
        report.complete,
        "state space must be fully explored within the bound"
    );
}

/// The race `src/epoch.rs`'s audit documents, re-introduced: the old
/// `SnapshotHandle::reader` cloned the slot and *then* loaded the epoch,
/// outside the mutex. A publication landing between the two primes a
/// reader at the new epoch with the old value cached — permanently
/// stale until the next publication. The model checker must find that
/// interleaving; `read_paired` exists because of this report.
#[test]
fn reader_epoch_slot_pairing_regression() {
    let failure = mcheck::expect_failure("epoch-cell-unpaired-prime", &model_cfg(), || {
        let cell = Arc::new(epoch_model::EpochCell::new(Arc::new(1u64)));
        let publisher = {
            let cell = cell.clone();
            mcheck::spawn(move || {
                cell.publish_with(|cur| Arc::new(**cur + 1));
            })
        };
        // The buggy prime: slot first, epoch second, no mutex across.
        let cached = cell.current();
        let seen_epoch = cell.epoch();
        assert_eq!(
            *cached, seen_epoch,
            "unpaired prime cached a stale value at a newer epoch"
        );
        publisher.join();
    });
    assert!(
        failure
            .message
            .contains("unpaired prime cached a stale value"),
        "failure must be the pairing assertion, got: {}",
        failure.message
    );
    assert!(
        !failure.schedule.is_empty(),
        "failure report must print the interleaving"
    );
    eprintln!("minimized failing interleaving (expected, regression guard):\n{failure}");
}

/// What one publication carries to the shard caches: its generation and
/// the delta naming the mapping units whose answers changed.
struct GenInfo {
    generation: u64,
    delta: Option<Arc<MapDelta>>,
}

/// A cached entry carrying one A answer with an ECS response scope /24.
fn model_entry() -> eum_authd::CachedAnswer {
    use eum_dns::edns::{EcsOption as Ecs, OptData};
    let q = Message::query(
        7,
        Question::a("e0.cdn.example".parse().unwrap()),
        Some(OptData::with_ecs(Ecs::query(
            "10.1.2.3".parse().unwrap(),
            24,
        ))),
    );
    let mut resp = Message::response_to(&q, Rcode::NoError);
    resp.answers.push(eum_dns::Record::a(
        "e0.cdn.example".parse().unwrap(),
        300,
        [9, 9, 9, 9].into(),
    ));
    resp.set_opt(OptData::with_ecs(Ecs::response(q.ecs().unwrap(), 24)));
    eum_authd::CachedAnswer::from_response(&resp, 300, std::time::Instant::now())
}

/// The tentpole invariant, exhaustively: keyed eviction never serves a
/// stale answer across a delta publication. A real (unmodified)
/// [`AnswerCache`] rides on the modeled [`epoch_model::EpochCell`]; a
/// publisher ships generation 2 with a delta naming one scope block
/// while the shard inserts, observes, and looks up. Once the shard has
/// observed generation 2, the delta-named entry must miss and the
/// untouched one must still hit — in every interleaving of the
/// publication against the shard's reads.
#[test]
fn model_keyed_eviction_never_serves_stale_across_delta_publication() {
    let report = mcheck::verify("answer-cache-keyed-eviction", &model_cfg(), || {
        let qname: eum_dns::DnsName = "e0.cdn.example".parse().unwrap();
        let dirty_block: eum_geo::Prefix = "10.1.2.0/24".parse().unwrap();
        let clean_block: eum_geo::Prefix = "10.1.3.0/24".parse().unwrap();
        let dirty_client: Ipv4Addr = "10.1.2.77".parse().unwrap();
        let clean_client: Ipv4Addr = "10.1.3.77".parse().unwrap();
        let rr = eum_dns::RrType::A;
        let now = std::time::Instant::now();

        let cell = Arc::new(epoch_model::EpochCell::new(Arc::new(GenInfo {
            generation: 1,
            delta: None,
        })));
        let publisher = {
            let cell = cell.clone();
            mcheck::spawn(move || {
                let delta = Arc::new(MapDelta::from_dirty(&["10.1.2.0/24".parse().unwrap()], &[]));
                cell.publish_with(|cur| {
                    Arc::new(GenInfo {
                        generation: cur.generation + 1,
                        delta: Some(delta.clone()),
                    })
                });
            })
        };

        // The serving shard: exactly `ShardState::observe`'s protocol —
        // on a generation change, transition the cache with the delta.
        let mut reader = epoch_model::EpochCell::reader(&cell);
        let mut cache = AnswerCache::new(CacheConfig::default());
        let mut last_gen = 0u64;
        let observe = |cache: &mut AnswerCache,
                       reader: &mut epoch_model::EpochReader<GenInfo>,
                       last_gen: &mut u64| {
            let g = reader.get();
            let generation = g.generation;
            assert_eq!(
                generation,
                reader.seen_epoch(),
                "generation inconsistent with the loaded epoch"
            );
            if generation != *last_gen {
                let delta = reader.get().delta.clone();
                cache.begin_generation(delta.as_ref());
                *last_gen = generation;
            }
            generation
        };

        // Cache both answers under whatever generation is current.
        let inserted_at = observe(&mut cache, &mut reader, &mut last_gen);
        cache.insert_scoped(qname.clone(), rr, dirty_block, model_entry());
        cache.insert_scoped(qname.clone(), rr, clean_block, model_entry());

        // One mid-flight observation: if the publication has landed, the
        // delta-named entry must already be gone.
        let seen = observe(&mut cache, &mut reader, &mut last_gen);
        if seen > inserted_at {
            assert!(
                cache
                    .lookup_scoped(&qname, rr, dirty_client, 24, now)
                    .is_none(),
                "stale answer served across the delta publication"
            );
            assert!(
                cache
                    .lookup_scoped(&qname, rr, clean_client, 24, now)
                    .is_some(),
                "keyed eviction dropped an unaffected entry"
            );
        }

        publisher.join();

        // The publication is now ordered before us; the shard must
        // observe generation 2 and the delta must take effect.
        let final_gen = observe(&mut cache, &mut reader, &mut last_gen);
        assert_eq!(final_gen, 2, "shard missed the joined publication");
        let dirty_hit = cache
            .lookup_scoped(&qname, rr, dirty_client, 24, now)
            .is_some();
        let clean_hit = cache
            .lookup_scoped(&qname, rr, clean_client, 24, now)
            .is_some();
        if inserted_at == 1 {
            assert!(
                !dirty_hit,
                "stale answer served across the delta publication"
            );
        } else {
            // Entries inserted after the delta was observed postdate it.
            assert!(dirty_hit, "fresh post-delta entry must still hit");
        }
        assert!(clean_hit, "keyed eviction dropped an unaffected entry");
    });
    eprintln!(
        "keyed-eviction model: {} executions, complete = {}",
        report.executions, report.complete
    );
    assert!(
        report.complete,
        "state space must be fully explored within the bound"
    );
}
