#!/usr/bin/env bash
# Records a PR's benchmark numbers into BENCH_<pr>.json.
#
#   scripts/bench_record.sh [pr3|pr5|pr6] [out.json]
#
# * pr3 — the serve-path zero-allocation rewrite: runs the `wire` bench
#   (alloc-free codec + shard serve paths + geo lookup) and writes the
#   figures next to the frozen pre-change baselines (measured at commit
#   00b8dbf, before the rewrite) so the speedups are auditable from the
#   JSON alone.
# * pr5 (default) — the eum-ldns resolver subsystem: runs the `ldns`
#   bench (ECS-partitioned cache lookup/insert, timer-wheel steady-state
#   churn, and a warm cached resolve). The subsystem is new in PR 5, so
#   there is no pre-change baseline; absolute ns/op are recorded.
# * pr6 — the eum-net kernel-batched socket transport: runs the
#   multi-process `socket_loadgen` example (real SO_REUSEPORT shards,
#   separate client processes) and records the batched
#   recvmmsg/sendmmsg configuration against the single-socket
#   `recv_from` baseline measured in the same run.
# * pr8 — incremental map publication: runs the `rebuild` bench and
#   records the from-scratch rebuild against incremental rebuilds at
#   ~1% and ~10% hinted unit churn, both measured in the same run (the
#   equivalence suite proves the outputs identical; the speedup is the
#   whole point of the PR and must be >= 5x at 1% churn).
# * pr10 — adversarial workloads vs admission control: runs the full
#   `chaos_lab` scenario suite live (fleet vs authd, defenses off then
#   on at identical offered load) and records every scenario's A/B
#   outcome. The acceptance floor — NXDOMAIN-flood defenses hold >= 2x
#   legit goodput at a lower legit p99 — is asserted here, not just in
#   the example's own gate.

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-pr5}"
case "$mode" in
  pr3) default_out="BENCH_pr3.json"; bench="wire" ;;
  pr5) default_out="BENCH_pr5.json"; bench="ldns" ;;
  pr6) default_out="BENCH_pr6.json"; bench="" ;;
  pr8) default_out="BENCH_pr8.json"; bench="rebuild" ;;
  pr10) default_out="BENCH_pr10.json"; bench="" ;;
  *) echo "usage: $0 [pr3|pr5|pr6|pr8|pr10] [out.json]" >&2; exit 2 ;;
esac
out="${2:-$default_out}"

if [ "$mode" = "pr6" ]; then
  cargo build --release --example socket_loadgen >&2
  raw="$(./target/release/examples/socket_loadgen | tee /dev/stderr)"

  # "RESULT mode=batched qps=198307 p50_us=248.7 ..." -> one field.
  result_of() {
    echo "$raw" | awk -v mode="$1" -v key="$2" '
      $1 == "RESULT" && $2 == "mode=" mode {
        for (i = 3; i <= NF; i++) {
          n = split($i, kv, "=")
          if (n == 2 && kv[1] == key) print kv[2]
        }
      }'
  }

  fields="qps p50_us p99_us ok err served shards workers window"
  declare -A single batched
  for f in $fields; do
    single[$f]="$(result_of single "$f")"
    batched[$f]="$(result_of batched "$f")"
    [ -n "${single[$f]}" ] && [ -n "${batched[$f]}" ] ||
      { echo "failed to parse loadgen output ($f)" >&2; exit 1; }
  done

  python3 - "$out" \
    "${single[qps]}" "${single[p50_us]}" "${single[p99_us]}" \
    "${batched[qps]}" "${batched[p50_us]}" "${batched[p99_us]}" \
    "${single[ok]}" "${single[shards]}" "${single[workers]}" "${single[window]}" <<'EOF'
import json, sys
out = sys.argv[1]
s_qps, s_p50, s_p99, b_qps, b_p50, b_p99, ok, shards, workers, window = map(
    float, sys.argv[2:]
)
json.dump(
    {
        "pr": 6,
        "bench": "eum-net kernel-batched socket transport "
        "(SO_REUSEPORT + recvmmsg/sendmmsg vs single-socket recv_from)",
        "workload": {
            "worker_processes": int(workers),
            "in_flight_window_per_worker": int(window),
            "server_shards": int(shards),
            "verified_exchanges": int(ok),
            "trials": "best of 5 per mode, interleaved",
        },
        "single_socket": {"qps": s_qps, "p50_us": s_p50, "p99_us": s_p99},
        "batched": {"qps": b_qps, "p50_us": b_p50, "p99_us": b_p99},
        "speedup_qps": round(b_qps / s_qps, 2) if s_qps else None,
    },
    open(out, "w"),
    indent=2,
)
print(file=open(out, "a"))
print(f"wrote {out}: batched {b_qps:.0f} q/s vs single {s_qps:.0f} q/s "
      f"({b_qps / s_qps:.2f}x)")
EOF
  exit 0
fi

if [ "$mode" = "pr10" ]; then
  cargo build --release --example chaos_lab >&2
  raw="$(./target/release/examples/chaos_lab | tee /dev/stderr)"

  # "RESULT mode=pr10 scenario=nxdomain_flood goodput_off=... " lines,
  # one per scenario, into a JSON object keyed by scenario. (Passed via
  # the environment: the heredoc already owns python's stdin.)
  CHAOS_RESULTS="$(echo "$raw" | grep "^RESULT mode=pr10 ")" \
    python3 - "$out" <<'EOF'
import json, os, sys

out = sys.argv[1]
scenarios = {}
for line in os.environ["CHAOS_RESULTS"].splitlines():
    fields = dict(kv.split("=", 1) for kv in line.split()[1:])
    name = fields.pop("scenario")
    fields.pop("mode", None)
    scenarios[name] = {
        k: (int(v) if v.lstrip("-").isdigit() else float(v))
        for k, v in fields.items()
    }

flood = scenarios.get("nxdomain_flood")
assert flood, "chaos_lab emitted no nxdomain_flood RESULT line"
assert flood["goodput_ratio"] >= 2.0, (
    f"flood defenses must hold >= 2x legit goodput, got "
    f"{flood['goodput_ratio']}x"
)
assert flood["p99_on_us"] < flood["p99_off_us"], (
    f"flood defenses must cut the legit p99 tail: on "
    f"{flood['p99_on_us']} us vs off {flood['p99_off_us']} us"
)
assert flood["shed_on"] > 0, "defended flood arm shed nothing"

json.dump(
    {
        "pr": 10,
        "bench": "eum-chaos adversarial scenario suite, defenses off vs "
        "on at identical offered load (fleet vs authd, live; per-window "
        "ground truth in results/chaos_lab.jsonl)",
        "floor": {
            "scenario": "nxdomain_flood",
            "goodput_ratio_min": 2.0,
            "p99_legit": "defended below undefended",
        },
        "scenarios": scenarios,
    },
    open(out, "w"),
    indent=2,
)
print(file=open(out, "a"))
print(
    f"wrote {out}: flood goodput ratio {flood['goodput_ratio']}x, "
    f"p99 {flood['p99_off_us']} -> {flood['p99_on_us']} us"
)
EOF
  exit 0
fi

raw="$(cargo bench -p eum-bench --bench "$bench" 2>&1 | tee /dev/stderr)"

# "name  time: [  389.7 ns/iter] ..." -> ns as a plain number (µs * 1000).
ns_of() {
  echo "$raw" | awk -v name="$1" '
    $1 == name && /time:/ {
      for (i = 1; i <= NF; i++) if ($i == "time:") { v = $(i+2); u = $(i+3); }
      sub(/\/iter\]/, "", u)
      if (u == "µs" || u == "us") v *= 1000
      if (u == "ms") v *= 1000000
      printf "%.1f", v
    }'
}

if [ "$mode" = "pr3" ]; then
  hit=$(ns_of authd_cached_hit_serve_path)
  miss=$(ns_of authd_cold_miss_serve_path)
  enc=$(ns_of encode_a_response_into)
  dec=$(ns_of decode_a_response_into)
  geo=$(ns_of geo_lookup)

  for v in "$hit" "$miss" "$enc" "$dec" "$geo"; do
    [ -n "$v" ] || { echo "failed to parse bench output" >&2; exit 1; }
  done

  python3 - "$out" "$hit" "$miss" "$enc" "$dec" "$geo" <<'EOF'
import json, sys
out, hit, miss, enc, dec, geo = sys.argv[1], *map(float, sys.argv[2:])
baseline = {
    # Measured at 00b8dbf with benches of identical shape (the cached-hit
    # path replicated the then-current decode -> lookup-clone -> rebuild
    # -> encode replay; codec numbers are dns_codec's allocating wrappers).
    "authd_cached_hit_ns": 2198.0,
    "authd_cold_miss_ns": 2314.0,
    "wire_encode_ns": 853.3,
    "wire_decode_ns": 972.4,
    "geo_lookup_ns": 56.0,
}
current = {
    "authd_cached_hit_ns": hit,
    "authd_cold_miss_ns": miss,
    "wire_encode_ns": enc,
    "wire_decode_ns": dec,
    "geo_lookup_ns": geo,
}
speedup = {k: round(baseline[k] / v, 2) if v else None for k, v in current.items()}
json.dump(
    {
        "pr": 3,
        "bench": "serve-path zero-allocation rewrite",
        "baseline_commit": "00b8dbf",
        "baseline_ns": baseline,
        "current_ns": current,
        "speedup": speedup,
    },
    open(out, "w"),
    indent=2,
)
print(file=open(out, "a"))
print(f"wrote {out}: cached-hit speedup {speedup['authd_cached_hit_ns']}x")
EOF
elif [ "$mode" = "pr8" ]; then
  full=$(ns_of rebuild_full)
  inc1=$(ns_of rebuild_incremental_1pct)
  inc10=$(ns_of rebuild_incremental_10pct)

  for v in "$full" "$inc1" "$inc10"; do
    [ -n "$v" ] || { echo "failed to parse bench output" >&2; exit 1; }
  done

  python3 - "$out" "$full" "$inc1" "$inc10" <<'EOF'
import json, sys
out, full, inc1, inc10 = sys.argv[1], *map(float, sys.argv[2:])
speedup_1pct = round(full / inc1, 2) if inc1 else None
speedup_10pct = round(full / inc10, 2) if inc10 else None
json.dump(
    {
        "pr": 8,
        "bench": "incremental map rebuild + delta publication vs "
        "from-scratch rebuild (identical outputs, see "
        "crates/mapping/tests/incremental_equiv.rs)",
        "current_ns": {
            "rebuild_full_ns": full,
            "rebuild_incremental_1pct_ns": inc1,
            "rebuild_incremental_10pct_ns": inc10,
        },
        "speedup_1pct": speedup_1pct,
        "speedup_10pct": speedup_10pct,
    },
    open(out, "w"),
    indent=2,
)
print(file=open(out, "a"))
assert speedup_1pct and speedup_1pct >= 5.0, (
    f"incremental rebuild at 1% churn must be >= 5x faster, got {speedup_1pct}x"
)
print(f"wrote {out}: incremental 1% churn {speedup_1pct}x, 10% {speedup_10pct}x")
EOF
else
  lookup=$(ns_of ldns_cache_lookup_scoped_hit)
  insert=$(ns_of ldns_cache_insert_scoped)
  wheel=$(ns_of ldns_wheel_insert_advance_steady)
  resolve=$(ns_of ldns_cached_resolve_hit)

  for v in "$lookup" "$insert" "$wheel" "$resolve"; do
    [ -n "$v" ] || { echo "failed to parse bench output" >&2; exit 1; }
  done

  python3 - "$out" "$lookup" "$insert" "$wheel" "$resolve" <<'EOF'
import json, sys
out, lookup, insert, wheel, resolve = sys.argv[1], *map(float, sys.argv[2:])
json.dump(
    {
        "pr": 5,
        "bench": "eum-ldns resolver-side serve path (new subsystem, no baseline)",
        "current_ns": {
            "ldns_cache_lookup_scoped_hit_ns": lookup,
            "ldns_cache_insert_scoped_ns": insert,
            "ldns_wheel_insert_advance_steady_ns": wheel,
            "ldns_cached_resolve_hit_ns": resolve,
        },
    },
    open(out, "w"),
    indent=2,
)
print(file=open(out, "a"))
print(f"wrote {out}: cached resolve {resolve:.1f} ns/op")
EOF
fi
