//! Fixed-width text tables.
//!
//! Every `repro` binary prints its figure's series as an aligned text table
//! so the output can be eyeballed against the paper and diffed between
//! runs. Alignment is computed per column; numbers are typically
//! pre-formatted by the caller.

/// A simple fixed-width table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are right-padded with
    /// empty cells; longer rows extend the column count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: header, separator, rows; columns padded to the
    /// widest cell, two spaces between columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }

        let render_row = |row: &[String]| -> String {
            let mut out = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let pad = width - cell.chars().count();
                out.push_str(cell);
                if i + 1 < ncols {
                    out.extend(std::iter::repeat_n(' ', pad + 2));
                }
            }
            // Trailing spaces on the last column are never emitted.
            out
        };

        let mut s = String::new();
        s.push_str(&render_row(&self.header));
        s.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1);
        s.extend(std::iter::repeat_n('-', total));
        s.push('\n');
        for r in &self.rows {
            s.push_str(&render_row(r));
            s.push('\n');
        }
        s
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["country", "median"]);
        t.row(["IN", "1523.4"]);
        t.row(["US", "88.0"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("country"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Both data rows start their second column at the same offset.
        let col = |line: &str| line.find("1523").or_else(|| line.find("88.0")).unwrap();
        assert_eq!(col(lines[2]), col(lines[3]));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        let out = t.render();
        assert!(out.lines().count() == 3);
    }

    #[test]
    fn long_rows_extend_columns() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2", "3"]);
        assert!(t.render().lines().nth(2).unwrap().contains('3'));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["x", "y"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn no_trailing_whitespace_on_rows() {
        let mut t = Table::new(["col", "x"]);
        t.row(["a", "b"]);
        for line in t.render().lines() {
            assert_eq!(line, line.trim_end());
        }
    }
}
