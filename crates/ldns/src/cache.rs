//! The resolver-side answer cache, ECS-partitioned per RFC 7871 §7.3.
//!
//! This is the other half of the cache pair whose authoritative side
//! lives in `eum_authd::cache`: where the authoritative memoizes what it
//! *announced* per scope block, the resolver must partition what it
//! *received* by the same blocks — an answer tagged scope `/y` may only
//! be served to clients inside the `/y` block it was fetched for
//! (§7.3.1), and a scope-0 answer is globally reusable. The reuse
//! semantics are deliberately identical to the authd-side cache and are
//! checked against the same oracle in `tests/cache_prop.rs`.
//!
//! Three answer shapes share one table ([`AnswerBody`]):
//!
//! * **Addresses** — positive A answers, expiring at the record TTL.
//! * **Negative** — NXDOMAIN / NODATA per RFC 2308, expiring at the SOA
//!   minimum (clamped by configuration).
//! * **Failure** — upstream SERVFAIL or exhausted retries, cached for a
//!   short fixed TTL (RFC 2308 §7.1) so a dead authoritative is not
//!   hammered.
//!
//! Expiry is driven by the hierarchical [`TimerWheel`](crate::wheel):
//! every insert arms the entry's key, [`ResolverCache::advance`] reaps
//! due keys in O(elapsed + expired), and lookups still double-check the
//! deadline so a stale answer can never leave the resolver even between
//! advances. The lookup/insert/advance trio is under `lint.toml` hot-fn
//! discipline like the authd serve path.

use crate::wheel::TimerWheel;
use eum_dns::{DnsName, Rcode, RrType};
use eum_geo::Prefix;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

/// Cache sizing and negative-TTL policy.
#[derive(Debug, Clone, Copy)]
pub struct LdnsCacheConfig {
    /// Maximum entries (FIFO eviction beyond this).
    pub max_entries: usize,
    /// Independent FIFO bound on negative entries ([`AnswerBody::Negative`]
    /// and [`AnswerBody::Failure`]). Negatives still count toward
    /// `max_entries`, but once this many are live the oldest *negative*
    /// is evicted first — a random-subdomain NXDOMAIN flood can occupy at
    /// most this many slots and can never push the positive working set
    /// out through the shared capacity bound.
    pub max_negative_entries: usize,
    /// TTL for cached upstream failures, seconds (RFC 2308 §7.1 caps
    /// SERVFAIL caching at 5 minutes).
    pub servfail_ttl_s: u32,
    /// Upper bound on negative-answer TTLs, seconds — an SOA minimum
    /// above this is clamped (RFC 2308 §5 recommends 1–3 h tops).
    pub max_negative_ttl_s: u32,
}

impl Default for LdnsCacheConfig {
    fn default() -> Self {
        LdnsCacheConfig {
            max_entries: 65_536,
            max_negative_entries: 8_192,
            servfail_ttl_s: 30,
            max_negative_ttl_s: 3_600,
        }
    }
}

/// What a cached entry answers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerBody {
    /// Positive answer: the A records' addresses.
    Addresses(Vec<Ipv4Addr>),
    /// RFC 2308 negative answer (`NxDomain`, or `NoError` for NODATA).
    Negative(Rcode),
    /// Upstream failure (SERVFAIL / retries exhausted), briefly cached.
    Failure,
}

/// One cached answer with its expiry bookkeeping.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The answer itself.
    pub body: AnswerBody,
    /// The announced ECS scope this entry was partitioned by (0 for
    /// global entries).
    pub scope: u8,
    created: Instant,
    expires: Instant,
    orig_ttl_s: u32,
}

impl CacheEntry {
    /// An entry expiring `ttl_s` after `now`.
    pub fn new(body: AnswerBody, scope: u8, ttl_s: u32, now: Instant) -> CacheEntry {
        CacheEntry {
            body,
            scope,
            created: now,
            expires: now + Duration::from_secs(ttl_s as u64),
            orig_ttl_s: ttl_s,
        }
    }

    /// True once the TTL has run out.
    pub fn expired(&self, now: Instant) -> bool {
        now >= self.expires
    }

    /// Seconds of TTL left (0 when expired) — what a downstream client
    /// would see in a served answer.
    pub fn remaining_ttl_s(&self, now: Instant) -> u32 {
        self.orig_ttl_s
            .saturating_sub(now.saturating_duration_since(self.created).as_secs() as u32)
    }

    /// When the entry expires (the wheel arms on this).
    pub fn expires_at(&self) -> Instant {
        self.expires
    }
}

/// Cache key: global entries answer any client, scoped entries only
/// clients inside their block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// Scope-0 / no-ECS answers, negatives, failures, and delegations.
    Global(DnsName, RrType),
    /// Positive answers partitioned by announced scope block.
    Scoped(DnsName, RrType, Prefix),
}

/// Per-cache counters, cumulative over the cache's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdnsCacheStats {
    /// Hits by the hit entry's scope length (`[0]` counts global hits).
    pub hits_by_scope: [u64; 33],
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries reaped by the timer wheel (TTL-expiry churn).
    pub expirations: u64,
    /// Lookups that found only an expired entry between wheel advances
    /// (dropped on the spot, counted in `misses` too).
    pub stale_drops: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Negative entries evicted by the independent negative bound
    /// (`max_negative_entries`), not counted in `evictions`.
    pub negative_evictions: u64,
}

impl Default for LdnsCacheStats {
    fn default() -> LdnsCacheStats {
        LdnsCacheStats {
            hits_by_scope: [0; 33],
            misses: 0,
            insertions: 0,
            expirations: 0,
            stale_drops: 0,
            evictions: 0,
            negative_evictions: 0,
        }
    }
}

impl LdnsCacheStats {
    /// Total hits across all scope lengths.
    pub fn hits(&self) -> u64 {
        self.hits_by_scope.iter().sum()
    }

    /// Hits over lookups, 0.0 when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits() + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits() as f64 / total as f64
    }
}

/// The ECS-partitioned resolver cache with timer-wheel expiry.
pub struct ResolverCache {
    cfg: LdnsCacheConfig,
    map: HashMap<CacheKey, CacheEntry>,
    wheel: TimerWheel<CacheKey>,
    /// Insertion order for FIFO capacity eviction.
    order: std::collections::VecDeque<CacheKey>,
    /// Insertion order of live negative/failure entries only, for the
    /// independent negative bound. Invariant: a key is here iff its map
    /// entry exists and its body is `Negative`/`Failure` (maintained on
    /// every removal and on body-class flips at replacement).
    neg_order: std::collections::VecDeque<CacheKey>,
    /// Live scoped-entry count per scope length; lookups probe only
    /// lengths actually present.
    scope_lens: [u32; 33],
    stats: LdnsCacheStats,
}

impl ResolverCache {
    /// An empty cache whose wheel epoch is `now`.
    pub fn new(cfg: LdnsCacheConfig, now: Instant) -> ResolverCache {
        ResolverCache {
            cfg,
            map: HashMap::new(),
            wheel: TimerWheel::new(now),
            order: std::collections::VecDeque::new(),
            neg_order: std::collections::VecDeque::new(),
            scope_lens: [0; 33],
            stats: LdnsCacheStats::default(),
        }
    }

    /// Drops every live entry at once — a resolver reload. The wheel is
    /// re-epoched at `now`; the cumulative [`LdnsCacheStats`] keep
    /// counting across the flush (a flush is an operational event, not a
    /// statistics reset).
    pub fn clear(&mut self, now: Instant) {
        self.map.clear();
        self.order.clear();
        self.neg_order.clear();
        self.scope_lens = [0; 33];
        self.wheel = TimerWheel::new(now);
    }

    /// Looks up an answer for `client`, probing scoped entries from the
    /// most to the least specific length present — but never longer than
    /// `source_prefix` (the prefix this resolver would announce; 0 when
    /// ECS is off, which skips the scoped table entirely) — and falling
    /// back to the global entry. Expired entries are dropped, never
    /// served.
    pub fn lookup(
        &mut self,
        qname: &DnsName,
        qtype: RrType,
        client: Ipv4Addr,
        source_prefix: u8,
        now: Instant,
    ) -> Option<&CacheEntry> {
        let mut hit: Option<CacheKey> = None;
        for len in (1..=source_prefix.min(32)).rev() {
            // lint: allow(serve-index) — len ≤ 32 by the loop bound; the table has 33 slots
            if self.scope_lens[len as usize] == 0 {
                continue;
            }
            // DnsName is inline; cloning into a probe key is a flat copy.
            let key = CacheKey::Scoped(qname.clone(), qtype, Prefix::of(client, len));
            match self.map.get(&key) {
                Some(e) if !e.expired(now) => {
                    hit = Some(key);
                    break;
                }
                Some(_) => self.drop_stale(&key),
                None => {}
            }
        }
        if hit.is_none() {
            let key = CacheKey::Global(qname.clone(), qtype);
            match self.map.get(&key) {
                Some(e) if !e.expired(now) => hit = Some(key),
                Some(_) => self.drop_stale(&key),
                None => {}
            }
        }
        match hit {
            Some(key) => {
                let entry = self.map.get(&key);
                if let Some(e) = entry {
                    // lint: allow(serve-index) — scope ≤ 32 by construction; the table has 33 slots
                    self.stats.hits_by_scope[e.scope.min(32) as usize] += 1;
                }
                entry
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts an answer: `scope_block` carries the announced-scope
    /// partition for positive ECS answers; `None` stores a global entry
    /// (scope 0, no ECS, negatives, failures, delegations). The entry's
    /// key is armed on the timer wheel at its deadline.
    pub fn insert(
        &mut self,
        qname: DnsName,
        qtype: RrType,
        scope_block: Option<Prefix>,
        entry: CacheEntry,
    ) {
        let neg = is_negative(&entry);
        // The negative class is bounded on its own: an NXDOMAIN flood
        // churns this FIFO and only this FIFO.
        if neg {
            while self.neg_order.len() >= self.cfg.max_negative_entries.max(1) {
                match self.neg_order.pop_front() {
                    Some(oldest) => {
                        if self.map.remove(&oldest).is_some() {
                            // Not on_removed: negatives are never scoped,
                            // and the key just left neg_order.
                            self.order.retain(|k| k != &oldest);
                            self.stats.negative_evictions += 1;
                        }
                    }
                    None => break,
                }
            }
        }
        while self.map.len() >= self.cfg.max_entries.max(1) {
            match self.order.pop_front() {
                Some(oldest) => {
                    if let Some(old) = self.map.remove(&oldest) {
                        self.on_removed(&oldest, &old);
                        self.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
        let key = match scope_block {
            Some(p) => CacheKey::Scoped(qname, qtype, p),
            None => CacheKey::Global(qname, qtype),
        };
        if let CacheKey::Scoped(_, _, p) = &key {
            // lint: allow(serve-index) — prefix length ≤ 32; the table has 33 slots
            self.scope_lens[p.len() as usize] += 1;
        }
        self.wheel.insert(entry.expires, key.clone());
        match self.map.insert(key.clone(), entry) {
            None => {
                if neg {
                    self.neg_order.push_back(key.clone());
                }
                self.order.push_back(key);
            }
            Some(old) => {
                if let CacheKey::Scoped(_, _, p) = &key {
                    // Replaced in place: undo the double count.
                    // lint: allow(serve-index) — prefix length ≤ 32; the table has 33 slots
                    self.scope_lens[p.len() as usize] -= 1;
                }
                // A key flipping answer class (name starts or stops
                // existing) moves between FIFOs; a same-class refresh
                // keeps its original position, like `order` does.
                let was_neg = is_negative(&old);
                if was_neg && !neg {
                    self.neg_order.retain(|k| k != &key);
                } else if neg && !was_neg {
                    self.neg_order.push_back(key);
                }
            }
        }
        self.stats.insertions += 1;
    }

    /// Reaps entries whose wheel deadline has passed, using `scratch` as
    /// the reusable drain buffer. An entry that was refreshed since its
    /// key was armed is re-armed at its new deadline instead of dropped.
    /// Returns how many entries actually expired.
    pub fn advance(&mut self, now: Instant, scratch: &mut Vec<CacheKey>) -> u64 {
        scratch.clear();
        self.wheel.advance(now, scratch);
        let mut reaped = 0u64;
        for key in scratch.drain(..) {
            match self.map.get(&key) {
                Some(e) if e.expired(now) => {
                    if let Some(old) = self.map.remove(&key) {
                        self.on_removed(&key, &old);
                    }
                    self.order.retain(|k| k != &key);
                    reaped += 1;
                }
                // Refreshed after arming: fire again at the new deadline.
                Some(e) => {
                    let expires = e.expires;
                    self.wheel.insert(expires, key);
                }
                // Already evicted or stale-dropped.
                None => {}
            }
        }
        self.stats.expirations += reaped;
        reaped
    }

    /// Drops an entry found expired during a lookup.
    fn drop_stale(&mut self, key: &CacheKey) {
        if let Some(old) = self.map.remove(key) {
            self.on_removed(key, &old);
            self.order.retain(|k| k != key);
            self.stats.stale_drops += 1;
        }
    }

    /// Bookkeeping for an entry just removed from the map: scope-length
    /// counts and the negative FIFO stay consistent with the map.
    fn on_removed(&mut self, key: &CacheKey, entry: &CacheEntry) {
        if let CacheKey::Scoped(_, _, p) = key {
            // lint: allow(serve-index) — prefix length ≤ 32; the table has 33 slots
            self.scope_lens[p.len() as usize] -= 1;
        }
        if is_negative(entry) {
            self.neg_order.retain(|k| k != key);
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Live negative/failure entries (the independently bounded class).
    pub fn negative_len(&self) -> usize {
        self.neg_order.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> LdnsCacheStats {
        self.stats
    }
}

/// True for the answer classes governed by the negative bound.
fn is_negative(entry: &CacheEntry) -> bool {
    matches!(entry.body, AnswerBody::Negative(_) | AnswerBody::Failure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_dns::name::name;

    fn addrs(ip: [u8; 4]) -> AnswerBody {
        AnswerBody::Addresses(vec![ip.into()])
    }

    fn cache(now: Instant) -> ResolverCache {
        ResolverCache::new(LdnsCacheConfig::default(), now)
    }

    #[test]
    fn scoped_entry_serves_only_its_block() {
        let t0 = Instant::now();
        let mut c = cache(t0);
        c.insert(
            name("e0.cdn.example"),
            RrType::A,
            Some("10.1.2.0/24".parse().unwrap()),
            CacheEntry::new(addrs([9, 9, 9, 9]), 24, 60, t0),
        );
        assert!(c
            .lookup(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.77".parse().unwrap(),
                24,
                t0
            )
            .is_some());
        assert!(c
            .lookup(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.3.77".parse().unwrap(),
                24,
                t0
            )
            .is_none());
        assert_eq!(c.stats().hits_by_scope[24], 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn global_entry_serves_every_client_even_with_ecs_off() {
        let t0 = Instant::now();
        let mut c = cache(t0);
        c.insert(
            name("e0.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(addrs([9, 9, 9, 9]), 0, 60, t0),
        );
        for (client, sp) in [("10.1.2.3", 24u8), ("172.16.9.9", 0)] {
            assert!(c
                .lookup(
                    &name("e0.cdn.example"),
                    RrType::A,
                    client.parse().unwrap(),
                    sp,
                    t0
                )
                .is_some());
        }
        assert_eq!(c.stats().hits_by_scope[0], 2);
    }

    #[test]
    fn longest_containing_scope_wins() {
        let t0 = Instant::now();
        let mut c = cache(t0);
        c.insert(
            name("e0.cdn.example"),
            RrType::A,
            Some("10.1.0.0/16".parse().unwrap()),
            CacheEntry::new(addrs([1, 1, 1, 1]), 16, 60, t0),
        );
        c.insert(
            name("e0.cdn.example"),
            RrType::A,
            Some("10.1.2.0/24".parse().unwrap()),
            CacheEntry::new(addrs([2, 2, 2, 2]), 24, 60, t0),
        );
        let got = c
            .lookup(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.5".parse().unwrap(),
                24,
                t0,
            )
            .unwrap();
        assert_eq!(got.scope, 24);
        let got = c
            .lookup(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.9.5".parse().unwrap(),
                24,
                t0,
            )
            .unwrap();
        assert_eq!(got.scope, 16);
    }

    #[test]
    fn source_prefix_bounds_the_probe() {
        // A /24-scoped entry must not serve a resolver announcing /16 —
        // the §7.3.1 `/y ≤ /x` guarantee survives caching.
        let t0 = Instant::now();
        let mut c = cache(t0);
        c.insert(
            name("e0.cdn.example"),
            RrType::A,
            Some("10.1.2.0/24".parse().unwrap()),
            CacheEntry::new(addrs([9, 9, 9, 9]), 24, 60, t0),
        );
        assert!(c
            .lookup(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.77".parse().unwrap(),
                16,
                t0
            )
            .is_none());
    }

    #[test]
    fn wheel_advance_reaps_expired_entries() {
        let t0 = Instant::now();
        let mut c = cache(t0);
        c.insert(
            name("e0.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(addrs([9, 9, 9, 9]), 0, 5, t0),
        );
        c.insert(
            name("e1.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(addrs([8, 8, 8, 8]), 0, 500, t0),
        );
        let mut scratch = Vec::new();
        assert_eq!(c.advance(t0 + Duration::from_secs(4), &mut scratch), 0);
        assert_eq!(c.advance(t0 + Duration::from_secs(10), &mut scratch), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn lookup_never_serves_stale_between_advances() {
        let t0 = Instant::now();
        let mut c = cache(t0);
        c.insert(
            name("e0.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(addrs([9, 9, 9, 9]), 0, 5, t0),
        );
        // No advance has run; the entry is past deadline anyway.
        let got = c.lookup(
            &name("e0.cdn.example"),
            RrType::A,
            "10.0.0.1".parse().unwrap(),
            0,
            t0 + Duration::from_secs(6),
        );
        assert!(got.is_none());
        assert_eq!(c.stats().stale_drops, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn refreshed_entry_survives_its_old_deadline() {
        let t0 = Instant::now();
        let mut c = cache(t0);
        c.insert(
            name("e0.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(addrs([9, 9, 9, 9]), 0, 5, t0),
        );
        // Refreshed with a longer TTL before the old deadline fires.
        c.insert(
            name("e0.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(addrs([9, 9, 9, 9]), 0, 60, t0 + Duration::from_secs(2)),
        );
        let mut scratch = Vec::new();
        assert_eq!(c.advance(t0 + Duration::from_secs(10), &mut scratch), 0);
        assert!(c
            .lookup(
                &name("e0.cdn.example"),
                RrType::A,
                "10.0.0.1".parse().unwrap(),
                0,
                t0 + Duration::from_secs(10)
            )
            .is_some());
        // The re-armed deadline still fires.
        assert_eq!(c.advance(t0 + Duration::from_secs(70), &mut scratch), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn remaining_ttl_decrements_and_saturates() {
        let t0 = Instant::now();
        let e = CacheEntry::new(addrs([9, 9, 9, 9]), 0, 60, t0);
        assert_eq!(e.remaining_ttl_s(t0), 60);
        assert_eq!(e.remaining_ttl_s(t0 + Duration::from_secs(10)), 50);
        assert_eq!(e.remaining_ttl_s(t0 + Duration::from_secs(1000)), 0);
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let t0 = Instant::now();
        let mut c = ResolverCache::new(
            LdnsCacheConfig {
                max_entries: 2,
                ..LdnsCacheConfig::default()
            },
            t0,
        );
        for i in 0..3u8 {
            c.insert(
                name(&format!("e{i}.cdn.example")),
                RrType::A,
                None,
                CacheEntry::new(addrs([i, i, i, i]), 0, 60, t0),
            );
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c
            .lookup(
                &name("e0.cdn.example"),
                RrType::A,
                "10.0.0.1".parse().unwrap(),
                0,
                t0
            )
            .is_none());
        assert!(c
            .lookup(
                &name("e2.cdn.example"),
                RrType::A,
                "10.0.0.1".parse().unwrap(),
                0,
                t0
            )
            .is_some());
    }

    #[test]
    fn negative_bound_evicts_oldest_negative_first() {
        let t0 = Instant::now();
        let mut c = ResolverCache::new(
            LdnsCacheConfig {
                max_negative_entries: 2,
                ..LdnsCacheConfig::default()
            },
            t0,
        );
        for i in 0..3u8 {
            c.insert(
                name(&format!("n{i}.cdn.example")),
                RrType::A,
                None,
                CacheEntry::new(AnswerBody::Negative(Rcode::NxDomain), 0, 60, t0),
            );
        }
        assert_eq!(c.negative_len(), 2);
        assert_eq!(c.stats().negative_evictions, 1);
        assert_eq!(c.stats().evictions, 0, "the shared bound never fired");
        assert!(c
            .lookup(
                &name("n0.cdn.example"),
                RrType::A,
                "10.0.0.1".parse().unwrap(),
                0,
                t0
            )
            .is_none());
        assert!(c
            .lookup(
                &name("n2.cdn.example"),
                RrType::A,
                "10.0.0.1".parse().unwrap(),
                0,
                t0
            )
            .is_some());
    }

    #[test]
    fn nxdomain_flood_cannot_evict_the_positive_working_set() {
        let t0 = Instant::now();
        let mut c = ResolverCache::new(
            LdnsCacheConfig {
                max_entries: 64,
                max_negative_entries: 8,
                ..LdnsCacheConfig::default()
            },
            t0,
        );
        for i in 0..16u8 {
            c.insert(
                name(&format!("e{i}.cdn.example")),
                RrType::A,
                None,
                CacheEntry::new(addrs([10, 0, 0, i]), 0, 600, t0),
            );
        }
        // A cache-busting flood: 1000 distinct names, all NXDOMAIN. With
        // a shared-only bound these would churn every positive entry out;
        // the negative bound caps their footprint at 8 slots.
        for i in 0..1000u32 {
            c.insert(
                name(&format!("x{i:06x}.cdn.example")),
                RrType::A,
                None,
                CacheEntry::new(AnswerBody::Negative(Rcode::NxDomain), 0, 60, t0),
            );
        }
        assert_eq!(c.negative_len(), 8);
        assert_eq!(c.stats().negative_evictions, 1000 - 8);
        assert_eq!(c.stats().evictions, 0);
        for i in 0..16u8 {
            assert!(
                c.lookup(
                    &name(&format!("e{i}.cdn.example")),
                    RrType::A,
                    "10.0.0.1".parse().unwrap(),
                    0,
                    t0
                )
                .is_some(),
                "positive e{i} must survive the flood"
            );
        }
    }

    #[test]
    fn failure_entries_share_the_negative_bound() {
        let t0 = Instant::now();
        let mut c = ResolverCache::new(
            LdnsCacheConfig {
                max_negative_entries: 1,
                ..LdnsCacheConfig::default()
            },
            t0,
        );
        c.insert(
            name("f0.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(AnswerBody::Failure, 0, 30, t0),
        );
        c.insert(
            name("f1.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(AnswerBody::Negative(Rcode::NxDomain), 0, 60, t0),
        );
        assert_eq!(c.negative_len(), 1);
        assert_eq!(c.stats().negative_evictions, 1);
    }

    #[test]
    fn answer_class_flips_move_between_fifos() {
        let t0 = Instant::now();
        let mut c = ResolverCache::new(
            LdnsCacheConfig {
                max_negative_entries: 4,
                ..LdnsCacheConfig::default()
            },
            t0,
        );
        // Name starts out nonexistent...
        c.insert(
            name("e0.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(AnswerBody::Negative(Rcode::NxDomain), 0, 60, t0),
        );
        assert_eq!(c.negative_len(), 1);
        // ...then comes into existence: the entry leaves the negative FIFO.
        c.insert(
            name("e0.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(addrs([9, 9, 9, 9]), 0, 60, t0),
        );
        assert_eq!(c.negative_len(), 0);
        assert_eq!(c.len(), 1);
        // ...and stops existing again: back under the negative bound.
        c.insert(
            name("e0.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(AnswerBody::Negative(Rcode::NxDomain), 0, 60, t0),
        );
        assert_eq!(c.negative_len(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn expiry_and_stale_drops_release_negative_slots() {
        let t0 = Instant::now();
        let mut c = ResolverCache::new(
            LdnsCacheConfig {
                max_negative_entries: 2,
                ..LdnsCacheConfig::default()
            },
            t0,
        );
        c.insert(
            name("n0.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(AnswerBody::Negative(Rcode::NxDomain), 0, 5, t0),
        );
        c.insert(
            name("n1.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(AnswerBody::Negative(Rcode::NxDomain), 0, 500, t0),
        );
        let mut scratch = Vec::new();
        assert_eq!(c.advance(t0 + Duration::from_secs(10), &mut scratch), 1);
        assert_eq!(c.negative_len(), 1);
        // The freed slot is usable without evicting the survivor.
        c.insert(
            name("n2.cdn.example"),
            RrType::A,
            None,
            CacheEntry::new(AnswerBody::Negative(Rcode::NxDomain), 0, 60, t0),
        );
        assert_eq!(c.negative_len(), 2);
        assert_eq!(c.stats().negative_evictions, 0);
    }
}
