//! Benchmark the authoritative hot path: what one DNS query costs the
//! mapping system's name servers (the paper's frontend served 1.6M qps).

use criterion::{criterion_group, criterion_main, Criterion};
use eum_bench::{tiny_internet, BENCH_SEED};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{Message, QueryContext, Question};
use eum_mapping::{MappingConfig, MappingSystem};
use std::hint::black_box;

fn world() -> (eum_netmodel::Internet, CdnPlatform, MappingSystem) {
    let mut net = tiny_internet();
    let sites = deployment_universe(BENCH_SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(BENCH_SEED));
    let mapping = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, cdn, mapping)
}

fn bench_handle(c: &mut Criterion) {
    let (net, _cdn, mut mapping) = world();
    let ldns = net.resolvers[0].ip;
    let client = net.blocks[0].client_ip();
    let ctx = QueryContext {
        resolver_ip: ldns,
        now_ms: 0,
    };
    let top = mapping.top_level_ip();
    let low = mapping.ns_ips()[1];

    let plain = Message::query(1, Question::a("e0.cdn.example".parse().unwrap()), None);
    let ecs = Message::query(
        2,
        Question::a("e0.cdn.example".parse().unwrap()),
        Some(OptData::with_ecs(EcsOption::query(client, 24))),
    );
    let whoami = Message::query(3, Question::a(mapping.whoami_name()), None);

    c.bench_function("handle_top_level_delegation", |b| {
        b.iter(|| mapping.handle(black_box(top), black_box(&plain), &ctx))
    });
    c.bench_function("handle_low_level_ns_answer", |b| {
        b.iter(|| mapping.handle(black_box(low), black_box(&plain), &ctx))
    });
    c.bench_function("handle_low_level_ecs_answer", |b| {
        b.iter(|| mapping.handle(black_box(low), black_box(&ecs), &ctx))
    });
    c.bench_function("handle_whoami", |b| {
        b.iter(|| mapping.handle(black_box(low), black_box(&whoami), &ctx))
    });
}

fn bench_rebuild(c: &mut Criterion) {
    let (net, cdn, mut mapping) = world();
    let mut group = c.benchmark_group("map_refresh");
    group.sample_size(10);
    group.bench_function("rebuild_tiny", |b| b.iter(|| mapping.rebuild(&net, &cdn)));
    group.finish();
}

criterion_group!(benches, bench_handle, bench_rebuild);
criterion_main!(benches);
