//! Serving-path instrumentation.
//!
//! [`TelemetryConfig`] hangs a shared [`Registry`] (and optionally a
//! [`TraceRing`]) off [`crate::ServerConfig`]. Each shard registers its
//! handles once at spawn — counters and gauges labeled `shard="<idx>"`,
//! stage histograms striped one stripe per shard — and from then on the
//! per-query path touches nothing but `&self` atomics through `Arc`s: no
//! lock is ever taken while serving.
//!
//! Cache counters are bridged by delta: the [`crate::AnswerCache`] keeps
//! its own cumulative [`crate::AnswerCacheStats`] (it is single-owner,
//! plain `u64`s), and after every query the shard adds the difference
//! since the previous query to the registry counters. That keeps the
//! cache free of atomics while the exported counters stay cumulative
//! across generation swaps.

use crate::cache::AnswerCacheStats;
use eum_telemetry::{Counter, Gauge, Histogram, Registry, TraceRing};
use std::sync::Arc;

/// Observability knobs for [`crate::ServerConfig`].
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Registry every shard registers its instruments in.
    pub registry: Arc<Registry>,
    /// Ring receiving sampled per-query traces (`None`: no tracing).
    /// The 1-in-N sampling rate lives on the ring itself
    /// ([`TraceRing::sample_every`]) so it can be adjusted at runtime;
    /// shards consult it per query.
    pub trace: Option<Arc<TraceRing>>,
}

impl TelemetryConfig {
    /// Metrics only, no tracing.
    pub fn metrics(registry: Arc<Registry>) -> TelemetryConfig {
        TelemetryConfig {
            registry,
            trace: None,
        }
    }

    /// Adds a trace ring sampling every `every`-th query per shard
    /// (0 disables sampling until raised via
    /// [`TraceRing::set_sample_every`]). The rate is mirrored into the
    /// `eum_trace_sample_rate` gauge so span stitching can correct
    /// sampled counts.
    pub fn with_trace(mut self, ring: Arc<TraceRing>, every: u64) -> TelemetryConfig {
        ring.set_sample_every(every);
        eum_telemetry::export_trace_sample_rate(&self.registry, &ring);
        self.trace = Some(ring);
        self
    }
}

/// The serve-path stage histograms, one family per stage, striped one
/// stripe per shard so concurrent shards never share a cache line.
pub(crate) struct StageHistograms {
    pub decode: Arc<Histogram>,
    pub cache: Arc<Histogram>,
    pub route: Arc<Histogram>,
    pub encode: Arc<Histogram>,
    pub serve: Arc<Histogram>,
}

/// One shard's registered instrument handles plus the last cache-stats
/// snapshot used for delta bridging.
pub(crate) struct ShardInstruments {
    pub shard: usize,
    pub queries: Arc<Counter>,
    pub formerr: Arc<Counter>,
    pub dropped: Arc<Counter>,
    pub truncated: Arc<Counter>,
    /// Queries shed by admission control (REFUSED replies).
    pub shed: Arc<Counter>,
    /// Compute-path queries admitted past the token bucket.
    pub admitted: Arc<Counter>,
    pub cache_hits: Arc<Counter>,
    pub cache_misses: Arc<Counter>,
    pub cache_evictions: Arc<Counter>,
    pub cache_insertions: Arc<Counter>,
    pub cache_scoped_insertions: Arc<Counter>,
    pub cache_generation_clears: Arc<Counter>,
    /// Keyed (per-unit) invalidations driven by published map deltas.
    pub map_cache_invalidations: Arc<Counter>,
    /// Whole-cache clears forced when no usable delta was published.
    pub map_cache_clears: Arc<Counter>,
    pub cache_entries: Arc<Gauge>,
    /// Global (unlabeled): every shard sets the same published generation.
    pub generation: Arc<Gauge>,
    pub stages: StageHistograms,
    prev_cache: AnswerCacheStats,
}

impl ShardInstruments {
    /// Registers (or re-fetches — registration is idempotent) every
    /// instrument shard `shard` of `shards` uses.
    pub fn register(reg: &Registry, shard: usize, shards: usize) -> ShardInstruments {
        let s = shard.to_string();
        let l: &[(&str, &str)] = &[("shard", &s)];
        let stage = |name: &str, help: &str| reg.histogram_striped(name, help, &[], shards);
        ShardInstruments {
            shard,
            queries: reg.counter("eum_authd_queries_total", "Datagrams answered", l),
            formerr: reg.counter("eum_authd_formerr_total", "Datagrams answered FORMERR", l),
            dropped: reg.counter(
                "eum_authd_dropped_total",
                "Datagrams dropped as undecodable",
                l,
            ),
            truncated: reg.counter(
                "eum_authd_truncated_total",
                "Replies truncated to the client's UDP payload limit (TC=1)",
                l,
            ),
            shed: reg.counter(
                "eum_authd_shed_total",
                "Queries shed by admission control (REFUSED, compute path over budget)",
                l,
            ),
            admitted: reg.counter(
                "eum_authd_admitted_total",
                "Compute-path queries admitted past the token bucket",
                l,
            ),
            cache_hits: reg.counter(
                "eum_authd_cache_hits_total",
                "Answer-cache lookups served from cache",
                l,
            ),
            cache_misses: reg.counter(
                "eum_authd_cache_misses_total",
                "Answer-cache lookups that computed the answer",
                l,
            ),
            cache_evictions: reg.counter(
                "eum_authd_cache_evictions_total",
                "Answer-cache entries evicted by the capacity bound",
                l,
            ),
            cache_insertions: reg.counter(
                "eum_authd_cache_insertions_total",
                "Answer-cache entries inserted",
                l,
            ),
            cache_scoped_insertions: reg.counter(
                "eum_authd_cache_scoped_insertions_total",
                "Answer-cache insertions keyed by ECS scope block",
                l,
            ),
            cache_generation_clears: reg.counter(
                "eum_authd_cache_generation_clears_total",
                "Cache clears forced by snapshot generation swaps",
                l,
            ),
            map_cache_invalidations: reg.counter(
                "eum_mapping_cache_invalidations_total",
                "Answer-cache entries evicted one-by-one because their mapping \
                 unit appeared in a published map delta",
                l,
            ),
            map_cache_clears: reg.counter(
                "eum_mapping_cache_clears_total",
                "Whole-cache generational clears (publication without a usable delta)",
                l,
            ),
            cache_entries: reg.gauge("eum_authd_cache_entries", "Live answer-cache entries", l),
            generation: reg.gauge(
                "eum_authd_snapshot_generation",
                "Published map snapshot generation being served",
                &[],
            ),
            stages: StageHistograms {
                decode: stage("eum_authd_stage_decode_ns", "Wire-decode time per query"),
                cache: stage(
                    "eum_authd_stage_cache_ns",
                    "Answer-cache probe time per query",
                ),
                route: stage(
                    "eum_authd_stage_route_ns",
                    "Snapshot route (mapping answer) time per query",
                ),
                encode: stage(
                    "eum_authd_stage_encode_ns",
                    "Response encode time per query",
                ),
                serve: stage(
                    "eum_authd_serve_ns",
                    "Whole serve path per query, receive to send",
                ),
            },
            prev_cache: AnswerCacheStats::default(),
        }
    }

    /// Adds the change since the last call to the exported cache counters
    /// and refreshes the live-entry gauge.
    pub fn sync_cache(&mut self, now: AnswerCacheStats, entries: usize) {
        let prev = self.prev_cache;
        self.cache_hits.add(now.hits - prev.hits);
        self.cache_misses.add(now.misses - prev.misses);
        self.cache_evictions.add(now.evictions - prev.evictions);
        self.cache_insertions.add(now.insertions - prev.insertions);
        self.cache_scoped_insertions
            .add(now.scoped_insertions - prev.scoped_insertions);
        self.cache_generation_clears
            .add(now.generation_clears - prev.generation_clears);
        self.map_cache_invalidations
            .add(now.keyed_invalidations - prev.keyed_invalidations);
        self.map_cache_clears
            .add(now.generation_clears - prev.generation_clears);
        self.prev_cache = now;
        self.cache_entries.set(entries as f64);
    }

    /// Records one query's stage timings into the shard's stripes.
    pub fn record_stages(&self, decode: u64, cache: u64, route: u64, encode: u64, total: u64) {
        self.stages.decode.record_at(self.shard, decode);
        self.stages.cache.record_at(self.shard, cache);
        self.stages.route.record_at(self.shard, route);
        self.stages.encode.record_at(self.shard, encode);
        self.stages.serve.record_at(self.shard, total);
    }
}
