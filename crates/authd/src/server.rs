//! The sharded authoritative serving loop.
//!
//! [`AuthServer::spawn`] starts one OS thread per transport shard. Each
//! shard owns its transport endpoint and its [`AnswerCache`] outright —
//! the only shared state is the [`SnapshotHandle`] (cloned `Arc` per
//! query) and the relaxed live counters, so shards never contend on a
//! lock in the steady state. Per query a shard:
//!
//! 1. receives one RFC 1035 datagram,
//! 2. grabs the current map snapshot (clearing its cache if the
//!    generation changed since the last query),
//! 3. decodes, consults the ECS-aware cache, computes the answer through
//!    [`eum_mapping::MappingSystem::answer`] on a miss,
//! 4. encodes and replies.
//!
//! Malformed packets get a FORMERR when the header is intact (so the ID
//! can be echoed) and are dropped otherwise, like a production server.

use crate::cache::{AnswerCache, AnswerCacheStats, CacheConfig, CachedAnswer};
use crate::snapshot::SnapshotHandle;
use crate::transport::ServerTransport;
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, DnsName, Message, QueryContext, Rcode};
use eum_geo::Prefix;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The authoritative IP a shard serves when the transport does not
    /// carry one per datagram (UDP mode).
    pub default_server_ip: Ipv4Addr,
    /// Per-shard answer-cache bounds; `None` disables caching entirely
    /// (every query routes through the snapshot).
    pub cache: Option<CacheConfig>,
    /// How long `recv` blocks before re-checking the stop flag.
    pub recv_timeout: Duration,
}

impl ServerConfig {
    /// Defaults with the given fallback server IP.
    pub fn new(default_server_ip: Ipv4Addr) -> ServerConfig {
        ServerConfig {
            default_server_ip,
            cache: Some(CacheConfig::default()),
            recv_timeout: Duration::from_millis(20),
        }
    }

    /// Same config with caching disabled.
    pub fn without_cache(mut self) -> ServerConfig {
        self.cache = None;
        self
    }
}

/// Live counters one shard exposes while running (relaxed atomics; read
/// by reporters, written only by the owning shard).
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Datagrams answered.
    pub queries: AtomicU64,
    /// Answers served from the shard cache.
    pub cache_hits: AtomicU64,
    /// Datagrams that failed to decode.
    pub malformed: AtomicU64,
}

/// What a shard reports when joined.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Datagrams answered (including FORMERR replies).
    pub queries: u64,
    /// Datagrams dropped as undecodable without a usable header.
    pub dropped: u64,
    /// Datagrams answered FORMERR.
    pub malformed: u64,
    /// Cache counters (zeros when the cache is disabled).
    pub cache: AnswerCacheStats,
    /// Snapshot generations this shard served from.
    pub generations_seen: u64,
}

/// A running sharded server; join with [`AuthServer::stop_join`].
pub struct AuthServer {
    stop: Arc<AtomicBool>,
    counters: Vec<Arc<ShardCounters>>,
    handles: Vec<JoinHandle<ShardReport>>,
}

impl AuthServer {
    /// Spawns one serving thread per transport in `transports`.
    pub fn spawn<T: ServerTransport>(
        transports: Vec<T>,
        snapshots: SnapshotHandle,
        cfg: ServerConfig,
    ) -> AuthServer {
        let stop = Arc::new(AtomicBool::new(false));
        let mut counters = Vec::new();
        let mut handles = Vec::new();
        for (shard, transport) in transports.into_iter().enumerate() {
            let c = Arc::new(ShardCounters::default());
            counters.push(c.clone());
            let stop = stop.clone();
            let snapshots = snapshots.clone();
            let cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                run_shard(shard, transport, snapshots, cfg, stop, c)
            }));
        }
        AuthServer {
            stop,
            counters,
            handles,
        }
    }

    /// Live per-shard counters (for mid-run reporting).
    pub fn counters(&self) -> &[Arc<ShardCounters>] {
        &self.counters
    }

    /// Total queries answered so far across shards.
    pub fn total_queries(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.queries.load(Ordering::Relaxed))
            .sum()
    }

    /// Signals every shard to stop and collects their reports.
    pub fn stop_join(self) -> Vec<ShardReport> {
        self.stop.store(true, Ordering::SeqCst);
        self.handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    }
}

/// Per-generation state a shard derives once per snapshot swap instead of
/// per query.
struct GenState {
    generation: u64,
    whoami: DnsName,
    uses_ecs: bool,
    top_ip: Ipv4Addr,
}

fn run_shard<T: ServerTransport>(
    shard: usize,
    mut transport: T,
    snapshots: SnapshotHandle,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<ShardCounters>,
) -> ShardReport {
    let mut cache = cfg.cache.map(AnswerCache::new);
    let mut gen_state: Option<GenState> = None;
    let mut generations_seen = 0u64;
    let mut dropped = 0u64;
    let mut malformed = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let dg = match transport.recv(cfg.recv_timeout) {
            Ok(Some(dg)) => dg,
            Ok(None) => continue,
            Err(_) => continue,
        };
        let snap = snapshots.current();
        if gen_state.as_ref().map(|g| g.generation) != Some(snap.generation) {
            // New map generation: cached answers may route to clusters the
            // new map no longer picks. Drop them all.
            if let Some(c) = cache.as_mut() {
                c.clear();
            }
            gen_state = Some(GenState {
                generation: snap.generation,
                whoami: snap.map.whoami_name(),
                uses_ecs: snap.map.policy().uses_ecs(),
                top_ip: snap.map.top_level_ip(),
            });
            generations_seen += 1;
        }
        let gen = gen_state.as_ref().expect("generation state set above");

        let query = match decode_message(&dg.payload) {
            Ok(m) => m,
            Err(_) => {
                counters.malformed.fetch_add(1, Ordering::Relaxed);
                malformed += 1;
                match formerr_reply(&dg.payload) {
                    Some(reply) => {
                        counters.queries.fetch_add(1, Ordering::Relaxed);
                        let _ = transport.send(&dg.peer, &reply);
                    }
                    None => dropped += 1,
                }
                continue;
            }
        };
        let server_ip = dg.server_ip.unwrap_or(cfg.default_server_ip);
        let ctx = QueryContext {
            resolver_ip: dg.resolver_ip,
            now_ms: 0,
        };
        let resp = answer_query(
            &snap.map,
            gen,
            cache.as_mut(),
            server_ip,
            &query,
            &ctx,
            &counters,
        );
        counters.queries.fetch_add(1, Ordering::Relaxed);
        let _ = transport.send(&dg.peer, &encode_message(&resp));
    }
    ShardReport {
        shard,
        queries: counters.queries.load(Ordering::Relaxed),
        dropped,
        malformed,
        cache: cache.map(|c| c.stats()).unwrap_or_default(),
        generations_seen,
    }
}

/// Answers one decoded query, going through the shard cache when possible.
fn answer_query(
    map: &eum_mapping::MappingSystem,
    gen: &GenState,
    cache: Option<&mut AnswerCache>,
    server_ip: Ipv4Addr,
    query: &Message,
    ctx: &QueryContext,
    counters: &ShardCounters,
) -> Message {
    let Some(cache) = cache else {
        return map.answer(server_ip, query, ctx);
    };
    // Only catalog-name queries are memoizable: whoami is TTL-0 by design
    // and error responses are cheap to recompute.
    let Some(q) = query.questions.first() else {
        return map.answer(server_ip, query, ctx);
    };
    if q.name == gen.whoami {
        return map.answer(server_ip, query, ctx);
    }
    let now = Instant::now();
    let ecs = query.ecs().copied();
    // The end-user (scoped) path exists only at low-level servers; the
    // top level always delegates per resolver, whatever the query carries.
    let eu_path = gen.uses_ecs && ecs.is_some() && server_ip != gen.top_ip;

    let hit = if let (true, Some(e)) = (eu_path, ecs.as_ref()) {
        cache.lookup_scoped(&q.name, q.rtype, e.addr, e.source_prefix, now)
    } else {
        cache.lookup_resolver(&q.name, q.rtype, ctx.resolver_ip, server_ip, now)
    };
    if let Some(entry) = hit {
        counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        return replay(&entry, query, ecs.as_ref());
    }

    let resp = map.answer(server_ip, query, ctx);
    // Cache only clean answers with a real TTL; the minimum spans every
    // returned record (delegations live in authorities/additionals).
    let min_ttl = resp
        .answers
        .iter()
        .chain(resp.authorities.iter())
        .chain(
            resp.additionals
                .iter()
                .filter(|r| !matches!(r.rdata, eum_dns::RData::Opt(_))),
        )
        .map(|r| r.ttl)
        .min();
    let cacheable = resp.flags.rcode == Rcode::NoError && min_ttl.is_some_and(|t| t > 0);
    if cacheable {
        let entry = CachedAnswer::from_response(&resp, min_ttl.expect("checked"), now);
        match (eu_path, resp.ecs().map(|e| e.scope_prefix)) {
            // End-user answer with a real scope: valid for the whole
            // scope block.
            (true, Some(scope)) if scope > 0 => {
                let e = ecs.as_ref().expect("eu_path implies ecs");
                cache.insert_scoped(q.name.clone(), q.rtype, Prefix::of(e.addr, scope), entry);
            }
            // Scope-0 answer to an ECS query (unknown block fallback):
            // not cached. It must not enter the scoped table (a /0 entry
            // would shadow real blocks) and the resolver table is for
            // queries that will probe it again — ECS queries never do.
            (true, _) => {}
            // NS path (no ECS, policy ignores it, or top-level
            // delegation): per-resolver at this serving IP.
            (false, _) => {
                cache.insert_resolver(q.name.clone(), q.rtype, ctx.resolver_ip, server_ip, entry);
            }
        }
    }
    resp
}

/// Rebuilds a response from a cached entry for this specific query.
fn replay(entry: &CachedAnswer, query: &Message, ecs: Option<&EcsOption>) -> Message {
    let mut resp = Message::response_to(query, entry.rcode);
    if !entry.authorities.is_empty() {
        // Delegations are not authoritative data.
        resp.flags.aa = false;
    }
    resp.answers = entry.answers.clone();
    resp.authorities = entry.authorities.clone();
    resp.additionals = entry.additionals.clone();
    if let Some(e) = ecs {
        let scope = entry.scope.unwrap_or(0).min(e.source_prefix);
        resp.set_opt(OptData::with_ecs(EcsOption::response(e, scope)));
    }
    resp
}

/// A minimal FORMERR reply when at least the 12-byte header survived.
fn formerr_reply(payload: &[u8]) -> Option<Vec<u8>> {
    if payload.len() < 12 {
        return None;
    }
    let id = u16::from_be_bytes([payload[0], payload[1]]);
    let resp = Message {
        id,
        flags: eum_dns::Flags {
            qr: true,
            rcode: Rcode::FormErr,
            ..eum_dns::Flags::default()
        },
        questions: Vec::new(),
        answers: Vec::new(),
        authorities: Vec::new(),
        additionals: Vec::new(),
    };
    Some(encode_message(&resp))
}
