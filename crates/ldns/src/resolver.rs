//! One recursive resolver over a real transport.
//!
//! Where `eum_dns::RecursiveResolver` is the *model* — an analytic
//! resolver driven by a millisecond clock inside the simulator — this is
//! the *system*: an LDNS instance that exchanges RFC 1035 wire bytes
//! with a live `eum-authd` over any [`ClientTransport`] (in-process
//! channels, loopback UDP, or a fault-injecting wrapper), owns an
//! ECS-partitioned [`ResolverCache`] with timer-wheel expiry, and
//! implements the paper's staged roll-out knob as a per-resolver
//! [`EcsPolicy`]: off, whitelist-only (Google/OpenDNS sent ECS only to
//! opted-in authorities), or always.
//!
//! A resolution follows the CDN's two-level hierarchy exactly as a real
//! LDNS would: answer cache → cached delegation → top-level query
//! (delegation, scope 0, long TTL) → low-level query (A answer, scoped
//! when ECS is on). Upstream exchanges get bounded retries with a
//! per-attempt timeout; exhausted retries and SERVFAILs are negatively
//! cached (RFC 2308 §7), NXDOMAIN/NODATA honor the SOA minimum (§5).

use crate::cache::{AnswerBody, CacheEntry, CacheKey, LdnsCacheConfig, ResolverCache};
use eum_authd::ClientTransport;
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, DnsName, Message, Question, RData, Rcode, RrType};
use eum_geo::Prefix;
use eum_telemetry::{QueryTrace, TraceHop, TraceOutcome, TraceRing};
use std::io;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Whether (and to whom) this resolver forwards EDNS0 Client Subnet —
/// the paper's staged public-resolver roll-out, per resolver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcsPolicy {
    /// Never send ECS; the authoritative maps on the resolver IP.
    Off,
    /// Send ECS only for names inside one of these zones (the opt-in
    /// whitelists Google Public DNS and OpenDNS ran during the roll-out).
    Whitelist(Vec<DnsName>),
    /// Send ECS for every query.
    Always,
}

impl EcsPolicy {
    /// True when a query for `qname` carries ECS under this policy.
    pub fn sends_for(&self, qname: &DnsName) -> bool {
        match self {
            EcsPolicy::Off => false,
            EcsPolicy::Whitelist(zones) => zones.iter().any(|z| qname.is_within(z)),
            EcsPolicy::Always => true,
        }
    }
}

/// Per-resolver configuration.
#[derive(Debug, Clone)]
pub struct LdnsConfig {
    /// The resolver's unicast IP (the source the authoritative sees).
    pub ip: Ipv4Addr,
    /// ECS forwarding policy.
    pub ecs: EcsPolicy,
    /// Source prefix length announced when ECS is sent (/24 per the
    /// paper's privacy footnote).
    pub source_prefix: u8,
    /// Upstream attempts per exchange before giving up (bounded fan-out).
    pub attempts: u32,
    /// Per-attempt upstream timeout.
    pub upstream_timeout: Duration,
    /// Negative TTL when a negative answer carries no SOA (RFC 2308
    /// leaves this to local policy).
    pub default_negative_ttl_s: u32,
    /// Cache bounds and negative-TTL clamps.
    pub cache: LdnsCacheConfig,
}

impl LdnsConfig {
    /// Defaults for a resolver at `ip` with the given policy.
    pub fn new(ip: Ipv4Addr, ecs: EcsPolicy) -> LdnsConfig {
        LdnsConfig {
            ip,
            ecs,
            source_prefix: 24,
            attempts: 3,
            upstream_timeout: Duration::from_millis(250),
            default_negative_ttl_s: 30,
            cache: LdnsCacheConfig::default(),
        }
    }
}

/// Per-resolver counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct LdnsStats {
    /// Client (downstream) resolutions served.
    pub downstream_queries: u64,
    /// Downstream resolutions answered entirely from cache.
    pub downstream_cache_hits: u64,
    /// Queries sent toward the authoritative (upstream), including
    /// retries.
    pub upstream_queries: u64,
    /// Upstream attempts that timed out.
    pub upstream_timeouts: u64,
    /// Upstream SERVFAIL responses received.
    pub upstream_servfails: u64,
    /// Truncated (TC=1) answers retried over the stream (TCP) leg.
    /// Counted inside `upstream_queries` too — a retry is a query.
    pub upstream_tcp_retries: u64,
    /// Resolutions that ended in failure (SERVFAIL to the client).
    pub failures: u64,
    /// Negative (NXDOMAIN/NODATA) answers served, cached or fresh.
    pub negative_answers: u64,
}

/// The outcome of one downstream resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolved {
    /// Final A addresses (empty unless `rcode` is `NoError`).
    pub ips: Vec<Ipv4Addr>,
    /// Response code toward the client.
    pub rcode: Rcode,
    /// True when no upstream query was needed.
    pub from_cache: bool,
    /// Upstream queries this resolution cost (retries included).
    pub upstream_queries: u32,
    /// Remaining TTL toward the client, seconds.
    pub ttl_s: u32,
}

fn sat32(v: u64) -> u32 {
    v.min(u32::MAX as u64) as u32
}

/// What one upstream exchange (with retries) produced.
enum Exchange {
    Response(Message),
    Failed,
}

/// What the top level said about a name.
enum Delegation {
    /// Glue address of the low-level NS to follow.
    Found(Ipv4Addr),
    /// Authoritative negative: the name does not exist (already cached).
    Negative(u32),
    /// No usable referral (transport failure or malformed response).
    Failed,
}

/// Per-resolution stage capture for sampled traces. Only filled while a
/// traced resolution is in flight; untraced resolutions pay one branch
/// per stage.
#[derive(Debug, Default, Clone, Copy)]
struct TraceStages {
    /// Whether the in-flight resolution is being timed.
    timed: bool,
    /// First-attempt upstream message id: traced resolutions reuse the
    /// low 16 bits of the propagated trace id, so the authoritative's
    /// ring records an id the span stitcher can join on.
    id_hint: u16,
    /// Answer-cache probe time.
    probe_ns: u64,
    /// Delegation fetch (top-level exchange) time.
    deleg_ns: u64,
    /// Low-level answer exchange time (TCP retry leg included).
    upstream_ns: u64,
    /// TCP retry leg alone.
    tcp_ns: u64,
}

/// A recursive resolver instance bound to real transports.
pub struct Ldns {
    cfg: LdnsConfig,
    cache: ResolverCache,
    /// Scratch for the timer-wheel drain, reused across resolutions.
    wheel_scratch: Vec<CacheKey>,
    next_id: u16,
    stats: LdnsStats,
    /// Ring receiving sampled per-resolution traces (`None`: untraced).
    trace: Option<Arc<TraceRing>>,
    tstages: TraceStages,
}

impl Ldns {
    /// A resolver whose cache epoch is `now`.
    pub fn new(cfg: LdnsConfig, now: Instant) -> Ldns {
        Ldns {
            cache: ResolverCache::new(cfg.cache, now),
            cfg,
            wheel_scratch: Vec::new(),
            next_id: 0,
            stats: LdnsStats::default(),
            trace: None,
            tstages: TraceStages::default(),
        }
    }

    /// Attaches a trace ring: [`Ldns::resolve_traced`] resolutions the
    /// ring's sampling picks get a [`TraceHop::Ldns`] record pushed.
    pub fn attach_trace(&mut self, ring: Arc<TraceRing>) {
        self.trace = Some(ring);
    }

    /// Drops every cache entry at once — a resolver reload, the
    /// operational moment a config deploy (like flipping the ECS policy)
    /// restarts the process. Cumulative stats keep counting.
    pub fn flush_cache(&mut self, now: Instant) {
        self.cache.clear(now);
    }

    /// The resolver's unicast IP.
    pub fn ip(&self) -> Ipv4Addr {
        self.cfg.ip
    }

    /// Current ECS policy.
    pub fn policy(&self) -> &EcsPolicy {
        &self.cfg.ecs
    }

    /// Flips the ECS policy (the roll-out's per-site switch).
    pub fn set_policy(&mut self, ecs: EcsPolicy) {
        self.cfg.ecs = ecs;
    }

    /// Counters so far.
    pub fn stats(&self) -> LdnsStats {
        self.stats
    }

    /// Cache access (entry counts, hit ratios by scope, churn).
    pub fn cache(&self) -> &ResolverCache {
        &self.cache
    }

    fn fresh_id(&mut self) -> u16 {
        self.next_id = self.next_id.wrapping_add(1).max(1);
        self.next_id
    }

    /// Resolves `qname` (type A) on behalf of `client`, walking the
    /// two-level authoritative hierarchy rooted at `top_ip` through
    /// `transport` shard `shard`.
    pub fn resolve<C: ClientTransport>(
        &mut self,
        transport: &mut C,
        shard: usize,
        top_ip: Ipv4Addr,
        qname: &DnsName,
        client: Ipv4Addr,
        now: Instant,
    ) -> Resolved {
        self.resolve_traced(transport, shard, top_ip, qname, client, now, 0)
    }

    /// [`Ldns::resolve`] carrying a propagated trace id (0: untraced).
    /// When a ring is attached and its sampling picks this resolution, a
    /// [`TraceHop::Ldns`] record is pushed whose stage fields are the
    /// cache probe, delegation fetch, upstream exchange and TCP-retry
    /// times — and the id's low 16 bits become the first-attempt
    /// upstream DNS message id, so the authoritative's own ring records
    /// an id the span stitcher can join back to this record.
    #[allow(clippy::too_many_arguments)] // one resolution's full context, clearer spelled out
    pub fn resolve_traced<C: ClientTransport>(
        &mut self,
        transport: &mut C,
        shard: usize,
        top_ip: Ipv4Addr,
        qname: &DnsName,
        client: Ipv4Addr,
        now: Instant,
        trace_id: u32,
    ) -> Resolved {
        let sampled = trace_id != 0
            && self
                .trace
                .as_ref()
                .is_some_and(|r| r.should_sample(self.stats.downstream_queries + 1));
        if !sampled {
            return self.resolve_inner(transport, shard, top_ip, qname, client, now);
        }
        self.tstages = TraceStages {
            timed: true,
            id_hint: (trace_id & 0xFFFF) as u16,
            ..TraceStages::default()
        };
        let tc_before = self.stats.upstream_tcp_retries;
        let t0 = Instant::now();
        let out = self.resolve_inner(transport, shard, top_ip, qname, client, now);
        let total_ns = t0.elapsed().as_nanos() as u64;
        let st = self.tstages;
        self.tstages = TraceStages::default();
        let outcome = if out.rcode == Rcode::ServFail {
            TraceOutcome::Failed
        } else if out.from_cache {
            TraceOutcome::CacheHit
        } else {
            TraceOutcome::Computed
        };
        let ecs_on = self.cfg.ecs.sends_for(qname);
        if let Some(ring) = self.trace.as_ref() {
            ring.push(&QueryTrace {
                seq: 0,
                trace_id,
                hop: TraceHop::Ldns,
                shard: shard as u16,
                generation: 0,
                ecs_scope: ecs_on.then_some(self.cfg.source_prefix),
                outcome,
                truncated: self.stats.upstream_tcp_retries > tc_before,
                decode_ns: sat32(st.probe_ns),
                cache_ns: sat32(st.deleg_ns),
                route_ns: sat32(st.upstream_ns),
                encode_ns: sat32(st.tcp_ns),
                total_ns: sat32(total_ns),
            });
        }
        out
    }

    fn resolve_inner<C: ClientTransport>(
        &mut self,
        transport: &mut C,
        shard: usize,
        top_ip: Ipv4Addr,
        qname: &DnsName,
        client: Ipv4Addr,
        now: Instant,
    ) -> Resolved {
        self.stats.downstream_queries += 1;
        // Reap TTL-expired entries up to now; churn shows up in stats.
        self.cache.advance(now, &mut self.wheel_scratch);

        let ecs_on = self.cfg.ecs.sends_for(qname);
        let lookup_prefix = if ecs_on { self.cfg.source_prefix } else { 0 };

        let t_probe = self.tstages.timed.then(Instant::now);
        let probe = self
            .cache
            .lookup(qname, RrType::A, client, lookup_prefix, now);
        if let Some(t) = t_probe {
            self.tstages.probe_ns += t.elapsed().as_nanos() as u64;
        }
        if let Some(hit) = probe {
            let ttl_s = hit.remaining_ttl_s(now);
            let out = match &hit.body {
                AnswerBody::Addresses(ips) => Resolved {
                    ips: ips.clone(),
                    rcode: Rcode::NoError,
                    from_cache: true,
                    upstream_queries: 0,
                    ttl_s,
                },
                AnswerBody::Negative(rcode) => Resolved {
                    ips: Vec::new(),
                    rcode: *rcode,
                    from_cache: true,
                    upstream_queries: 0,
                    ttl_s,
                },
                AnswerBody::Failure => Resolved {
                    ips: Vec::new(),
                    rcode: Rcode::ServFail,
                    from_cache: true,
                    upstream_queries: 0,
                    ttl_s,
                },
            };
            self.stats.downstream_cache_hits += 1;
            match out.rcode {
                Rcode::NoError if out.ips.is_empty() => self.stats.negative_answers += 1,
                Rcode::NxDomain => self.stats.negative_answers += 1,
                _ => {}
            }
            return out;
        }

        let mut upstream = 0u32;

        // Delegation: which low-level NS serves this name for us? The
        // top level answers per resolver with scope 0, so the entry is
        // global and long-lived.
        let low_ip = match self.cache.lookup(qname, RrType::Ns, client, 0, now) {
            Some(CacheEntry {
                body: AnswerBody::Addresses(ips),
                ..
            }) => ips.first().copied(),
            _ => None,
        };
        let low_ip = match low_ip {
            Some(ip) => ip,
            None => {
                let t_deleg = self.tstages.timed.then(Instant::now);
                let deleg = self.fetch_delegation(
                    transport,
                    shard,
                    top_ip,
                    qname,
                    client,
                    &mut upstream,
                    now,
                );
                if let Some(t) = t_deleg {
                    self.tstages.deleg_ns += t.elapsed().as_nanos() as u64;
                }
                match deleg {
                    Delegation::Found(ip) => ip,
                    Delegation::Negative(ttl_s) => {
                        self.stats.negative_answers += 1;
                        return Resolved {
                            ips: Vec::new(),
                            rcode: Rcode::NxDomain,
                            from_cache: false,
                            upstream_queries: upstream,
                            ttl_s,
                        };
                    }
                    Delegation::Failed => return self.fail(qname, upstream, now),
                }
            }
        };

        // Low level: the A answer, scoped when ECS is on.
        let t_up = self.tstages.timed.then(Instant::now);
        let exch = self.exchange(
            transport,
            shard,
            low_ip,
            qname,
            client,
            ecs_on,
            &mut upstream,
        );
        if let Some(t) = t_up {
            self.tstages.upstream_ns += t.elapsed().as_nanos() as u64;
        }
        let resp = match exch {
            Exchange::Response(m) => m,
            Exchange::Failed => return self.fail(qname, upstream, now),
        };
        match resp.flags.rcode {
            Rcode::NoError if !resp.answers.is_empty() => {
                let ips: Vec<Ipv4Addr> = resp
                    .answers
                    .iter()
                    .filter_map(|r| match r.rdata {
                        RData::A(ip) => Some(ip),
                        _ => None,
                    })
                    .collect();
                if ips.is_empty() {
                    return self.fail(qname, upstream, now);
                }
                let ttl_s = resp.min_answer_ttl().unwrap_or(0).max(1);
                // RFC 7871 §7.3.1: partition by the announced scope,
                // clamped to the source we asked about; scope 0 (or no
                // ECS at all) makes the entry global.
                let scope = resp
                    .ecs()
                    .map(|e| e.scope_prefix.min(e.source_prefix))
                    .unwrap_or(0);
                let block = (ecs_on && scope > 0).then(|| Prefix::of(client, scope));
                self.cache.insert(
                    qname.clone(),
                    RrType::A,
                    block,
                    CacheEntry::new(AnswerBody::Addresses(ips.clone()), scope, ttl_s, now),
                );
                Resolved {
                    ips,
                    rcode: Rcode::NoError,
                    from_cache: false,
                    upstream_queries: upstream,
                    ttl_s,
                }
            }
            Rcode::NxDomain | Rcode::NoError => {
                // Negative answer (NXDOMAIN, or NODATA when NoError with
                // an empty answer section): RFC 2308 caching.
                let rcode = resp.flags.rcode;
                let ttl_s = self.negative_ttl(&resp);
                self.cache.insert(
                    qname.clone(),
                    RrType::A,
                    None,
                    CacheEntry::new(AnswerBody::Negative(rcode), 0, ttl_s, now),
                );
                self.stats.negative_answers += 1;
                Resolved {
                    ips: Vec::new(),
                    rcode,
                    from_cache: false,
                    upstream_queries: upstream,
                    ttl_s,
                }
            }
            _ => self.fail(qname, upstream, now),
        }
    }

    /// Queries the top level for `qname`'s delegation, caching the glue
    /// under `(qname, NS)` with the referral TTL.
    #[allow(clippy::too_many_arguments)] // one upstream leg's full context, clearer spelled out
    fn fetch_delegation<C: ClientTransport>(
        &mut self,
        transport: &mut C,
        shard: usize,
        top_ip: Ipv4Addr,
        qname: &DnsName,
        client: Ipv4Addr,
        upstream: &mut u32,
        now: Instant,
    ) -> Delegation {
        let ecs_on = self.cfg.ecs.sends_for(qname);
        let resp = match self.exchange(transport, shard, top_ip, qname, client, ecs_on, upstream) {
            Exchange::Response(m) => m,
            Exchange::Failed => return Delegation::Failed,
        };
        if resp.flags.rcode != Rcode::NoError {
            // NXDOMAIN at the top is a real negative for the name.
            if resp.flags.rcode == Rcode::NxDomain {
                let ttl_s = self.negative_ttl(&resp);
                self.cache.insert(
                    qname.clone(),
                    RrType::A,
                    None,
                    CacheEntry::new(AnswerBody::Negative(Rcode::NxDomain), 0, ttl_s, now),
                );
                return Delegation::Negative(ttl_s);
            }
            return Delegation::Failed;
        }
        let ns_name = resp.authorities.iter().find_map(|r| match &r.rdata {
            RData::Ns(target) => Some((target.clone(), r.ttl)),
            _ => None,
        });
        let (ns_name, ttl) = match ns_name {
            Some(v) => v,
            None => return Delegation::Failed,
        };
        let glue = resp.additionals.iter().find_map(|g| {
            if g.name == ns_name {
                if let RData::A(ip) = g.rdata {
                    return Some(ip);
                }
            }
            None
        });
        let glue = match glue {
            Some(ip) => ip,
            None => return Delegation::Failed,
        };
        self.cache.insert(
            qname.clone(),
            RrType::Ns,
            None,
            CacheEntry::new(AnswerBody::Addresses(vec![glue]), 0, ttl.max(1), now),
        );
        Delegation::Found(glue)
    }

    /// One upstream exchange with bounded retries: encode, send, decode,
    /// verify. Timeouts retry; SERVFAIL retries (the next attempt could
    /// hit a healthy path); other transport errors fail immediately.
    #[allow(clippy::too_many_arguments)] // one upstream leg's full context, clearer spelled out
    fn exchange<C: ClientTransport>(
        &mut self,
        transport: &mut C,
        shard: usize,
        server_ip: Ipv4Addr,
        qname: &DnsName,
        client: Ipv4Addr,
        ecs_on: bool,
        upstream: &mut u32,
    ) -> Exchange {
        for attempt in 0..self.cfg.attempts.max(1) {
            // A traced resolution's first attempt reuses the propagated
            // trace id's low 16 bits (retries fall back to fresh ids so a
            // stale first reply cannot be confused with a retry's).
            let id = if attempt == 0 && self.tstages.id_hint != 0 {
                self.tstages.id_hint
            } else {
                self.fresh_id()
            };
            let opt =
                ecs_on.then(|| OptData::with_ecs(EcsOption::query(client, self.cfg.source_prefix)));
            let query = Message::query(id, Question::a(qname.clone()), opt);
            let bytes = encode_message(&query);
            *upstream += 1;
            self.stats.upstream_queries += 1;
            match transport.exchange(
                shard,
                server_ip,
                self.cfg.ip,
                &bytes,
                self.cfg.upstream_timeout,
            ) {
                Ok(resp_bytes) => {
                    let resp = match decode_message(&resp_bytes) {
                        Ok(m) => m,
                        Err(_) => continue,
                    };
                    if resp.id != id || !resp.flags.qr {
                        continue;
                    }
                    if resp.flags.rcode == Rcode::ServFail {
                        self.stats.upstream_servfails += 1;
                        continue;
                    }
                    if resp.flags.tc {
                        // Truncated: the answer exists but overflowed the
                        // UDP reply budget. Re-ask the same question over
                        // the stream leg (RFC 1035 §4.2.2); a transport
                        // without one makes this a failed attempt.
                        self.stats.upstream_tcp_retries += 1;
                        *upstream += 1;
                        self.stats.upstream_queries += 1;
                        let t_tcp = self.tstages.timed.then(Instant::now);
                        let stream_res = transport.exchange_stream(
                            shard,
                            server_ip,
                            self.cfg.ip,
                            &bytes,
                            self.cfg.upstream_timeout,
                        );
                        if let Some(t) = t_tcp {
                            self.tstages.tcp_ns += t.elapsed().as_nanos() as u64;
                        }
                        match stream_res {
                            Ok(tcp_bytes) => {
                                if let Ok(m) = decode_message(&tcp_bytes) {
                                    if m.id == id
                                        && m.flags.qr
                                        && !m.flags.tc
                                        && m.flags.rcode != Rcode::ServFail
                                    {
                                        return Exchange::Response(m);
                                    }
                                }
                                continue;
                            }
                            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                                self.stats.upstream_timeouts += 1;
                                continue;
                            }
                            Err(_) => continue,
                        }
                    }
                    return Exchange::Response(resp);
                }
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    self.stats.upstream_timeouts += 1;
                    continue;
                }
                Err(_) => break,
            }
        }
        Exchange::Failed
    }

    /// RFC 2308 §5 negative TTL: `min(SOA TTL, SOA minimum)` when the
    /// authority section carries an SOA, the configured default
    /// otherwise, clamped by the cache's maximum.
    fn negative_ttl(&self, resp: &Message) -> u32 {
        let soa = resp.authorities.iter().find_map(|r| match &r.rdata {
            RData::Soa(soa) => Some(r.ttl.min(soa.minimum)),
            _ => None,
        });
        soa.unwrap_or(self.cfg.default_negative_ttl_s)
            .clamp(1, self.cfg.cache.max_negative_ttl_s)
    }

    /// Ends a resolution in SERVFAIL, caching the failure briefly so a
    /// dead upstream is not hammered (RFC 2308 §7.1).
    fn fail(&mut self, qname: &DnsName, upstream: u32, now: Instant) -> Resolved {
        self.stats.failures += 1;
        let ttl_s = self.cfg.cache.servfail_ttl_s.max(1);
        self.cache.insert(
            qname.clone(),
            RrType::A,
            None,
            CacheEntry::new(AnswerBody::Failure, 0, ttl_s, now),
        );
        Resolved {
            ips: Vec::new(),
            rcode: Rcode::ServFail,
            from_cache: false,
            upstream_queries: upstream,
            ttl_s,
        }
    }
}
