//! Proves every eum-lint rule is live: each fixture under `fixtures/`
//! carries a minimal violating case, a justified-allow case, and a clean
//! case, and the assertions here pin the exact rule and line each
//! violation fires on.

use eum_lint::config::Config;
use eum_lint::rules::{self, known_rule, Diagnostic};
use eum_lint::runner;
use eum_lint::scan::FileScan;
use std::path::Path;

/// A config whose hot set points at the fixture files.
const FIXTURE_CONFIG: &str = r#"
[scan]
roots = ["fixtures"]

[atomics]
counter_paths = []
seqlock_files = ["fixtures/seqlock.rs"]
facade_files = ["fixtures/raw_atomic.rs"]

[graph]
ignore_names = ["len"]
boundary = ["fixtures/call_graph.rs::cut_by_config"]

[unsafe_budget]
root = 3

[[hot]]
file = "fixtures/serve_alloc.rs"
fns = ["violating", "justified", "clean"]

[[hot]]
file = "fixtures/serve_lock.rs"
fns = ["violating", "justified", "clean"]

[[hot]]
file = "fixtures/serve_panic.rs"
fns = ["violating*", "justified", "clean"]

[[hot]]
file = "fixtures/serve_index.rs"
fns = ["violating", "justified", "clean", "not_indexing"]

[[hot]]
file = "fixtures/call_graph.rs"
fns = ["pinned_hot"]
"#;

fn fixture_config() -> Config {
    Config::parse(FIXTURE_CONFIG).expect("fixture config parses")
}

fn scan_fixture(name: &str) -> FileScan {
    let rel = format!("fixtures/{name}");
    let full = Path::new(env!("CARGO_MANIFEST_DIR")).join(&rel);
    let src = std::fs::read_to_string(&full)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", full.display()));
    FileScan::parse(&rel, &src)
}

fn diags_for(name: &str) -> Vec<Diagnostic> {
    let cfg = fixture_config();
    let mut diags = Vec::new();
    rules::check_file(&cfg, &scan_fixture(name), &mut diags);
    diags
}

fn rule_lines(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn serve_alloc_fires_once_and_only_on_the_violating_fn() {
    let diags = diags_for("serve_alloc.rs");
    assert_eq!(
        rule_lines(&diags, "serve-alloc"),
        vec![5],
        "diags: {diags:?}"
    );
    assert_eq!(
        diags.len(),
        1,
        "justified/clean/outside-hot cases must pass: {diags:?}"
    );
}

#[test]
fn serve_lock_fires_on_lock_acquisition() {
    let diags = diags_for("serve_lock.rs");
    assert_eq!(
        rule_lines(&diags, "serve-lock"),
        vec![4],
        "diags: {diags:?}"
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
}

#[test]
fn serve_panic_fires_on_unwrap_and_panic_macro() {
    let diags = diags_for("serve_panic.rs");
    assert_eq!(
        rule_lines(&diags, "serve-panic"),
        vec![4, 10],
        "diags: {diags:?}"
    );
    assert_eq!(diags.len(), 2, "{diags:?}");
}

#[test]
fn serve_index_fires_on_expression_indexing_only() {
    let diags = diags_for("serve_index.rs");
    assert_eq!(
        rule_lines(&diags, "serve-index"),
        vec![4],
        "diags: {diags:?}"
    );
    assert_eq!(
        diags.len(),
        1,
        "array literals and .get() must pass: {diags:?}"
    );
}

#[test]
fn relaxed_ordering_requires_justification_outside_tests() {
    let diags = diags_for("relaxed_ordering.rs");
    assert_eq!(
        rule_lines(&diags, "relaxed-ordering"),
        vec![6],
        "diags: {diags:?}"
    );
    assert_eq!(
        diags.len(),
        1,
        "relaxed-ok and #[cfg(test)] uses must pass: {diags:?}"
    );
}

#[test]
fn counter_path_whitelist_exempts_a_file() {
    let cfg = Config::parse(
        "[scan]\nroots = [\"fixtures\"]\n[atomics]\ncounter_paths = [\"fixtures/relaxed_ordering.rs\"]\n",
    )
    .expect("parses");
    let mut diags = Vec::new();
    rules::check_file(&cfg, &scan_fixture("relaxed_ordering.rs"), &mut diags);
    assert!(
        diags.is_empty(),
        "whitelisted counter file must pass: {diags:?}"
    );
}

#[test]
fn seqlock_pairing_flags_relaxed_store_to_acquire_loaded_field() {
    let diags = diags_for("seqlock.rs");
    assert_eq!(
        rule_lines(&diags, "seqlock-pairing"),
        vec![27],
        "diags: {diags:?}"
    );
    // The same line also lacks a relaxed-ok marker, so both audits fire;
    // the justified and clean writers pass both.
    assert_eq!(
        rule_lines(&diags, "relaxed-ordering"),
        vec![27],
        "diags: {diags:?}"
    );
    assert_eq!(diags.len(), 2, "{diags:?}");
}

#[test]
fn safety_comment_fires_only_on_undocumented_unsafe() {
    let cfg = fixture_config();
    let mut diags = Vec::new();
    let count = rules::check_file(&cfg, &scan_fixture("safety_comment.rs"), &mut diags);
    assert_eq!(
        rule_lines(&diags, "safety-comment"),
        vec![5],
        "diags: {diags:?}"
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(count, 3, "three unsafe occurrences in the fixture");
}

#[test]
fn unsafe_budget_pins_exactly() {
    let mut diags = Vec::new();
    let counts = std::collections::BTreeMap::from([("root".to_string(), 3u64)]);
    rules::check_budget(&fixture_config(), &counts, &mut diags);
    assert!(diags.is_empty(), "exact pin must pass: {diags:?}");

    // One unsafe above the pin fails…
    let mut diags = Vec::new();
    let counts = std::collections::BTreeMap::from([("root".to_string(), 4u64)]);
    rules::check_budget(&fixture_config(), &counts, &mut diags);
    assert_eq!(rule_lines(&diags, "unsafe-budget").len(), 1, "{diags:?}");

    // …and so does a stale pin (fewer unsafe than budgeted).
    let mut diags = Vec::new();
    let counts = std::collections::BTreeMap::from([("root".to_string(), 2u64)]);
    rules::check_budget(&fixture_config(), &counts, &mut diags);
    assert_eq!(rule_lines(&diags, "unsafe-budget").len(), 1, "{diags:?}");
    assert!(diags[0].msg.contains("stale"), "{diags:?}");
}

#[test]
fn unknown_rule_and_missing_reason_in_tags_are_config_errors() {
    let diags = diags_for("bad_tags.rs");
    assert_eq!(rule_lines(&diags, "config"), vec![4, 6], "diags: {diags:?}");
    assert!(diags[0].msg.contains("not-a-real-rule"), "{diags:?}");
    assert!(diags[1].msg.contains("no reason"), "{diags:?}");
}

#[test]
fn hot_pattern_matching_nothing_is_a_config_error() {
    let cfg = Config::parse(
        "[scan]\nroots = [\"fixtures\"]\n[[hot]]\nfile = \"fixtures/serve_alloc.rs\"\nfns = [\"no_such_fn\"]\n",
    )
    .expect("parses");
    let mut diags = Vec::new();
    rules::check_file(&cfg, &scan_fixture("serve_alloc.rs"), &mut diags);
    assert_eq!(rule_lines(&diags, "config").len(), 1, "{diags:?}");
}

#[test]
fn every_emitted_rule_is_explainable() {
    for name in [
        "serve_alloc.rs",
        "serve_lock.rs",
        "serve_panic.rs",
        "serve_index.rs",
        "relaxed_ordering.rs",
        "seqlock.rs",
        "safety_comment.rs",
        "bad_tags.rs",
        "raw_atomic.rs",
        "call_graph.rs",
    ] {
        for d in diags_for(name) {
            assert!(known_rule(&d.rule), "diagnostic names unknown rule {d:?}");
        }
    }
}

#[test]
fn raw_atomic_fires_on_std_import_in_facade_file() {
    let diags = diags_for("raw_atomic.rs");
    assert_eq!(
        rule_lines(&diags, "raw-atomic"),
        vec![5],
        "the justified use and test code must pass: {diags:?}"
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
}

#[test]
fn call_graph_closure_reaches_unpinned_helpers_and_respects_boundaries() {
    let cfg = fixture_config();
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = runner::run(&cfg, root).expect("runs");
    // The un-pinned leaky_helper inherits serve-alloc through the
    // closure, with the chain in the message.
    let leaky: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.file == "fixtures/call_graph.rs")
        .collect();
    assert_eq!(leaky.len(), 1, "{leaky:?}");
    assert_eq!(leaky[0].rule, "serve-alloc");
    assert_eq!(leaky[0].line, 15);
    assert!(
        leaky[0].msg.contains("reachable from pinned `pinned_hot`"),
        "{}",
        leaky[0].msg
    );
    // The #[cold] fn and the boundary-listed fn are never checked.
    assert_eq!(report.coverage.boundary_cuts, 2, "{:?}", report.coverage);
    assert_eq!(report.coverage.uncovered_fns, 0);
    assert!(report.coverage.pinned_fns >= 1);
    assert!(report.coverage.reachable_fns >= 1);
}

#[test]
fn stale_boundary_entry_is_a_config_error() {
    let cfg = Config::parse(
        "[scan]\nroots = [\"fixtures\"]\n[graph]\nboundary = [\"fixtures/call_graph.rs::gone\"]\n",
    )
    .expect("parses");
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = runner::run(&cfg, root).expect("runs");
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.rule == "config" && d.msg.contains("stale") && d.msg.contains("gone")),
        "{:?}",
        report.diags
    );
}

#[test]
fn json_report_is_well_formed_and_carries_coverage() {
    let cfg = fixture_config();
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = runner::run(&cfg, root).expect("runs");
    let json = runner::to_json(&report);
    assert!(json.contains("\"diagnostics\": ["), "{json}");
    assert!(json.contains("\"files_scanned\":"), "{json}");
    assert!(json.contains("\"uncovered_fns\": 0"), "{json}");
    assert!(
        json.contains("\"rule\": \"serve-alloc\""),
        "diagnostics must serialize: {json}"
    );
    // Message text contains backticks and arrows; quotes and backslashes
    // must be escaped — a raw quote inside a value would break the pairing.
    let quotes = json.matches('"').count();
    let escaped = json.matches("\\\"").count();
    assert_eq!((quotes - escaped) % 2, 0, "unbalanced quotes: {json}");
}

#[test]
fn runner_walks_fixtures_end_to_end() {
    let cfg = fixture_config();
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = runner::run(&cfg, root).expect("runs");
    assert_eq!(report.unsafe_counts.get("root"), Some(&3));
    // Every violating fixture case surfaces through the full walk.
    for rule in [
        "serve-alloc",
        "serve-lock",
        "serve-panic",
        "serve-index",
        "relaxed-ordering",
        "seqlock-pairing",
        "safety-comment",
        "raw-atomic",
        "config",
    ] {
        assert!(
            report.diags.iter().any(|d| d.rule == rule),
            "rule {rule} missing from the end-to-end report"
        );
    }
    // The budget matches exactly, so no unsafe-budget diagnostics.
    assert!(!report.diags.iter().any(|d| d.rule == "unsafe-budget"));
}

#[test]
fn config_naming_a_missing_file_is_an_error() {
    let cfg = Config::parse(
        "[scan]\nroots = [\"fixtures\"]\n[[hot]]\nfile = \"fixtures/no_such_file.rs\"\nfns = [\"*\"]\n",
    )
    .expect("parses");
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = runner::run(&cfg, root).expect("runs");
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.rule == "config" && d.msg.contains("no_such_file.rs")),
        "{:?}",
        report.diags
    );
}

#[test]
fn diagnostics_render_rustc_style() {
    let d = &diags_for("serve_alloc.rs")[0];
    let rendered = d.render();
    assert!(rendered.contains("error[serve-alloc]"), "{rendered}");
    assert!(
        rendered.contains("fixtures/serve_alloc.rs:5:"),
        "{rendered}"
    );
    assert!(rendered.contains("format!"), "{rendered}");
}
