//! Offline stub of `criterion`.
//!
//! The build environment has no crates.io access. This harness keeps
//! criterion's API shape (`criterion_group!`, `criterion_main!`,
//! `Criterion::bench_function`, benchmark groups, `BenchmarkId`,
//! `black_box`, `Bencher::iter`) and measures real wall-clock time with a
//! doubling calibration loop, printing one line per benchmark:
//!
//! ```text
//! group/name              time: [  1.234 µs/iter]  (n=131072)
//! ```
//!
//! There is no statistical analysis, HTML report, or saved baseline — the
//! numbers are honest means over an adaptive measurement window, which is
//! what the repo's perf PRs compare.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark.
const TARGET_BATCH: Duration = Duration::from_millis(20);
const DEFAULT_MEASURE: Duration = Duration::from_millis(200);

/// The benchmark driver.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_MEASURE.as_millis() as u64);
        Criterion {
            measure: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.measure, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            measure: self.measure,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    measure: Duration,
}

impl BenchmarkGroup {
    /// Caps the sample budget (maps the real crate's sample count onto
    /// this harness's time budget: fewer samples → shorter window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // criterion's default is 100 samples; scale the window accordingly.
        let scaled = (self.measure.as_millis() as u64).max(1) * (n as u64).max(1) / 100;
        self.measure = Duration::from_millis(scaled.max(10));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.measure, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.measure,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (formatting no-op in the stub).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Passed to the closure; call [`Bencher::iter`] with the body to time.
pub struct Bencher {
    measure: Duration,
    /// (total elapsed, iterations) recorded by `iter`.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, adaptively choosing the iteration count.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate: double batch size until one batch is long enough to
        // dwarf timer overhead.
        let mut batch: u64 = 1;
        let mut batch_time;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            batch_time = start.elapsed();
            if batch_time >= TARGET_BATCH || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        // Measure: repeat batches until the window is spent.
        let mut total = batch_time;
        let mut iters = batch;
        while total < self.measure {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.result = Some((total, iters));
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        // Setup may dominate (e.g. building a whole world); measure one
        // routine call at a time and stop when the window is spent.
        while total < self.measure && iters < 1 << 20 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.result = Some((total, iters));
    }
}

fn run_one(name: &str, measure: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        measure,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((total, iters)) => {
            let per = total.as_nanos() as f64 / iters as f64;
            println!("{name:<44} time: [{}] (n={iters})", fmt_ns(per));
        }
        None => println!("{name:<44} time: [no iter() call]"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:>9.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:>9.3} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:>9.3} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:>9.3}  s/iter", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_time() {
        let mut c = Criterion {
            measure: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1u64 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            measure: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(3usize), &3usize, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        g.finish();
    }
}
