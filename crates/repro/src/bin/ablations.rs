//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. ECS-aware cache vs qname-only cache (protocol-violating);
//! 2. authoritative scope narrowing: /20 floor vs always-/24;
//! 3. mapping-unit granularity and BGP aggregation (also Figure 22);
//! 4. global LB: stable allocation vs greedy;
//! 5. local LB: consistent hashing vs round-robin (cache-hit impact);
//! 6. anycast catchment fidelity: misroute probability sweep.
//!
//! Run with: `cargo run --release -p eum-repro --bin ablations`

use eum_cdn::{
    deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, ContentId, DeployConfig,
};
use eum_dns::{EcsMode, QueryContext, RecursiveResolver, ResolverConfig};
use eum_mapping::{
    assign, LbAlgorithm, LocalLbPolicy, MapUnits, MappingConfig, MappingSystem, PingMatrix,
    PingTargets, ScoreBasis, ScoreTable, ScoringWeights, UnitId,
};
use eum_netmodel::{Endpoint, Internet, InternetConfig};
use eum_repro::SEED;
use eum_sim::{AuthNet, QueryCounters};
use eum_stats::Table;
use std::collections::HashMap;

fn main() {
    println!("=== Ablations (seed {SEED:#x}) ===\n");
    ablation_cache_scope();
    ablation_scope_floor();
    ablation_global_lb();
    ablation_local_lb();
    ablation_anycast();
}

/// Builds a standard small world with a chosen mapping config.
fn world(cfg_mapping: MappingConfig) -> (Internet, CdnPlatform, ContentCatalog, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::small(SEED));
    let sites = deployment_universe(SEED, 40);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            // Deliberately tight caches: a server holds ~3 domains' working
            // sets, so local-LB stability visibly moves the hit rate.
            cache_objects_per_server: 16,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let mapping = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        cfg_mapping,
    );
    (net, cdn, catalog, mapping)
}

/// How many upstream queries one public LDNS sends, and how often the
/// answer matches the client's own EU assignment, for `n` client blocks
/// querying one domain within a TTL window.
fn ldns_experiment(
    resolver_cfg: ResolverConfig,
    mapping_cfg: MappingConfig,
    n: usize,
) -> (u64, f64) {
    let (net, cdn, catalog, mut mapping) = world(mapping_cfg);
    let latency = net.latency;
    let site = net
        .resolvers
        .iter()
        .find(|r| r.kind.is_public())
        .expect("public site exists")
        .clone();
    let mut resolver = RecursiveResolver::new(site.ip, resolver_cfg);
    let mut counters = QueryCounters::new();
    let domain = &catalog.domains[0];
    // Static authorities are irrelevant: query the CDN name directly.
    let static_auths = HashMap::new();
    let mut endpoints = HashMap::new();
    endpoints.insert(
        mapping.top_level_ip(),
        Endpoint::infra(
            mapping.top_level_ip(),
            site.loc,
            site.country,
            eum_cdn::CDN_ASN,
        ),
    );
    for ip in mapping.ns_ips() {
        endpoints.insert(
            ip,
            Endpoint::infra(ip, site.loc, site.country, eum_cdn::CDN_ASN),
        );
    }
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, b) in net.blocks.iter().take(n).enumerate() {
        let mut authnet = AuthNet {
            mapping: &mut mapping,
            static_auths: &static_auths,
            endpoints: &endpoints,
            latency: &latency,
            resolver_ep: site.endpoint(),
            resolver_is_public: true,
            root_ip: mapping_root(&endpoints),
            counters: &mut counters,
            day: 0,
        };
        let res = resolver.resolve(&domain.cdn_name, b.client_ip(), i as u64, &mut authnet);
        if res.ips.is_empty() {
            continue;
        }
        total += 1;
        let got = cdn
            .server(cdn.server_by_ip(res.ips[0]).expect("cdn ip"))
            .cluster;
        if let Some(want) = mapping.assigned_cluster_for_block_class(b.prefix, domain.class) {
            if got == want {
                correct += 1;
            }
        }
    }
    let upstream = resolver.stats().upstream_queries;
    (upstream, 100.0 * correct as f64 / total.max(1) as f64)
}

fn mapping_root(endpoints: &HashMap<std::net::Ipv4Addr, Endpoint>) -> std::net::Ipv4Addr {
    // The experiment resolves CDN names only; any mapping NS works as the
    // bootstrap (the resolver follows delegations from there).
    *endpoints.keys().next().expect("endpoints exist")
}

fn ablation_cache_scope() {
    println!(
        "--- 1. ECS-aware cache vs qname-only cache (400 blocks, one public LDNS, one domain) ---"
    );
    let mut t = Table::new(["cache", "upstream queries", "% correctly mapped answers"]);
    for (label, honor) in [
        ("RFC 7871 scoped (production)", true),
        ("qname-only (ablation)", false),
    ] {
        let (q, pct) = ldns_experiment(
            ResolverConfig {
                ecs: EcsMode::On { source_prefix: 24 },
                honor_ecs_scope: honor,
                ..ResolverConfig::default()
            },
            MappingConfig {
                max_ping_targets: 200,
                ..MappingConfig::default()
            },
            400,
        );
        t.row([label.to_string(), q.to_string(), format!("{pct:.1}")]);
    }
    println!("{t}");
    println!("the amplification is the price of correctness: dropping scopes removes the\nextra queries but serves most clients another block's answer\n");
}

fn ablation_scope_floor() {
    println!("--- 2. authoritative scope floor: /20 (paper Fig 4) vs always /24 ---");
    let mut t = Table::new(["scope policy", "upstream queries (400 blocks)"]);
    for (label, floor) in [("floor /20", 20u8), ("always /24", 24)] {
        let (q, _) = ldns_experiment(
            ResolverConfig {
                ecs: EcsMode::On { source_prefix: 24 },
                ..ResolverConfig::default()
            },
            MappingConfig {
                scope_floor: floor,
                max_ping_targets: 200,
                ..MappingConfig::default()
            },
            400,
        );
        t.row([label.to_string(), q.to_string()]);
    }
    println!("{t}");
    println!("coarser scopes let sibling /24s share cache entries, trimming query load\nwithout giving up block-level mapping units\n");
}

fn ablation_global_lb() {
    println!("--- 3. global LB: stable allocation vs greedy under capacity pressure ---");
    let mut net = Internet::generate(InternetConfig::small(SEED));
    let sites = deployment_universe(SEED, 40);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 64,
            cluster_capacity: f64::INFINITY,
        },
    );
    let units = MapUnits::block_units(&net, 24, true);
    let cluster_eps: Vec<Endpoint> = cdn
        .clusters
        .iter()
        .map(|c| cdn.cluster_endpoint(c.id))
        .collect();
    let targets = PingTargets::select(&net, 300, 100.0);
    let matrix = PingMatrix::measure(&net, &cluster_eps, &targets);
    let vantages: Vec<Endpoint> = units
        .units
        .iter()
        .map(|u| net.block(u.members[0]).endpoint())
        .collect();
    let table = ScoreTable::build(
        &net,
        &units,
        &vantages,
        &cluster_eps,
        &targets,
        &matrix,
        ScoringWeights::default(),
        ScoreBasis::UnitVantage,
        50,
    );
    let mut t = Table::new([
        "headroom",
        "algorithm",
        "demand-weighted mean score",
        "max cluster load / cap",
    ]);
    for headroom in [2.0, 1.3, 1.1] {
        let cap: Vec<f64> =
            vec![units.total_demand() * headroom / cdn.cluster_count() as f64; cdn.cluster_count()];
        let usable = vec![true; cdn.cluster_count()];
        for algo in [LbAlgorithm::Stable, LbAlgorithm::Greedy] {
            let a = assign(algo, &units, &table, &cap, &usable);
            let mut acc = 0.0;
            let mut w = 0.0;
            for u in 0..units.len() {
                if let Some(c) = a.cluster_of[u] {
                    let d = units.unit(UnitId(u as u32)).demand;
                    acc += table.score(UnitId(u as u32), c) * d;
                    w += d;
                }
            }
            let overload = a
                .load
                .iter()
                .zip(&cap)
                .map(|(l, c)| l / c)
                .fold(0.0f64, f64::max);
            t.row([
                format!("{headroom:.1}x"),
                format!("{algo:?}"),
                format!("{:.1}", acc / w),
                format!("{overload:.2}"),
            ]);
        }
    }
    println!("{t}");
    println!("stable allocation trades some mean score for no-blocking-pair stability.\nmax load/cap exceeds 1 because BGP-aggregated mega-units (a national ISP's\nCIDR) can individually exceed a cluster's capacity — service is never\nrefused (§ load balancing overflow rule), the overload is the mega-unit\n");
}

fn ablation_local_lb() {
    println!("--- 4. local LB: consistent hashing vs round-robin (cache-hit impact) ---");
    let mut t = Table::new([
        "local LB",
        "edge cache hit rate",
        "answers spread (distinct primaries)",
    ]);
    for (label, policy) in [
        (
            "consistent hashing (production)",
            LocalLbPolicy::ConsistentHash,
        ),
        ("round-robin (ablation)", LocalLbPolicy::RoundRobin),
    ] {
        let (net, mut cdn, catalog, mut mapping) = world(MappingConfig {
            local_lb: policy,
            max_ping_targets: 200,
            ..MappingConfig::default()
        });
        // Replay a request stream: blocks weighted by demand querying
        // Zipf-popular domains through the low-level NS of their cluster.
        let mut primaries = std::collections::BTreeSet::new();
        let ldns = net.resolvers[0].ip;
        let ctx = QueryContext {
            resolver_ip: ldns,
            now_ms: 0,
        };
        let mut i = 0u64;
        for _ in 0..4 {
            for b in net.blocks.iter().take(600) {
                i += 1;
                let domain_idx = (i % 12) as u32;
                let domain = &catalog.domains[domain_idx as usize];
                let ecs = eum_dns::EcsOption::query(b.client_ip(), 24);
                let q = eum_dns::Message::query(
                    i as u16,
                    eum_dns::Question::a(domain.cdn_name.clone()),
                    Some(eum_dns::OptData::with_ecs(ecs)),
                );
                let low = mapping.ns_ips()[1];
                let resp = mapping.handle(low, &q, &ctx);
                let ips = resp.answer_ips();
                if ips.is_empty() {
                    continue;
                }
                primaries.insert(ips[0]);
                let sid = cdn.server_by_ip(ips[0]).expect("cdn ip");
                // Serve the base page + a few objects.
                cdn.server_mut(sid).serve(
                    ContentId {
                        domain: domain_idx,
                        object: 0,
                    },
                    true,
                );
                for o in 1..=4u32 {
                    cdn.server_mut(sid).serve(
                        ContentId {
                            domain: domain_idx,
                            object: o,
                        },
                        true,
                    );
                }
            }
        }
        t.row([
            label.to_string(),
            format!("{:.1}%", 100.0 * cdn.overall_hit_rate()),
            primaries.len().to_string(),
        ]);
    }
    println!("{t}");
    println!("consistent hashing concentrates a domain's working set on few servers,\nraising hit rate — the paper's 'likely to contain the requested content'\n");
}

fn ablation_anycast() {
    println!("--- 5. anycast fidelity: misroute probability vs client-LDNS distance ---");
    let mut t = Table::new(["misroute prob", "overall median (mi)", "public median (mi)"]);
    for p in [0.0, 0.06, 0.2, 0.5] {
        let cfg = InternetConfig {
            misroute_prob: p,
            ..InternetConfig::small(SEED)
        };
        let net = Internet::generate(cfg);
        let ds = eum_sim::PairDataset::collect(&net);
        let mut all = ds.distance_sample(&net, |_, _| true);
        let mut public = ds.distance_sample(&net, |n, r| n.is_public_resolver(r.ldns));
        t.row([
            format!("{p:.2}"),
            format!("{:.0}", all.median().unwrap()),
            format!("{:.0}", public.median().unwrap()),
        ]);
    }
    println!("{t}");
    println!("anycast misrouting (the paper's [23]) lengthens client-LDNS distances even\nfor well-deployed resolver infrastructures\n");
}
