//! CLI for eum-lint.
//!
//! ```text
//! eum-lint [--config lint.toml] [--root .]   # run all rules, exit 1 on findings
//! eum-lint --format json                     # machine-readable diagnostics + coverage
//! eum-lint --explain <rule>                  # print a rule's rationale
//! eum-lint --fix-budget                      # re-pin [unsafe_budget] to measured counts
//! ```

#![forbid(unsafe_code)]

use eum_lint::config::Config;
use eum_lint::rules::RULES;
use eum_lint::runner;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    config: PathBuf,
    root: PathBuf,
    explain: Option<String>,
    fix_budget: bool,
    json: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        config: PathBuf::from("lint.toml"),
        root: PathBuf::from("."),
        explain: None,
        fix_budget: false,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--config" => {
                opts.config = PathBuf::from(args.next().ok_or("--config needs a path")?);
            }
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a path")?);
            }
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain needs a rule name")?);
            }
            "--fix-budget" => opts.fix_budget = true,
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                Some(other) => return Err(format!("unknown format `{other}` (text or json)")),
                None => return Err("--format needs `text` or `json`".to_string()),
            },
            "--help" | "-h" => {
                println!(
                    "eum-lint: workspace invariant checker\n\n\
                     usage: eum-lint [--config lint.toml] [--root .] [--format text|json]\n\
                            [--explain <rule>] [--fix-budget]\n\n\
                     rules: {}",
                    RULES.iter().map(|(r, _)| *r).collect::<Vec<_>>().join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("eum-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(rule) = opts.explain {
        return match RULES.iter().find(|(r, _)| *r == rule) {
            Some((r, text)) => {
                println!(
                    "{r}:\n  {}",
                    text.split_whitespace().collect::<Vec<_>>().join(" ")
                );
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "eum-lint: unknown rule `{rule}`; known rules: {}",
                    RULES.iter().map(|(r, _)| *r).collect::<Vec<_>>().join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    let config_path = opts.root.join(&opts.config);
    let cfg = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("eum-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match runner::run(&cfg, &opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("eum-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.fix_budget {
        let text = match std::fs::read_to_string(&config_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("eum-lint: cannot read {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        };
        let new = match runner::rewrite_budget(&text, &report.unsafe_counts) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("eum-lint: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&config_path, new) {
            eprintln!("eum-lint: cannot write {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
        for (krate, n) in &report.unsafe_counts {
            println!("{krate} = {n}");
        }
        println!("re-pinned [unsafe_budget] in {}", config_path.display());
        return ExitCode::SUCCESS;
    }

    if opts.json {
        print!("{}", runner::to_json(&report));
        return if report.diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for d in &report.diags {
        println!("{}\n", d.render());
    }
    let c = &report.coverage;
    println!(
        "eum-lint: call graph: {} pinned fns, {} reachable callees covered, \
         {} uncovered, {} boundary cuts, {} external names",
        c.pinned_fns, c.reachable_fns, c.uncovered_fns, c.boundary_cuts, c.external_names
    );
    if report.diags.is_empty() {
        println!(
            "eum-lint: {} files scanned, 0 violations",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "eum-lint: {} files scanned, {} violation(s)",
            report.files_scanned,
            report.diags.len()
        );
        ExitCode::FAILURE
    }
}
