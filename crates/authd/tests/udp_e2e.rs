//! End-to-end: real RFC 1035 queries over loopback UDP against a sharded
//! server, with a map-generation swap published mid-run.
//!
//! Several client threads hammer fixed probe queries while the main
//! thread publishes a second map generation (one cluster failed). Every
//! response must be well-formed and match the answer one of the two
//! generations computes — never a mix — and once the publish has
//! completed, every later response must come from the new generation.

use eum_authd::{AuthServer, ServerConfig, SnapshotHandle, UdpClient, UdpTransport};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, Message, QueryContext, Question, Rcode};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_netmodel::{Internet, InternetConfig};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xE2E;

/// Deterministic world; called twice to get two identical map copies.
fn world() -> (Internet, CdnPlatform, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, cdn, map)
}

/// One fixed probe: an ECS or plain A query for a hosted domain.
struct Probe {
    payload: Vec<u8>,
    id: u16,
    sent_ecs: Option<EcsOption>,
    /// Answer IPs generation 1 / generation 2 compute for this probe.
    expect1: Vec<Ipv4Addr>,
    expect2: Vec<Ipv4Addr>,
}

fn answer_ips(map: &MappingSystem, server: Ipv4Addr, query: &Message) -> Vec<Ipv4Addr> {
    // The UDP transport reports the kernel peer address as the resolver,
    // which on loopback is always 127.0.0.1 — mirror that here.
    let ctx = QueryContext {
        resolver_ip: Ipv4Addr::LOCALHOST,
        now_ms: 0,
    };
    let resp = map.answer(server, query, &ctx);
    assert_eq!(resp.flags.rcode, Rcode::NoError);
    let mut ips = resp.answer_ips();
    ips.sort_unstable();
    ips
}

#[test]
fn loopback_udp_serving_survives_generation_swap() {
    let (net, _cdn, map1) = world();
    let (_net2, mut cdn2, mut map2) = world();
    let low = map1.ns_ips()[1];

    // Generation 2: the first cluster that actually serves one of our
    // probe blocks goes down, so its units move elsewhere.
    let probe_blocks: Vec<_> = net.blocks.iter().take(24).map(|b| b.client_ip()).collect();
    let victim = probe_blocks
        .iter()
        .find_map(|ip| map1.assigned_cluster_for_block(eum_geo::Prefix::of(*ip, 24)))
        .expect("some probe block maps to a cluster");
    cdn2.set_cluster_alive(victim, false);
    map2.refresh_liveness(&cdn2);

    // Fixed probe set: ECS queries for a handful of client blocks plus one
    // plain (resolver-path) query.
    let mut probes = Vec::new();
    for (i, client) in probe_blocks.iter().take(8).enumerate() {
        let id = 0x4000 + i as u16;
        let ecs = EcsOption::query(*client, 24);
        let q = Message::query(
            id,
            Question::a("e0.cdn.example".parse().unwrap()),
            Some(OptData::with_ecs(ecs)),
        );
        probes.push(Probe {
            payload: encode_message(&q),
            id,
            sent_ecs: Some(ecs),
            expect1: answer_ips(&map1, low, &q),
            expect2: answer_ips(&map2, low, &q),
        });
    }
    let plain = Message::query(0x5000, Question::a("e1.cdn.example".parse().unwrap()), None);
    probes.push(Probe {
        payload: encode_message(&plain),
        id: 0x5000,
        sent_ecs: None,
        expect1: answer_ips(&map1, low, &plain),
        expect2: answer_ips(&map2, low, &plain),
    });
    assert!(
        probes.iter().any(|p| p.expect1 != p.expect2),
        "the killed cluster must change at least one probe's answer"
    );
    let probes = Arc::new(probes);

    // Sharded server over loopback UDP.
    let shards = 2;
    let mut transports = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..shards {
        let t = UdpTransport::bind().expect("bind loopback");
        addrs.push(t.local_addr().expect("local addr"));
        transports.push(t);
    }
    let snapshots = SnapshotHandle::new(map1);
    let server = AuthServer::spawn(transports, snapshots.clone(), ServerConfig::new(low));

    // Client threads: keep cycling the probes; after `published` flips,
    // run one more full pass that must see only generation 2.
    let published = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for t in 0..3usize {
        let probes = probes.clone();
        let published = published.clone();
        let addrs = addrs.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = UdpClient::connect(addrs).expect("bind client");
            let mut rounds_after_publish = 0u32;
            let mut round = 0u32;
            while rounds_after_publish < 3 {
                let after = published.load(Ordering::SeqCst);
                for (i, probe) in probes.iter().enumerate() {
                    let shard = (t + i) % shards;
                    let bytes = exchange(&mut client, shard, &probe.payload);
                    check_response(probe, &bytes, after);
                }
                round += 1;
                if after {
                    rounds_after_publish += 1;
                }
            }
            round
        }));
    }

    // Let generation 1 serve some full rounds, then swap mid-run.
    std::thread::sleep(Duration::from_millis(50));
    let generation = snapshots.publish(map2);
    assert_eq!(generation, 2);
    published.store(true, Ordering::SeqCst);

    for c in clients {
        let rounds = c.join().expect("client thread");
        assert!(rounds >= 3, "each client should complete several rounds");
    }
    let reports = server.stop_join();
    let total: u64 = reports.iter().map(|r| r.queries).sum();
    assert!(total > 0, "server answered nothing");
    for r in &reports {
        assert_eq!(r.dropped, 0, "shard {} dropped datagrams", r.shard);
        assert_eq!(r.malformed, 0, "shard {} saw malformed queries", r.shard);
        assert!(
            r.generations_seen >= 1,
            "shard {} never derived generation state",
            r.shard
        );
    }
}

fn exchange(client: &mut UdpClient, shard: usize, payload: &[u8]) -> Vec<u8> {
    use eum_authd::ClientTransport;
    client
        .exchange(
            shard,
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::UNSPECIFIED,
            payload,
            Duration::from_secs(5),
        )
        .expect("query timed out")
}

/// Well-formedness plus generation consistency for one response.
fn check_response(probe: &Probe, bytes: &[u8], sent_after_publish: bool) {
    let resp = decode_message(bytes).expect("response must decode");
    assert_eq!(resp.id, probe.id);
    assert!(resp.flags.qr);
    assert_eq!(resp.flags.rcode, Rcode::NoError);
    if let Some(sent) = &probe.sent_ecs {
        let echo = resp.ecs().expect("ECS query must get an ECS echo");
        assert_eq!(echo.addr, sent.addr);
        assert!(
            echo.scope_prefix <= sent.source_prefix,
            "scope /{} wider-than-source /{} violates RFC 7871",
            echo.scope_prefix,
            sent.source_prefix
        );
    }
    let mut ips = resp.answer_ips();
    ips.sort_unstable();
    assert!(!ips.is_empty(), "A answer must carry addresses");
    if sent_after_publish {
        assert_eq!(
            ips, probe.expect2,
            "query sent after publish must be answered by generation 2"
        );
    } else {
        assert!(
            ips == probe.expect1 || ips == probe.expect2,
            "answer {ips:?} matches neither generation ({:?} / {:?})",
            probe.expect1,
            probe.expect2
        );
    }
}
