//! The role of server deployments (§6, Figure 25).
//!
//! Reproduces the paper's simulation methodology exactly:
//!
//! 1. a universe `U` of candidate deployment locations (paper: 2642);
//! 2. ping targets clustering the top client blocks (paper: 20K → 8K);
//! 3. ping measurements from every location in `U` to every target;
//! 4. three mapping schemes — NS (least latency to the LDNS), EU (least
//!    latency to the client's block), CANS (least traffic-weighted
//!    latency to the LDNS's client cluster);
//! 5. 100 random orderings of `U`; for each deployment count `N`, the
//!    first `N` locations are "built" and the traffic-weighted mean, 95th
//!    and 99th percentile ping latencies are computed, then averaged over
//!    the runs.
//!
//! Runs execute on scoped threads (one per simulation run) since each run
//! is independent given the shared ping matrices.

use crate::measure::{PingMatrix, PingTargets, TargetId};
use eum_cdn::deployment_universe;
use eum_netmodel::{Endpoint, Internet, ResolverId};
use eum_stats::WeightedSample;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The three schemes of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// NS-based mapping.
    Ns,
    /// End-user mapping.
    Eu,
    /// Client-aware NS-based mapping.
    Cans,
}

impl Scheme {
    /// All schemes in the paper's legend order.
    pub const ALL: [Scheme; 3] = [Scheme::Cans, Scheme::Eu, Scheme::Ns];

    /// Label as used in Figure 25.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Ns => "NS",
            Scheme::Eu => "EU",
            Scheme::Cans => "CANS",
        }
    }
}

/// Study configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Seed for universe generation and run orderings.
    pub seed: u64,
    /// Size of the deployment universe (paper: 2642).
    pub universe_size: usize,
    /// Maximum ping targets (paper: 8000).
    pub ping_targets: usize,
    /// Target covering radius, miles.
    pub target_cover_miles: f64,
    /// Deployment counts to evaluate (paper: 40…2560 doubling).
    pub deployment_counts: Vec<usize>,
    /// Number of random orderings to average (paper: 100).
    pub runs: usize,
}

impl StudyConfig {
    /// The paper's parameters (slow; the repro binary scales targets/runs
    /// down by default and documents the deltas).
    pub fn paper(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            universe_size: 2642,
            ping_targets: 8000,
            target_cover_miles: 40.0,
            deployment_counts: vec![40, 80, 160, 320, 640, 1280, 2560],
            runs: 100,
        }
    }

    /// A quick configuration for tests.
    pub fn quick(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            universe_size: 60,
            ping_targets: 60,
            target_cover_miles: 150.0,
            deployment_counts: vec![5, 10, 20, 40],
            runs: 3,
        }
    }
}

/// One output row: a scheme at a deployment count, averaged over runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyRow {
    /// The scheme.
    pub scheme: Scheme,
    /// Number of deployment locations.
    pub deployments: usize,
    /// Traffic-weighted mean ping latency, ms.
    pub mean_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
}

/// One per-run result row: (scheme, deployment count, mean, p95, p99).
type RunRow = (Scheme, usize, f64, f64, f64);

/// One (client-block, LDNS) observation.
struct Observation {
    target: TargetId,
    ldns_idx: u32,
    weight: f64,
}

/// Runs the §6 study. Deterministic in `cfg.seed`.
pub fn run_study(net: &Internet, cfg: &StudyConfig) -> Vec<StudyRow> {
    assert!(cfg.runs > 0 && !cfg.deployment_counts.is_empty());
    let mut counts = cfg.deployment_counts.clone();
    counts.sort_unstable();
    counts.dedup();

    // 1. Universe of candidate deployments (hypothetical endpoints — they
    //    are not built into the Internet; only their pings matter).
    let sites = deployment_universe(cfg.seed, cfg.universe_size);
    let universe: Vec<Endpoint> = sites
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let ip = Ipv4Addr::from(0xF000_0000u32 | ((i as u32) << 8) | 1);
            Endpoint::infra(ip, s.loc, s.country, eum_cdn::CDN_ASN)
        })
        .collect();

    // 2–3. Targets and the deployments × targets ping matrix.
    let targets = PingTargets::select(net, cfg.ping_targets, cfg.target_cover_miles);
    let matrix = PingMatrix::measure(net, &universe, &targets);

    // LDNS indexing and per-LDNS member target histograms (for CANS).
    let mut ldns_ids: Vec<ResolverId> = net
        .blocks
        .iter()
        .flat_map(|b| b.ldns.iter().map(|(r, _)| *r))
        .collect();
    ldns_ids.sort_unstable();
    ldns_ids.dedup();
    let ldns_index: HashMap<ResolverId, u32> = ldns_ids
        .iter()
        .enumerate()
        .map(|(i, r)| (*r, i as u32))
        .collect();
    let n_ldns = ldns_ids.len();

    // Observations: one per (block, ldns, weight).
    let mut observations: Vec<Observation> = Vec::new();
    let mut ldns_hist: Vec<HashMap<TargetId, f64>> = vec![HashMap::new(); n_ldns];
    for b in &net.blocks {
        let t = targets.target_of_block(b.id);
        for (r, w) in &b.ldns {
            let weight = b.demand * w;
            if weight <= 0.0 {
                continue;
            }
            let li = ldns_index[r];
            observations.push(Observation {
                target: t,
                ldns_idx: li,
                weight,
            });
            *ldns_hist[li as usize].entry(t).or_insert(0.0) += weight;
        }
    }
    // Normalize histograms.
    let ldns_hist: Vec<Vec<(TargetId, f64)>> = ldns_hist
        .into_iter()
        .map(|h| {
            let total: f64 = h.values().sum();
            h.into_iter()
                .map(|(t, w)| (t, w / total.max(1e-12)))
                .collect()
        })
        .collect();

    // Deployment × LDNS latency matrices for NS (direct RTT to the LDNS)
    // and CANS (weighted ping over the LDNS's client targets).
    let ldns_eps: Vec<Endpoint> = ldns_ids
        .iter()
        .map(|r| net.resolver(*r).endpoint())
        .collect();
    let n_universe = universe.len();
    let mut ns_matrix = vec![0f32; n_universe * n_ldns];
    let mut cans_matrix = vec![0f32; n_universe * n_ldns];
    for (d, dep) in universe.iter().enumerate() {
        for (l, lep) in ldns_eps.iter().enumerate() {
            ns_matrix[d * n_ldns + l] = net.latency.rtt_ms(dep, lep) as f32;
        }
        for (l, hist) in ldns_hist.iter().enumerate() {
            let mut acc = 0.0f64;
            for (t, w) in hist {
                acc += matrix.ping(d, *t) * w;
            }
            cans_matrix[d * n_ldns + l] = acc as f32;
        }
    }

    // 5. Random orderings, evaluated in parallel.
    let mut accum: HashMap<(Scheme, usize), (f64, f64, f64)> = HashMap::new();
    let run_results: Vec<Vec<RunRow>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.runs)
            .map(|run| {
                let counts = &counts;
                let observations = &observations;
                let matrix = &matrix;
                let ns_matrix = &ns_matrix;
                let cans_matrix = &cans_matrix;
                let seed = cfg.seed;
                scope.spawn(move || {
                    run_one(
                        seed ^ (run as u64).wrapping_mul(0x9E37_79B9),
                        n_universe,
                        n_ldns,
                        counts,
                        observations,
                        matrix,
                        ns_matrix,
                        cans_matrix,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("study thread"))
            .collect()
    });
    for rows in run_results {
        for (scheme, n, mean, p95, p99) in rows {
            let e = accum.entry((scheme, n)).or_insert((0.0, 0.0, 0.0));
            e.0 += mean;
            e.1 += p95;
            e.2 += p99;
        }
    }

    let mut out = Vec::new();
    for n in &counts {
        for scheme in Scheme::ALL {
            let (m, p95, p99) = accum[&(scheme, *n)];
            let r = cfg.runs as f64;
            out.push(StudyRow {
                scheme,
                deployments: *n,
                mean_ms: m / r,
                p95_ms: p95 / r,
                p99_ms: p99 / r,
            });
        }
    }
    out
}

/// One random ordering: incremental minima as deployments are added.
#[allow(clippy::too_many_arguments)]
fn run_one(
    seed: u64,
    n_universe: usize,
    n_ldns: usize,
    counts: &[usize],
    observations: &[Observation],
    matrix: &PingMatrix,
    ns_matrix: &[f32],
    cans_matrix: &[f32],
) -> Vec<RunRow> {
    let mut order: Vec<usize> = (0..n_universe).collect();
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let n_targets = matrix.targets();
    // EU: best ping per target so far.
    let mut eu_best = vec![f32::INFINITY; n_targets];
    // NS / CANS: best deployment per LDNS so far.
    let mut ns_best: Vec<(f32, u32)> = vec![(f32::INFINITY, 0); n_ldns];
    let mut cans_best: Vec<(f32, u32)> = vec![(f32::INFINITY, 0); n_ldns];

    let mut out = Vec::new();
    let mut added = 0usize;
    for &n in counts {
        let n = n.min(n_universe);
        while added < n {
            let d = order[added];
            for (t, best) in eu_best.iter_mut().enumerate() {
                let p = matrix.ping(d, TargetId(t as u32)) as f32;
                if p < *best {
                    *best = p;
                }
            }
            for l in 0..n_ldns {
                let v = ns_matrix[d * n_ldns + l];
                if v < ns_best[l].0 {
                    ns_best[l] = (v, d as u32);
                }
                let v = cans_matrix[d * n_ldns + l];
                if v < cans_best[l].0 {
                    cans_best[l] = (v, d as u32);
                }
            }
            added += 1;
        }
        // Evaluate each scheme over the observations.
        let mut samples: HashMap<Scheme, WeightedSample> = HashMap::new();
        for obs in observations {
            let l = obs.ldns_idx as usize;
            let eu = eu_best[obs.target.index()] as f64;
            let ns = matrix.ping(ns_best[l].1 as usize, obs.target);
            let cans = matrix.ping(cans_best[l].1 as usize, obs.target);
            samples
                .entry(Scheme::Eu)
                .or_default()
                .push_weighted(eu, obs.weight);
            samples
                .entry(Scheme::Ns)
                .or_default()
                .push_weighted(ns, obs.weight);
            samples
                .entry(Scheme::Cans)
                .or_default()
                .push_weighted(cans, obs.weight);
        }
        for (scheme, mut s) in samples {
            out.push((
                scheme,
                n,
                s.mean().expect("non-empty"),
                s.quantile(0.95).expect("non-empty"),
                s.quantile(0.99).expect("non-empty"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_netmodel::InternetConfig;

    fn study() -> Vec<StudyRow> {
        let net = Internet::generate(InternetConfig::tiny(0xF16));
        run_study(&net, &StudyConfig::quick(0xF16))
    }

    #[test]
    fn produces_all_rows() {
        let rows = study();
        assert_eq!(rows.len(), 4 * 3);
        for r in &rows {
            assert!(r.mean_ms.is_finite() && r.mean_ms > 0.0);
            assert!(r.p95_ms >= r.mean_ms * 0.3);
            assert!(r.p99_ms >= r.p95_ms - 1e-9);
        }
    }

    #[test]
    fn latency_decreases_with_more_deployments() {
        let rows = study();
        for scheme in Scheme::ALL {
            let series: Vec<&StudyRow> = rows.iter().filter(|r| r.scheme == scheme).collect();
            let first = series.first().unwrap();
            let last = series.last().unwrap();
            assert!(
                last.mean_ms <= first.mean_ms + 1e-9,
                "{}: mean rose from {} to {}",
                scheme.label(),
                first.mean_ms,
                last.mean_ms
            );
        }
    }

    #[test]
    fn eu_is_best_at_the_tail() {
        let rows = study();
        let max_n = rows.iter().map(|r| r.deployments).max().unwrap();
        let row = |s: Scheme| {
            rows.iter()
                .find(|r| r.scheme == s && r.deployments == max_n)
                .unwrap()
        };
        let eu = row(Scheme::Eu);
        let ns = row(Scheme::Ns);
        let cans = row(Scheme::Cans);
        assert!(
            eu.p99_ms <= ns.p99_ms + 1e-9,
            "EU p99 {} > NS p99 {}",
            eu.p99_ms,
            ns.p99_ms
        );
        assert!(eu.p99_ms <= cans.p99_ms + 1e-9);
        assert!(eu.mean_ms <= ns.mean_ms + 1e-9);
    }

    #[test]
    fn study_is_deterministic() {
        let net = Internet::generate(InternetConfig::tiny(0xF17));
        let a = run_study(&net, &StudyConfig::quick(1));
        let b = run_study(&net, &StudyConfig::quick(1));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.scheme, y.scheme);
            assert_eq!(x.deployments, y.deployments);
            assert_eq!(x.mean_ms, y.mean_ms);
            assert_eq!(x.p99_ms, y.p99_ms);
        }
    }

    #[test]
    fn schemes_coincide_with_one_deployment() {
        // With a single deployment location there is no choice to make:
        // all schemes must produce identical latencies.
        let net = Internet::generate(InternetConfig::tiny(0xF18));
        let cfg = StudyConfig {
            deployment_counts: vec![1],
            runs: 2,
            ..StudyConfig::quick(3)
        };
        let rows = run_study(&net, &cfg);
        let by: HashMap<Scheme, &StudyRow> = rows.iter().map(|r| (r.scheme, r)).collect();
        assert!((by[&Scheme::Eu].mean_ms - by[&Scheme::Ns].mean_ms).abs() < 1e-6);
        assert!((by[&Scheme::Eu].p99_ms - by[&Scheme::Cans].p99_ms).abs() < 1e-6);
    }
}
