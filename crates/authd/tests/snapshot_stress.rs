//! Snapshot generation-swap stress: serving threads drive [`ShardState`]
//! directly (no sockets) while the main thread publishes new map
//! generations through the shared [`SnapshotHandle`]. Each thread pins
//! that every reply is well-formed, matches exactly the answer the
//! generation it grabbed computes, and that observed generations never go
//! backwards — a torn publish, a cache surviving a swap, or an answer
//! mixing two maps all fail these assertions.

use eum_authd::{
    CacheConfig, QueryStages, ReplyCap, ServeOutcome, ShardState, Snapshot, SnapshotHandle,
};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, Message, QueryContext, Question, Rcode};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_netmodel::{Internet, InternetConfig};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x5AB;

/// Deterministic world; every call yields an identical map.
fn world() -> (Internet, CdnPlatform, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, cdn, map)
}

fn answer_ips(map: &MappingSystem, server: Ipv4Addr, query: &Message) -> Vec<Ipv4Addr> {
    let ctx = QueryContext {
        resolver_ip: Ipv4Addr::LOCALHOST,
        now_ms: 0,
    };
    let resp = map.answer(server, query, &ctx);
    assert_eq!(resp.flags.rcode, Rcode::NoError);
    let mut ips = resp.answer_ips();
    ips.sort_unstable();
    ips
}

/// One probe plus the exact answer each published generation computes.
struct Probe {
    payload: Vec<u8>,
    id: u16,
    /// `expect[g - 1]` is the sorted answer set generation `g` serves.
    expect: Vec<Vec<Ipv4Addr>>,
}

#[test]
fn generation_swaps_under_concurrent_serving_stay_consistent() {
    // Four identical worlds: one to serve as generation 1, one (with a
    // cluster killed) as generation 2, one as generation 3, and one kept
    // aside purely to precompute what generations 1/3 answer.
    let (net, _cdn, map1) = world();
    let (_n2, mut cdn2, mut map2) = world();
    let (_n3, _c3, map3) = world();
    let low = map1.ns_ips()[1];

    let probe_blocks: Vec<_> = net.blocks.iter().take(24).map(|b| b.client_ip()).collect();
    let victim = probe_blocks
        .iter()
        .find_map(|ip| map1.assigned_cluster_for_block(eum_geo::Prefix::of(*ip, 24)))
        .expect("some probe block maps to a cluster");
    cdn2.set_cluster_alive(victim, false);
    map2.refresh_liveness(&cdn2);

    let mut probes = Vec::new();
    for (i, client) in probe_blocks.iter().take(6).enumerate() {
        let id = 0x6000 + i as u16;
        let q = Message::query(
            id,
            Question::a("e0.cdn.example".parse().unwrap()),
            Some(OptData::with_ecs(EcsOption::query(*client, 24))),
        );
        let e1 = answer_ips(&map1, low, &q);
        let e2 = answer_ips(&map2, low, &q);
        probes.push(Probe {
            payload: encode_message(&q),
            id,
            // Generation 3 republishes a fresh identical world, so its
            // answers equal generation 1's.
            expect: vec![e1.clone(), e2, e1],
        });
    }
    assert!(
        probes.iter().any(|p| p.expect[0] != p.expect[1]),
        "the killed cluster must change at least one probe's answer"
    );
    let probes = Arc::new(probes);

    let snapshots = SnapshotHandle::new(map1);
    let done = Arc::new(AtomicBool::new(false));

    let mut workers = Vec::new();
    for t in 0..4usize {
        let probes = probes.clone();
        let snapshots = snapshots.clone();
        let done = done.clone();
        workers.push(std::thread::spawn(move || {
            let mut state = ShardState::new(Some(CacheConfig::default()));
            let mut stages = QueryStages::new(false);
            let mut last_gen = 0u64;
            let mut served = 0u64;
            let mut pass = 0usize;
            while !done.load(Ordering::Acquire) || last_gen < 3 {
                let snap: Arc<Snapshot> = snapshots.current();
                assert!(
                    snap.generation >= last_gen,
                    "generation went backwards: {} after {last_gen}",
                    snap.generation
                );
                last_gen = snap.generation;
                state.observe(&snap);
                // Stagger the probe order per thread and per pass so the
                // cache sees both hits and misses around each swap.
                for i in 0..probes.len() {
                    let probe = &probes[(t + pass + i) % probes.len()];
                    let outcome = state.serve(
                        &snap.map,
                        low,
                        Ipv4Addr::LOCALHOST,
                        &probe.payload,
                        ReplyCap::udp(),
                        &mut stages,
                    );
                    assert!(
                        matches!(outcome, ServeOutcome::Replied { .. }),
                        "probe {:#06x} got {outcome:?}",
                        probe.id
                    );
                    let resp = decode_message(state.reply()).expect("reply must decode");
                    assert_eq!(resp.id, probe.id);
                    assert_eq!(resp.flags.rcode, Rcode::NoError);
                    let mut ips = resp.answer_ips();
                    ips.sort_unstable();
                    let want = &probe.expect[(snap.generation - 1) as usize];
                    assert_eq!(
                        ips, *want,
                        "generation {} answered {ips:?}, expected {want:?}",
                        snap.generation
                    );
                    served += 1;
                }
                pass += 1;
            }
            assert!(
                state.generations_seen() >= 2,
                "worker never observed a swap (saw {})",
                state.generations_seen()
            );
            served
        }));
    }

    // Let generation 1 serve, then swap twice under load.
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(snapshots.publish(map2), 2);
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(snapshots.publish(map3), 3);
    std::thread::sleep(Duration::from_millis(30));
    done.store(true, Ordering::Release);

    let mut total = 0u64;
    for w in workers {
        total += w.join().expect("worker thread");
    }
    assert!(total > 0, "workers served nothing");
    assert_eq!(snapshots.generation(), 3);
}
