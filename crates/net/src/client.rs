//! The socket-backed client: UDP exchanges with a DNS-over-TCP retry
//! leg, implementing authd's [`ClientTransport`] so the load generator
//! and the eum-ldns resolver fleet drive real sockets unchanged.

use eum_authd::{ClientTransport, MAX_DATAGRAM};
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpStream, UdpSocket};
use std::time::Duration;

/// One client's sockets: a UDP socket for the datagram path and the
/// address list of the server's TCP fallback listeners.
pub struct SocketClient {
    socket: UdpSocket,
    udp_addrs: Vec<SocketAddr>,
    tcp_addrs: Vec<SocketAddr>,
    buf: Box<[u8; MAX_DATAGRAM]>,
}

impl SocketClient {
    /// Binds an ephemeral loopback client socket. `udp_addrs` is the
    /// shard address list from
    /// [`crate::ReuseportUdpTransport::bind_shards`]; `tcp_addrs` may be
    /// empty, in which case `exchange_stream` reports `Unsupported`.
    pub fn connect(
        udp_addrs: Vec<SocketAddr>,
        tcp_addrs: Vec<SocketAddr>,
    ) -> io::Result<SocketClient> {
        assert!(!udp_addrs.is_empty(), "need at least one shard address");
        let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
        Ok(SocketClient {
            socket,
            udp_addrs,
            tcp_addrs,
            buf: Box::new([0; MAX_DATAGRAM]),
        })
    }
}

impl ClientTransport for SocketClient {
    fn exchange(
        &mut self,
        shard: usize,
        _server_ip: Ipv4Addr,
        _resolver_ip: Ipv4Addr,
        payload: &[u8],
        timeout: Duration,
    ) -> io::Result<Vec<u8>> {
        let dest = self.udp_addrs[shard % self.udp_addrs.len()];
        self.socket.send_to(payload, dest)?;
        self.socket.set_read_timeout(Some(timeout))?;
        loop {
            let (n, from) = self.socket.recv_from(&mut self.buf[..]).map_err(|e| {
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) {
                    io::Error::new(io::ErrorKind::TimedOut, "no response")
                } else {
                    e
                }
            })?;
            // A straggler from an earlier timed-out exchange may arrive
            // from another address; only accept the queried peer. With
            // SO_REUSEPORT every shard shares one address, so this only
            // filters cross-server noise.
            if from == dest {
                return Ok(self.buf[..n].to_vec());
            }
        }
    }

    fn exchange_stream(
        &mut self,
        shard: usize,
        _server_ip: Ipv4Addr,
        _resolver_ip: Ipv4Addr,
        payload: &[u8],
        timeout: Duration,
    ) -> io::Result<Vec<u8>> {
        if self.tcp_addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no TCP fallback address configured",
            ));
        }
        let dest = self.tcp_addrs[shard % self.tcp_addrs.len()];
        // One connection per exchange, like a resolver retrying a single
        // truncated answer (RFC 1035 §4.2.2 framing).
        let mut stream = TcpStream::connect_timeout(&dest, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let _ = stream.set_nodelay(true);
        let len = payload.len().min(u16::MAX as usize);
        stream.write_all(&(len as u16).to_be_bytes())?;
        stream.write_all(&payload[..len])?;
        let mut lenb = [0u8; 2];
        stream.read_exact(&mut lenb)?;
        let need = u16::from_be_bytes(lenb) as usize;
        let mut resp = vec![0u8; need];
        stream.read_exact(&mut resp)?;
        Ok(resp)
    }

    fn num_shards(&self) -> usize {
        self.udp_addrs.len()
    }
}
