//! The authoritative-side answer cache, ECS-scope aware.
//!
//! Computing an answer means routing through the snapshot's candidate
//! tables and consistent-hash rings. For a hot domain the result is
//! identical for every client inside the answer's ECS *scope* (the `/y`
//! of Figure 4's `/y ≤ /x` narrowing), so each serving shard memoizes
//! finished answers and replays them for equivalent queries.
//!
//! Two strictly separated tables keep the RFC 7871 reuse rules honest:
//!
//! * **Scoped answers** (`scope > 0`, the end-user path) are keyed by
//!   `(qname, qtype, scope block)`. A lookup probes the client's address
//!   truncated to each scope length present in the cache, longest first,
//!   so an entry is only ever reused for clients *inside* the stored
//!   scope.
//! * **Resolver answers** (no ECS in the query, a policy that ignores
//!   it, or a top-level delegation) are keyed by `(qname, qtype,
//!   resolver ip, serving ip)`. They are never consulted for ECS queries
//!   on the end-user path, so a `/0` answer cannot leak to a client the
//!   map would have steered elsewhere.
//!
//! Entries expire with the answer's record TTL, capacity is bounded with
//! FIFO eviction, and hits/misses/evictions are counted per shard (each
//! shard owns its cache outright — no cross-shard locking).

use eum_dns::{DnsName, Message, Rcode, Record, RrType};
use eum_geo::Prefix;
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

/// Cache sizing and policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum entries across both tables (FIFO eviction beyond this).
    pub max_entries: usize,
    /// Cap on any entry's lifetime, seconds, regardless of record TTL —
    /// bounds how long a control-plane change can be masked by the cache
    /// when the generation does not change.
    pub max_ttl_s: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 65_536,
            max_ttl_s: 300,
        }
    }
}

/// Per-shard cache counters. Counters are **cumulative over the cache's
/// lifetime**: [`AnswerCache::clear`] drops the entries but never the
/// stats, so hit ratios stay meaningful across snapshot-generation swaps
/// (each swap is itself counted in `generation_clears`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnswerCacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that had to compute the answer.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Subset of `insertions` keyed by ECS scope block (the end-user
    /// path); the rest were resolver-keyed.
    pub scoped_insertions: u64,
    /// Times the cache was wholesale-cleared for a new map generation.
    pub generation_clears: u64,
}

/// A memoized answer: the sections of the response minus the per-query
/// parts (ID, echoed question, echoed ECS), which are rebuilt per hit.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// Response code.
    pub rcode: Rcode,
    /// Answer-section records.
    pub answers: Vec<Record>,
    /// Authority-section records (top-level delegations).
    pub authorities: Vec<Record>,
    /// Additional-section records minus OPT (delegation glue).
    pub additionals: Vec<Record>,
    /// The answered ECS scope (`None` for resolver-keyed entries).
    pub scope: Option<u8>,
    expires: Instant,
}

impl CachedAnswer {
    /// Captures the cacheable parts of a computed response.
    pub fn from_response(resp: &Message, ttl_s: u32, now: Instant) -> CachedAnswer {
        CachedAnswer {
            rcode: resp.flags.rcode,
            answers: resp.answers.clone(),
            authorities: resp.authorities.clone(),
            additionals: resp
                .additionals
                .iter()
                .filter(|r| !matches!(r.rdata, eum_dns::RData::Opt(_)))
                .cloned()
                .collect(),
            scope: resp.ecs().map(|e| e.scope_prefix),
            expires: now + Duration::from_secs(ttl_s as u64),
        }
    }

    /// True once the entry's TTL has run out.
    pub fn expired(&self, now: Instant) -> bool {
        now >= self.expires
    }
}

/// Which table an entry lives in.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    /// End-user answers, valid inside a scope block. Low-level answers do
    /// not depend on which cluster NS received the query, so the serving
    /// IP is not part of the key.
    Scoped(DnsName, RrType, Prefix),
    /// Resolver-derived answers, valid for one LDNS *at one serving IP* —
    /// the same name yields a delegation at the top level but an A answer
    /// at a low level, so the server IP must split those entries.
    Resolver(DnsName, RrType, Ipv4Addr, Ipv4Addr),
}

/// The per-shard answer cache.
pub struct AnswerCache {
    cfg: CacheConfig,
    map: HashMap<Key, CachedAnswer>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Key>,
    /// How many live entries use each scope length — lookups probe only
    /// lengths actually present.
    scope_lens: [u32; 33],
    stats: AnswerCacheStats,
}

impl AnswerCache {
    /// An empty cache with the given bounds.
    pub fn new(cfg: CacheConfig) -> AnswerCache {
        AnswerCache {
            cfg,
            map: HashMap::new(),
            order: VecDeque::new(),
            scope_lens: [0; 33],
            stats: AnswerCacheStats::default(),
        }
    }

    /// Looks up a scoped (end-user) answer for `client`, probing the scope
    /// lengths present in the cache from most to least specific. Scopes
    /// longer than `max_scope` (the query's ECS source prefix) are never
    /// reused — the answer's `/y ≤ /x` guarantee must survive caching.
    /// Counts a hit or miss.
    pub fn lookup_scoped(
        &mut self,
        qname: &DnsName,
        qtype: RrType,
        client: Ipv4Addr,
        max_scope: u8,
        now: Instant,
    ) -> Option<CachedAnswer> {
        for len in (1..=max_scope.min(32)).rev() {
            if self.scope_lens[len as usize] == 0 {
                continue;
            }
            let key = Key::Scoped(qname.clone(), qtype, Prefix::of(client, len));
            match self.map.get(&key) {
                Some(e) if !e.expired(now) => {
                    self.stats.hits += 1;
                    return Some(e.clone());
                }
                Some(_) => self.remove(&key),
                None => {}
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Looks up a resolver-keyed answer for queries `resolver` sent to
    /// the authoritative IP `server`. Counts a hit or miss.
    pub fn lookup_resolver(
        &mut self,
        qname: &DnsName,
        qtype: RrType,
        resolver: Ipv4Addr,
        server: Ipv4Addr,
        now: Instant,
    ) -> Option<CachedAnswer> {
        let key = Key::Resolver(qname.clone(), qtype, resolver, server);
        match self.map.get(&key) {
            Some(e) if !e.expired(now) => {
                self.stats.hits += 1;
                return Some(e.clone());
            }
            Some(_) => self.remove(&key),
            None => {}
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a scoped answer valid for `scope_block`.
    pub fn insert_scoped(
        &mut self,
        qname: DnsName,
        qtype: RrType,
        scope_block: Prefix,
        answer: CachedAnswer,
    ) {
        self.insert(Key::Scoped(qname, qtype, scope_block), answer);
    }

    /// Inserts a resolver-keyed answer for the given serving IP.
    pub fn insert_resolver(
        &mut self,
        qname: DnsName,
        qtype: RrType,
        resolver: Ipv4Addr,
        server: Ipv4Addr,
        answer: CachedAnswer,
    ) {
        self.insert(Key::Resolver(qname, qtype, resolver, server), answer);
    }

    fn insert(&mut self, key: Key, mut answer: CachedAnswer) {
        let cap = Instant::now() + Duration::from_secs(self.cfg.max_ttl_s as u64);
        if answer.expires > cap {
            answer.expires = cap;
        }
        while self.map.len() >= self.cfg.max_entries.max(1) {
            match self.order.pop_front() {
                Some(oldest) => {
                    if self.map.remove(&oldest).is_some() {
                        self.on_removed(&oldest);
                        self.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
        if let Key::Scoped(_, _, p) = &key {
            self.scope_lens[p.len() as usize] += 1;
            self.stats.scoped_insertions += 1;
        }
        if self.map.insert(key.clone(), answer).is_none() {
            self.order.push_back(key);
        } else if let Key::Scoped(_, _, p) = &key {
            // Replaced in place: undo the double count.
            self.scope_lens[p.len() as usize] -= 1;
        }
        self.stats.insertions += 1;
    }

    fn remove(&mut self, key: &Key) {
        if self.map.remove(key).is_some() {
            self.on_removed(key);
            self.order.retain(|k| k != key);
        }
    }

    fn on_removed(&mut self, key: &Key) {
        if let Key::Scoped(_, _, p) = key {
            self.scope_lens[p.len() as usize] -= 1;
        }
    }

    /// Drops every entry (used when a new snapshot generation lands).
    /// Stats survive — they are cumulative across generations — and the
    /// clear itself is counted.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.scope_lens = [0; 33];
        self.stats.generation_clears += 1;
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> AnswerCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_dns::name::name;

    fn ns() -> Ipv4Addr {
        "192.0.2.2".parse().unwrap()
    }

    fn entry(ttl_s: u32) -> CachedAnswer {
        CachedAnswer {
            rcode: Rcode::NoError,
            answers: vec![Record::a(
                name("e0.cdn.example"),
                ttl_s,
                [9, 9, 9, 9].into(),
            )],
            authorities: vec![],
            additionals: vec![],
            scope: Some(24),
            expires: Instant::now() + Duration::from_secs(ttl_s as u64),
        }
    }

    #[test]
    fn scoped_hit_requires_client_inside_scope() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            entry(30),
        );
        assert!(c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.77".parse().unwrap(),
                24,
                now
            )
            .is_some());
        assert!(c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.3.77".parse().unwrap(),
                24,
                now
            )
            .is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn longest_scope_wins_over_broader_one() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        let mut broad = entry(30);
        broad.scope = Some(16);
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.0.0/16".parse().unwrap(),
            broad,
        );
        let mut narrow = entry(30);
        narrow.scope = Some(24);
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            narrow,
        );
        let got = c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.5".parse().unwrap(),
                24,
                now,
            )
            .unwrap();
        assert_eq!(got.scope, Some(24));
        let got = c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.9.5".parse().unwrap(),
                24,
                now,
            )
            .unwrap();
        assert_eq!(got.scope, Some(16));
    }

    #[test]
    fn resolver_entries_do_not_answer_scoped_lookups() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        let ldns: Ipv4Addr = "8.8.8.8".parse().unwrap();
        c.insert_resolver(name("e0.cdn.example"), RrType::A, ldns, ns(), entry(30));
        // The very client the resolver serves still misses the scoped path.
        assert!(c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.77".parse().unwrap(),
                24,
                now
            )
            .is_none());
        assert!(c
            .lookup_resolver(&name("e0.cdn.example"), RrType::A, ldns, ns(), now)
            .is_some());
    }

    #[test]
    fn expiry_removes_entries() {
        let mut c = AnswerCache::new(CacheConfig::default());
        c.insert_resolver(
            name("e0.cdn.example"),
            RrType::A,
            "8.8.8.8".parse().unwrap(),
            ns(),
            entry(0),
        );
        let later = Instant::now() + Duration::from_millis(1);
        assert!(c
            .lookup_resolver(
                &name("e0.cdn.example"),
                RrType::A,
                "8.8.8.8".parse().unwrap(),
                ns(),
                later
            )
            .is_none());
        assert!(c.is_empty(), "expired entry must be dropped on lookup");
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let mut c = AnswerCache::new(CacheConfig {
            max_entries: 2,
            max_ttl_s: 300,
        });
        let now = Instant::now();
        for i in 0..3u8 {
            c.insert_resolver(
                name(&format!("e{i}.cdn.example")),
                RrType::A,
                "8.8.8.8".parse().unwrap(),
                ns(),
                entry(30),
            );
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c
            .lookup_resolver(
                &name("e0.cdn.example"),
                RrType::A,
                "8.8.8.8".parse().unwrap(),
                ns(),
                now
            )
            .is_none());
        assert!(c
            .lookup_resolver(
                &name("e2.cdn.example"),
                RrType::A,
                "8.8.8.8".parse().unwrap(),
                ns(),
                now
            )
            .is_some());
    }

    #[test]
    fn stats_accumulate_across_generation_clears() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            entry(30),
        );
        let _ = c.lookup_scoped(
            &name("e0.cdn.example"),
            RrType::A,
            "10.1.2.77".parse().unwrap(),
            24,
            now,
        );
        c.clear();
        c.insert_resolver(
            name("e0.cdn.example"),
            RrType::A,
            "8.8.8.8".parse().unwrap(),
            ns(),
            entry(30),
        );
        let _ = c.lookup_resolver(
            &name("e0.cdn.example"),
            RrType::A,
            "8.8.8.8".parse().unwrap(),
            ns(),
            now,
        );
        c.clear();
        let s = c.stats();
        assert_eq!(s.hits, 2, "hits must survive clears");
        assert_eq!(s.insertions, 2);
        assert_eq!(s.scoped_insertions, 1);
        assert_eq!(s.generation_clears, 2);
    }

    #[test]
    fn clear_resets_scope_probe_table() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            entry(30),
        );
        c.clear();
        assert!(c.is_empty());
        assert!(c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.77".parse().unwrap(),
                24,
                now
            )
            .is_none());
    }
}
