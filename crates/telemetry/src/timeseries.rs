//! Windowed time-series capture over a [`Registry`].
//!
//! The registry is cumulative — perfect for "what happened since boot",
//! useless for "what happened *during the flip*". The paper's §6–§8
//! evidence is all time-resolved (cache-hit-rate dips, query-rate steps
//! across the NS switchover), so this module adds the missing axis: a
//! [`WindowCapturer`] snapshots the registry at a fixed cadence
//! (typically from a [`crate::Reporter`] thread), diffs each capture
//! against the previous one into a [`Window`] of per-series deltas —
//! counter increments, gauge values, per-window histogram count/p50/p99
//! from bucket diffs — and retains the last `retain` windows in a
//! bounded ring serializable to JSONL.
//!
//! The hot record path is untouched: recording stays single relaxed
//! atomics, and everything here (sampling, diffing, JSON rendering)
//! runs on the capture thread. The capturer's internal mutex is shared
//! only between the Reporter thread and scrape-endpoint readers.
//!
//! Counter deltas reconcile exactly: for any series, the sum of
//! `CounterDelta` across all captured windows equals the cumulative
//! counter at the last capture (the first window baselines at 0). The
//! `timeseries_prop` proptest pins this under concurrent increments.

use crate::registry::{Registry, SampleValue};
use crate::report::Reporter;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One series' contribution to a window.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowValue {
    /// How much a counter grew during the window.
    CounterDelta(u64),
    /// A gauge's value at the window's closing capture.
    Gauge(f64),
    /// A histogram's within-window samples: count and bucket-diff
    /// quantiles (same ≤6.25% relative-error bound as cumulative
    /// quantiles).
    Histogram {
        /// Samples recorded during the window.
        count: u64,
        /// Window p50 (0 when the window recorded nothing).
        p50: f64,
        /// Window p99 (0 when the window recorded nothing).
        p99: f64,
    },
}

/// One `(series, value)` row of a window.
#[derive(Debug, Clone)]
pub struct WindowRow {
    /// Family name.
    pub name: String,
    /// Rendered label string (empty for none).
    pub labels: String,
    /// The per-window value.
    pub value: WindowValue,
}

/// One captured window: every registered series, diffed against the
/// previous capture.
#[derive(Debug, Clone)]
pub struct Window {
    /// Monotone window index (0 = first capture since construction).
    pub index: u64,
    /// Milliseconds from capturer construction to this capture.
    pub elapsed_ms: u64,
    /// Milliseconds this window spans (elapsed since prior capture).
    pub duration_ms: u64,
    /// Per-series rows, in registry render order.
    pub rows: Vec<WindowRow>,
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`0` for non-finite values, which
/// JSON cannot carry).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl Window {
    /// Renders the window as one JSON line (no trailing newline):
    /// `{"window":N,"elapsed_ms":E,"duration_ms":D,"counters":{…},
    /// "gauges":{…},"histograms":{…}}`. Series keys are
    /// `name{labels}`.
    pub fn to_json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for row in &self.rows {
            let key = json_escape(&format!("{}{}", row.name, row.labels));
            match &row.value {
                WindowValue::CounterDelta(d) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    let _ = write!(counters, "\"{key}\":{d}");
                }
                WindowValue::Gauge(v) => {
                    if !gauges.is_empty() {
                        gauges.push(',');
                    }
                    let _ = write!(gauges, "\"{key}\":{}", json_f64(*v));
                }
                WindowValue::Histogram { count, p50, p99 } => {
                    if !hists.is_empty() {
                        hists.push(',');
                    }
                    let _ = write!(
                        hists,
                        "\"{key}\":{{\"count\":{count},\"p50\":{},\"p99\":{}}}",
                        json_f64(*p50),
                        json_f64(*p99)
                    );
                }
            }
        }
        format!(
            "{{\"window\":{},\"elapsed_ms\":{},\"duration_ms\":{},\
             \"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\
             \"histograms\":{{{hists}}}}}",
            self.index, self.elapsed_ms, self.duration_ms
        )
    }
}

struct CaptureState {
    /// Previous capture per `name{labels}` key, for delta computation.
    prev: HashMap<String, SampleValue>,
    prev_elapsed_ms: u64,
    windows: VecDeque<Window>,
    next_index: u64,
}

/// Captures windowed deltas of a registry into a bounded ring.
pub struct WindowCapturer {
    registry: Arc<Registry>,
    retain: usize,
    start: Instant,
    state: Mutex<CaptureState>,
}

impl std::fmt::Debug for WindowCapturer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().expect("capturer poisoned");
        f.debug_struct("WindowCapturer")
            .field("retain", &self.retain)
            .field("captured", &s.next_index)
            .finish()
    }
}

impl WindowCapturer {
    /// A capturer retaining the most recent `retain` windows.
    pub fn new(registry: Arc<Registry>, retain: usize) -> WindowCapturer {
        WindowCapturer {
            registry,
            retain: retain.max(1),
            start: Instant::now(),
            state: Mutex::new(CaptureState {
                prev: HashMap::new(),
                prev_elapsed_ms: 0,
                windows: VecDeque::new(),
                next_index: 0,
            }),
        }
    }

    /// Takes one capture, closing a window against the previous capture
    /// (the first window baselines against zero). Returns the window's
    /// index.
    pub fn capture(&self) -> u64 {
        let samples = self.registry.sample();
        let elapsed_ms = self.start.elapsed().as_millis() as u64;
        let mut state = self.state.lock().expect("capturer poisoned");
        let mut rows = Vec::with_capacity(samples.len());
        let mut next_prev = HashMap::with_capacity(samples.len());
        for s in samples {
            let key = format!("{}{}", s.name, s.labels);
            let value = match &s.value {
                SampleValue::Counter(cur) => {
                    let before = match state.prev.get(&key) {
                        Some(SampleValue::Counter(p)) => *p,
                        _ => 0,
                    };
                    WindowValue::CounterDelta(cur.saturating_sub(before))
                }
                SampleValue::Gauge(v) => WindowValue::Gauge(*v),
                SampleValue::Histogram(cur) => {
                    let delta = match state.prev.get(&key) {
                        Some(SampleValue::Histogram(p)) => cur.delta_since(p),
                        _ => cur.clone(),
                    };
                    WindowValue::Histogram {
                        count: delta.count(),
                        p50: delta.quantile(0.5),
                        p99: delta.quantile(0.99),
                    }
                }
            };
            rows.push(WindowRow {
                name: s.name,
                labels: s.labels,
                value,
            });
            next_prev.insert(key, s.value);
        }
        let index = state.next_index;
        state.next_index += 1;
        let window = Window {
            index,
            elapsed_ms,
            duration_ms: elapsed_ms.saturating_sub(state.prev_elapsed_ms),
            rows,
        };
        state.prev = next_prev;
        state.prev_elapsed_ms = elapsed_ms;
        state.windows.push_back(window);
        while state.windows.len() > self.retain {
            state.windows.pop_front();
        }
        index
    }

    /// Clones out the retained windows, oldest first.
    pub fn windows(&self) -> Vec<Window> {
        self.state
            .lock()
            .expect("capturer poisoned")
            .windows
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the retained windows as JSONL (one JSON object per line,
    /// oldest first) — what the scrape endpoint serves at
    /// `/timeseries.jsonl`.
    pub fn to_jsonl(&self) -> String {
        let state = self.state.lock().expect("capturer poisoned");
        let mut out = String::new();
        for w in &state.windows {
            out.push_str(&w.to_json());
            out.push('\n');
        }
        out
    }

    /// Spawns a [`Reporter`] thread capturing a window every `interval`.
    /// The reporter's guaranteed final tick closes the last partial
    /// window on shutdown.
    pub fn start(capturer: Arc<WindowCapturer>, interval: Duration) -> Reporter {
        Reporter::spawn(interval, move || {
            capturer.capture();
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_deltas_sum_to_cumulative() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("eum_test_total", "t", &[]);
        let cap = WindowCapturer::new(reg, 16);
        c.add(3);
        cap.capture();
        c.add(5);
        cap.capture();
        cap.capture();
        let windows = cap.windows();
        let deltas: Vec<u64> = windows
            .iter()
            .map(|w| match w.rows[0].value {
                WindowValue::CounterDelta(d) => d,
                _ => panic!("expected counter"),
            })
            .collect();
        assert_eq!(deltas, vec![3, 5, 0]);
        assert_eq!(deltas.iter().sum::<u64>(), c.get());
    }

    #[test]
    fn histogram_windows_quantile_their_own_samples() {
        let reg = Arc::new(Registry::new());
        let h = reg.histogram("eum_lat_ns", "t", &[]);
        let cap = WindowCapturer::new(reg, 16);
        for _ in 0..100 {
            h.record(10);
        }
        cap.capture();
        for _ in 0..100 {
            h.record(1000);
        }
        cap.capture();
        let windows = cap.windows();
        let get = |w: &Window| match w.rows[0].value {
            WindowValue::Histogram { count, p50, .. } => (count, p50),
            _ => panic!("expected histogram"),
        };
        let (c0, p0) = get(&windows[0]);
        let (c1, p1) = get(&windows[1]);
        assert_eq!((c0, c1), (100, 100));
        assert!((p0 - 10.0).abs() / 10.0 <= 1.0 / 16.0, "w0 p50 {p0}");
        assert!((p1 - 1000.0).abs() / 1000.0 <= 1.0 / 16.0, "w1 p50 {p1}");
    }

    #[test]
    fn ring_is_bounded_and_jsonl_is_one_line_per_window() {
        let reg = Arc::new(Registry::new());
        reg.gauge("eum_g", "t", &[("k", "v\"q")]).set(1.25);
        let cap = WindowCapturer::new(reg, 3);
        for _ in 0..5 {
            cap.capture();
        }
        let windows = cap.windows();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].index, 2, "oldest retained window");
        let jsonl = cap.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"window\":"));
            assert!(line.ends_with('}'));
            // The Prometheus-escaped label value embeds cleanly in JSON.
            assert!(line.contains("eum_g{k=\\\"v\\\\\\\"q\\\"}"));
        }
    }

    #[test]
    fn reporter_driven_capture_closes_final_window() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("eum_test_total", "t", &[]);
        let cap = Arc::new(WindowCapturer::new(reg, 8));
        let rep = WindowCapturer::start(cap.clone(), Duration::from_secs(3600));
        c.add(9);
        rep.stop();
        let windows = cap.windows();
        assert!(!windows.is_empty(), "final tick must capture");
        let total: u64 = windows
            .iter()
            .map(|w| match w.rows[0].value {
                WindowValue::CounterDelta(d) => d,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 9);
    }
}
