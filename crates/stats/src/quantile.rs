//! Weighted samples and exact weighted quantiles.
//!
//! Every distribution in the paper is weighted by *client demand* ("Client
//! demand is a measure of the amount of content traffic downloaded by a
//! client", §3.1 fn. 5), so the base abstraction is a collection of
//! `(value, weight)` pairs with exact quantile extraction.

use serde::{Deserialize, Serialize};

/// A collection of `(value, weight)` observations supporting exact weighted
/// quantiles, weighted mean, and total weight.
///
/// Non-finite values and non-positive weights are silently skipped on
/// insertion so that one bad sample cannot poison a whole figure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WeightedSample {
    pairs: Vec<(f64, f64)>,
    sorted: bool,
}

impl WeightedSample {
    /// Creates an empty sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation with weight 1.
    pub fn push(&mut self, value: f64) {
        self.push_weighted(value, 1.0);
    }

    /// Adds a weighted observation. Skips NaN/infinite values and
    /// non-positive weights.
    pub fn push_weighted(&mut self, value: f64, weight: f64) {
        if value.is_finite() && weight > 0.0 && weight.is_finite() {
            self.pairs.push((value, weight));
            self.sorted = false;
        }
    }

    /// Merges another sample into this one.
    pub fn extend_from(&mut self, other: &WeightedSample) {
        self.pairs.extend_from_slice(&other.pairs);
        self.sorted = false;
    }

    /// Number of (retained) observations.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no observations are present.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Total weight.
    pub fn total_weight(&self) -> f64 {
        self.pairs.iter().map(|(_, w)| w).sum()
    }

    /// Weighted mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        crate::weighted_mean(self.pairs.iter().copied())
    }

    /// Minimum value, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.pairs.iter().map(|(v, _)| *v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.min(v),
            })
        })
    }

    /// Maximum value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.pairs.iter().map(|(v, _)| *v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.pairs.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("values are finite by construction")
            });
            self.sorted = true;
        }
    }

    /// Exact weighted quantile for `q` in `[0, 1]`.
    ///
    /// Returns the smallest value `v` such that the cumulative weight of
    /// observations `≤ v` is at least `q` of the total weight — the inverse
    /// of the weighted empirical CDF. `q = 0` gives the minimum, `q = 1` the
    /// maximum. Returns `None` when the sample is empty or `q` is out of
    /// range.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.pairs.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        self.ensure_sorted();
        let total = self.total_weight();
        if q == 0.0 {
            return Some(self.pairs[0].0);
        }
        let target = q * total;
        let mut cum = 0.0;
        for (v, w) in &self.pairs {
            cum += w;
            if cum >= target - 1e-12 {
                return Some(*v);
            }
        }
        Some(self.pairs.last().expect("non-empty").0)
    }

    /// Convenience: the weighted median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The raw (value, weight) pairs, unsorted order unspecified.
    pub fn pairs(&self) -> &[(f64, f64)] {
        &self.pairs
    }
}

impl FromIterator<f64> for WeightedSample {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = WeightedSample::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl FromIterator<(f64, f64)> for WeightedSample {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut s = WeightedSample::new();
        for (v, w) in iter {
            s.push_weighted(v, w);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_yields_none() {
        let mut s = WeightedSample::new();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn unweighted_median_of_odd_sample() {
        let mut s: WeightedSample = [3.0, 1.0, 2.0].into_iter().collect();
        assert_eq!(s.median(), Some(2.0));
    }

    #[test]
    fn quantile_extremes_are_min_and_max() {
        let mut s: WeightedSample = [5.0, 1.0, 9.0, 3.0].into_iter().collect();
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(9.0));
    }

    #[test]
    fn weights_shift_the_median() {
        // 1.0 carries 90% of the weight, so every quantile up to 0.9 is 1.0.
        let mut s: WeightedSample = [(1.0, 9.0), (100.0, 1.0)].into_iter().collect();
        assert_eq!(s.quantile(0.5), Some(1.0));
        assert_eq!(s.quantile(0.89), Some(1.0));
        assert_eq!(s.quantile(0.95), Some(100.0));
    }

    #[test]
    fn out_of_range_q_is_none() {
        let mut s: WeightedSample = [1.0].into_iter().collect();
        assert_eq!(s.quantile(-0.1), None);
        assert_eq!(s.quantile(1.1), None);
    }

    #[test]
    fn bad_observations_are_skipped() {
        let mut s = WeightedSample::new();
        s.push_weighted(f64::NAN, 1.0);
        s.push_weighted(1.0, 0.0);
        s.push_weighted(1.0, -3.0);
        s.push_weighted(f64::INFINITY, 1.0);
        s.push_weighted(2.0, f64::NAN);
        assert!(s.is_empty());
        s.push_weighted(7.0, 2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.median(), Some(7.0));
    }

    #[test]
    fn extend_from_merges() {
        let mut a: WeightedSample = [1.0, 2.0].into_iter().collect();
        let b: WeightedSample = [3.0].into_iter().collect();
        a.extend_from(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.max(), Some(3.0));
    }

    #[test]
    fn mean_min_max() {
        let s: WeightedSample = [(2.0, 1.0), (4.0, 3.0)].into_iter().collect();
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.total_weight(), 4.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Quantiles are monotone non-decreasing in q.
        #[test]
        fn quantiles_are_monotone(
            values in proptest::collection::vec((-1e6f64..1e6, 0.001f64..100.0), 1..50),
            qs in proptest::collection::vec(0.0f64..=1.0, 2..10),
        ) {
            let mut s: WeightedSample = values.into_iter().collect();
            let mut sorted_qs = qs.clone();
            sorted_qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = f64::NEG_INFINITY;
            for q in sorted_qs {
                let v = s.quantile(q).unwrap();
                prop_assert!(v >= prev, "quantile({q}) = {v} < {prev}");
                prev = v;
            }
        }

        /// Every quantile is within [min, max] of the sample.
        #[test]
        fn quantiles_within_range(
            values in proptest::collection::vec((-1e6f64..1e6, 0.001f64..100.0), 1..50),
            q in 0.0f64..=1.0,
        ) {
            let mut s: WeightedSample = values.into_iter().collect();
            let v = s.quantile(q).unwrap();
            prop_assert!(v >= s.min().unwrap() && v <= s.max().unwrap());
        }

        /// With unit weights the weighted quantile matches the classic
        /// "smallest v with rank ≥ ceil(q·n)" definition.
        #[test]
        fn unit_weights_match_rank_definition(
            values in proptest::collection::vec(-1e6f64..1e6, 1..40),
            q in 0.01f64..=1.0,
        ) {
            let mut s: WeightedSample = values.clone().into_iter().collect();
            let got = s.quantile(q).unwrap();
            let mut sorted = values;
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            prop_assert_eq!(got, sorted[rank - 1]);
        }
    }
}
