//! Benchmark the serving subsystem: the full decode → route → encode
//! path a shard executes per query, and the closed-loop exchange cost
//! through the in-process channel transport with and without the answer
//! cache, at one and four shards.
//!
//! Shard scaling caveat: this box may be single-core; extra shards then
//! time-slice instead of parallelizing, so the 4-shard number measures
//! scheduling overhead, not speedup. On an N-core machine the shards are
//! share-nothing and scale with cores.

use criterion::{criterion_group, criterion_main, Criterion};
use eum_authd::loadgen::LoadGenConfig;
use eum_authd::{
    channel_transports, AuthServer, ChannelClient, ClientTransport, ServerConfig, SnapshotHandle,
};
use eum_bench::{tiny_internet, BENCH_SEED};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, Message, QueryContext, Question};
use eum_mapping::{MappingConfig, MappingSystem};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::time::Duration;

fn world() -> (eum_netmodel::Internet, ContentCatalog, MappingSystem) {
    let mut net = tiny_internet();
    let sites = deployment_universe(BENCH_SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(BENCH_SEED));
    let mapping = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, catalog, mapping)
}

/// The wire-format ECS query every benchmark serves.
fn ecs_query(client: Ipv4Addr) -> Vec<u8> {
    encode_message(&Message::query(
        7,
        Question::a("e0.cdn.example".parse().unwrap()),
        Some(OptData::with_ecs(EcsOption::query(client, 24))),
    ))
}

/// The shard's per-query work without any transport: decode the wire
/// bytes, route through the snapshot's map, encode the response.
fn bench_decode_route_encode(c: &mut Criterion) {
    let (net, _catalog, mapping) = world();
    let client = net.blocks[0].client_ip();
    let resolver = net.resolvers[0].ip;
    let low = mapping.ns_ips()[1];
    let payload = ecs_query(client);
    let ctx = QueryContext {
        resolver_ip: resolver,
        now_ms: 0,
    };
    c.bench_function("authd_decode_route_encode", |b| {
        b.iter(|| {
            let query = decode_message(black_box(&payload)).expect("valid query");
            let resp = mapping.answer(low, &query, &ctx);
            black_box(encode_message(&resp))
        })
    });
}

/// One closed-loop exchange through the channel substrate: client send,
/// shard decode → cache/route → encode, client receive.
fn bench_channel_exchange(c: &mut Criterion) {
    let (net, _catalog, mapping) = world();
    let client_ip = net.blocks[0].client_ip();
    let resolver = net.resolvers[0].ip;
    let low = mapping.ns_ips()[1];
    let payload = ecs_query(client_ip);
    let snapshots = SnapshotHandle::new(mapping);

    for (label, shards, cached) in [
        ("authd_exchange_1shard_cached", 1, true),
        ("authd_exchange_1shard_uncached", 1, false),
        ("authd_exchange_4shard_cached", 4, true),
    ] {
        let (transports, connector) = channel_transports(shards);
        let cfg = if cached {
            ServerConfig::new(low)
        } else {
            ServerConfig::new(low).without_cache()
        };
        let server = AuthServer::spawn(transports, snapshots.clone(), cfg);
        let mut client = ChannelClient::new(connector);
        let mut shard = 0usize;
        c.bench_function(label, |b| {
            b.iter(|| {
                shard = (shard + 1) % shards;
                let resp = client
                    .exchange(
                        black_box(shard),
                        low,
                        resolver,
                        &payload,
                        Duration::from_secs(5),
                    )
                    .expect("exchange");
                black_box(resp)
            })
        });
        drop(client);
        server.stop_join();
    }
}

/// Aggregate throughput of the whole subsystem under the closed-loop load
/// generator, 1 vs 4 shards (see the module caveat about core counts).
fn bench_loadgen_throughput(c: &mut Criterion) {
    let (net, catalog, mapping) = world();
    let low = mapping.ns_ips()[1];
    let snapshots = SnapshotHandle::new(mapping);
    let mut group = c.benchmark_group("authd_loadgen");
    group.sample_size(10);
    for (label, shards) in [("run_1shard", 1usize), ("run_4shard", 4usize)] {
        let (transports, connector) = channel_transports(shards);
        let server = AuthServer::spawn(transports, snapshots.clone(), ServerConfig::new(low));
        let cfg = LoadGenConfig {
            clients: shards,
            queries_per_client: 1_000,
            no_ecs_fraction: 0.1,
            telemetry: None,
            timeout: Duration::from_secs(5),
            seed: BENCH_SEED,
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let report = eum_authd::loadgen::run(&net, &catalog, low, &cfg, |_| {
                    ChannelClient::new(connector.clone())
                });
                assert_eq!(report.transport_errors + report.bad_responses, 0);
                black_box(report.ok)
            })
        });
        server.stop_join();
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_route_encode,
    bench_channel_exchange,
    bench_loadgen_throughput
);
criterion_main!(benches);
