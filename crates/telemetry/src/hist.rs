//! Log-bucketed latency histograms with per-shard stripes.
//!
//! A [`Histogram`] covers the full `u64` range (the workspace records
//! integer nanoseconds) with HdrHistogram-style log-linear buckets: 16
//! exact one-wide buckets for values below 16, then 16 linear sub-buckets
//! per power of two. Every bucket's width is at most 1/16 of its lower
//! edge, so any quantile read from the histogram is within ~6.25%
//! relative error of the exact sample quantile — tight enough to compare
//! p50/p99 across serving configurations, at a fixed 976 × 8-byte
//! footprint per stripe regardless of sample count.
//!
//! Recording is one relaxed `fetch_add` into the recorder's stripe.
//! Stripes are separate heap allocations (and the stripe headers are
//! 128-byte aligned), so shards recording concurrently never contend on a
//! shared cache line. Readers take a [`HistogramSnapshot`] — a plain
//! `Vec` merge of the stripes — and do all quantile math on that;
//! snapshots from different histograms (e.g. one per load-generator
//! thread) merge losslessly: merging two snapshots is exactly equivalent
//! to having recorded both streams into one histogram.

// Atomics come through the mcheck facade (std in production builds; see
// the `raw-atomic` lint rule and `crate::msync`).
use crate::msync::{AtomicU64, AtomicUsize, Ordering};

/// Linear sub-bucket bits per power of two.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power of two.
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = SUB as usize + (64 - SUB_BITS as usize) * SUB as usize;

/// The bucket index holding `value`.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let e = 63 - value.leading_zeros(); // SUB_BITS..=63
    let sub = (value >> (e - SUB_BITS)) & (SUB - 1);
    ((e - SUB_BITS + 1) as usize) * SUB as usize + sub as usize
}

/// The `[lo, hi)` edges of bucket `index`, as exact floats.
pub fn bucket_bounds(index: usize) -> (f64, f64) {
    assert!(index < BUCKETS, "bucket index out of range");
    if index < SUB as usize {
        return (index as f64, index as f64 + 1.0);
    }
    let group = (index / SUB as usize) as i32; // 1..=64-SUB_BITS
    let sub = (index % SUB as usize) as f64;
    let width = 2f64.powi(group - 1);
    let lo = (SUB as f64 + sub) * width;
    (lo, lo + width)
}

#[repr(align(128))]
struct Stripe {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Stripe {
    fn new() -> Stripe {
        Stripe {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Round-robin stripe assignment for threads that call [`Histogram::record`]
/// without an explicit stripe.
static NEXT_THREAD_STRIPE: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_STRIPE: usize = NEXT_THREAD_STRIPE.fetch_add(1, Ordering::Relaxed);
}

/// A striped, lock-free, log-bucketed histogram over `u64` values.
pub struct Histogram {
    stripes: Box<[Stripe]>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("stripes", &self.stripes.len())
            .field("count", &s.count())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::striped(1)
    }
}

impl Histogram {
    /// A histogram with one stripe (single recorder, or low write rates).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// A histogram with `stripes` independent stripes. Use one stripe per
    /// concurrent recorder (serving shard, load-generator client) so the
    /// hot path never shares a cache line.
    pub fn striped(stripes: usize) -> Histogram {
        Histogram {
            stripes: (0..stripes.max(1)).map(|_| Stripe::new()).collect(),
        }
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Records `value` into the calling thread's stripe (threads are
    /// assigned stripes round-robin on first use).
    #[inline]
    pub fn record(&self, value: u64) {
        let stripe = THREAD_STRIPE.with(|s| *s);
        self.record_at(stripe, value);
    }

    /// Records `value` into stripe `stripe % stripe_count()` — the pinned
    /// form serving shards use so a shard always owns its stripe.
    #[inline]
    pub fn record_at(&self, stripe: usize, value: u64) {
        // lint: allow(serve-index) — modulo keeps the stripe in range
        let s = &self.stripes[stripe % self.stripes.len()];
        // lint: allow(serve-index) — bucket_index is total: it maps every u64 in range
        s.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(value, Ordering::Relaxed);
        s.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Merges every stripe into one point-in-time snapshot. Concurrent
    /// recording keeps going; a snapshot taken mid-record may be off by
    /// the in-flight sample, which monitoring tolerates by design.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for s in self.stripes.iter() {
            out.count += s.count.load(Ordering::Relaxed);
            out.sum = out.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
            out.max = out.max.max(s.max.load(Ordering::Relaxed));
            for (b, v) in out.buckets.iter_mut().zip(s.buckets.iter()) {
                *b += v.load(Ordering::Relaxed);
            }
        }
        out
    }
}

/// An immutable bucket-count snapshot supporting merge and quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self`. The result is exactly the histogram
    /// that recording both sample streams into one histogram would have
    /// produced (the property tests pin this down).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// The per-window difference `self − earlier`: a snapshot holding
    /// exactly the samples recorded between the two captures, assuming
    /// `earlier` was taken from the same (monotone) histogram. Bucket
    /// counts, count, and sum subtract exactly; `max` cannot be
    /// recovered from cumulative state, so the delta's `max` is the
    /// upper edge of its highest non-empty bucket (0 when the window
    /// recorded nothing) — within one bucket width of the true window
    /// max, same bound as the quantiles.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.wrapping_sub(earlier.sum);
        let mut max_edge = 0u64;
        for (i, (o, (a, b))) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(earlier.buckets.iter()))
            .enumerate()
        {
            *o = a.saturating_sub(*b);
            if *o > 0 {
                max_edge = bucket_bounds(i).1 as u64;
            }
        }
        out.max = max_edge;
        if out.count == 0 {
            out.sum = 0;
            out.max = 0;
        }
        out
    }

    /// The `q`-quantile (`q` in `[0, 1]`), estimated as the midpoint of
    /// the bucket holding the rank-`round(q·(n-1))` sample — within one
    /// bucket's width (≤ 6.25% relative error) of the exact sample
    /// quantile. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen > rank {
                let (lo, hi) = bucket_bounds(i);
                return (lo + hi) / 2.0;
            }
        }
        // Unreachable when count matches the buckets; be safe anyway.
        self.max as f64
    }

    /// Non-empty buckets as `(upper_edge, cumulative_count)` pairs — the
    /// shape the text exposition's `_bucket{le="…"}` series need.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            if *b > 0 {
                cum += *b;
                out.push((bucket_bounds(i).1, cum));
            }
        }
        out
    }

    /// The `[lo, hi)` edges of the bucket that holds `value` — callers
    /// use this to express "within one bucket" tolerances.
    pub fn bucket_of(value: u64) -> (f64, f64) {
        bucket_bounds(bucket_index(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_monotone_and_total() {
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            1000,
            65_535,
            65_536,
            1 << 40,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotone at {v}");
            assert!(i < BUCKETS);
            let (lo, hi) = bucket_bounds(i);
            // `v as f64` can round up to the exclusive edge above 2^53.
            assert!(
                (v as f64) >= lo && (v as f64) <= hi,
                "{v} outside its bucket [{lo}, {hi})"
            );
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert_eq!(lo, v as f64);
            assert_eq!(hi, v as f64 + 1.0);
        }
    }

    #[test]
    fn relative_width_is_bounded() {
        for i in SUB as usize..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!((hi - lo) / lo <= 1.0 / SUB as f64 + 1e-12, "bucket {i}");
        }
    }

    #[test]
    fn quantiles_of_known_stream() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max(), 1000);
        let p50 = s.quantile(0.5);
        assert!((p50 - 500.0).abs() / 500.0 <= 1.0 / 16.0, "p50 {p50}");
        let p99 = s.quantile(0.99);
        assert!((p99 - 990.0).abs() / 990.0 <= 1.0 / 16.0, "p99 {p99}");
        assert_eq!(s.quantile(0.0), 1.0 + 0.5);
    }

    #[test]
    fn stripes_merge_into_one_view() {
        let h = Histogram::striped(4);
        for stripe in 0..4 {
            for v in 0..100u64 {
                h.record_at(stripe, v);
            }
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 400);
        assert_eq!(s.sum(), 4 * (0..100u64).sum::<u64>());
        assert_eq!(s.max(), 99);
    }

    #[test]
    fn delta_since_isolates_the_window() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let t0 = h.snapshot();
        for v in 1000..=2000u64 {
            h.record(v);
        }
        let d = h.snapshot().delta_since(&t0);
        assert_eq!(d.count(), 1001);
        assert_eq!(d.sum(), (1000..=2000u64).sum::<u64>());
        // Quantiles come from the window's samples only.
        let p50 = d.quantile(0.5);
        assert!((p50 - 1500.0).abs() / 1500.0 <= 1.0 / 16.0, "p50 {p50}");
        // max is the window's, approximated to its bucket's upper edge.
        let (_, hi) = HistogramSnapshot::bucket_of(2000);
        assert_eq!(d.max(), hi as u64);
        // An empty window deltas to an all-zero snapshot.
        let z = h.snapshot().delta_since(&h.snapshot());
        assert_eq!(z.count(), 0);
        assert_eq!(z.sum(), 0);
        assert_eq!(z.max(), 0);
    }

    #[test]
    fn empty_snapshot_is_zeroes() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.cumulative_buckets().is_empty());
    }
}
