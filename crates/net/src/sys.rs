//! Safe wrappers over the vendored `libc` stub — the only module in the
//! workspace (outside tests) that contains `unsafe`.
//!
//! Three capabilities, each a thin veneer over one or two syscalls:
//!
//! * [`bind_reuseport`] — create a UDP socket, set `SO_REUSEPORT`
//!   *before* binding (std's `UdpSocket::bind` offers no hook between
//!   `socket()` and `bind()`), and hand it back as a normal
//!   `std::net::UdpSocket` so everything else uses safe std I/O.
//! * [`MmsgBatch`] — reusable `recvmmsg`/`sendmmsg` scatter-gather
//!   arrays. One kernel call moves a whole batch of datagrams, which is
//!   where the batched transport's throughput comes from: the per-call
//!   cost (syscall entry, softirq handoff) is amortized over the batch.
//! * [`pin_current_thread`] — `sched_setaffinity` on the calling thread
//!   so a shard's cache footprint stays on one core.
//!
//! Waits are bounded with `SO_RCVTIMEO` (via `set_read_timeout`) plus
//! `MSG_WAITFORONE`, *not* `recvmmsg`'s timeout argument: the kernel
//! only checks that argument between datagrams, so it cannot bound the
//! first blocking wait.

use std::io;
use std::mem;
use std::net::{Ipv4Addr, SocketAddrV4, UdpSocket};
use std::os::fd::{AsRawFd, FromRawFd};
use std::ptr;

/// Binds a loopback-style UDP socket with `SO_REUSEPORT` set, so several
/// shard sockets can share one port and the kernel 4-tuple-hashes
/// incoming datagrams across them (the ECMP-style scale-out §3 of the
/// paper's serving infrastructure implies).
pub fn bind_reuseport(addr: SocketAddrV4) -> io::Result<UdpSocket> {
    // SAFETY: plain syscall with no pointer arguments; the returned fd
    // is validated before use.
    let fd = unsafe { libc::socket(libc::AF_INET, libc::SOCK_DGRAM, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: `fd` was just returned by socket() and nothing else owns
    // it; wrapping immediately means every error path below closes it.
    let sock = unsafe { UdpSocket::from_raw_fd(fd) };
    let one: libc::c_int = 1;
    // SAFETY: `&one` points at a live c_int for the duration of the call
    // and the length passed is exactly its size.
    let rc = unsafe {
        libc::setsockopt(
            fd,
            libc::SOL_SOCKET,
            libc::SO_REUSEPORT,
            &one as *const libc::c_int as *const libc::c_void,
            mem::size_of::<libc::c_int>() as libc::socklen_t,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    let sin = sockaddr_of(addr);
    // SAFETY: `sin` is a fully initialized sockaddr_in that lives across
    // the call, and the length passed is exactly its size.
    let rc = unsafe {
        libc::bind(
            fd,
            &sin as *const libc::sockaddr_in as *const libc::sockaddr,
            mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(sock)
}

/// `SocketAddrV4` → network-byte-order `sockaddr_in`.
pub fn sockaddr_of(addr: SocketAddrV4) -> libc::sockaddr_in {
    libc::sockaddr_in {
        sin_family: libc::AF_INET as libc::sa_family_t,
        sin_port: addr.port().to_be(),
        sin_addr: libc::in_addr {
            s_addr: u32::from(*addr.ip()).to_be(),
        },
        sin_zero: [0; 8],
    }
}

/// Network-byte-order `sockaddr_in` → `SocketAddrV4`.
pub fn addr_of(sin: &libc::sockaddr_in) -> SocketAddrV4 {
    SocketAddrV4::new(
        Ipv4Addr::from(u32::from_be(sin.sin_addr.s_addr)),
        u16::from_be(sin.sin_port),
    )
}

/// Reusable scatter-gather arrays for `recvmmsg`/`sendmmsg`. Allocated
/// once per transport; every call rewrites the headers in place, so a
/// warm batch cycle allocates nothing.
pub struct MmsgBatch {
    addrs: Box<[libc::sockaddr_in]>,
    iovs: Box<[libc::iovec]>,
    hdrs: Box<[libc::mmsghdr]>,
}

// The raw pointers inside `iovs`/`hdrs` are dead between calls — `recv`
// and `send` rewrite every header before handing the arrays to the
// kernel, and while live they only point into the caller's buffers and
// this struct's own `addrs`, all of which outlive the call.
// SAFETY: per above, plus the batch is owned and driven by one shard
// thread, so no pointer is ever observed from another thread while live.
unsafe impl Send for MmsgBatch {}

impl MmsgBatch {
    /// Arrays sized for batches of up to `capacity` datagrams.
    pub fn new(capacity: usize) -> MmsgBatch {
        let empty_hdr = libc::msghdr {
            msg_name: ptr::null_mut(),
            msg_namelen: 0,
            msg_iov: ptr::null_mut(),
            msg_iovlen: 0,
            msg_control: ptr::null_mut(),
            msg_controllen: 0,
            msg_flags: 0,
        };
        MmsgBatch {
            addrs: vec![sockaddr_of(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0)); capacity]
                .into_boxed_slice(),
            iovs: vec![
                libc::iovec {
                    iov_base: ptr::null_mut(),
                    iov_len: 0,
                };
                capacity
            ]
            .into_boxed_slice(),
            hdrs: vec![
                libc::mmsghdr {
                    msg_hdr: empty_hdr,
                    msg_len: 0,
                };
                capacity
            ]
            .into_boxed_slice(),
        }
    }

    /// Receives a batch into `bufs`, a flat buffer of `slot`-byte slots.
    /// Blocks for the first datagram (bounded by the socket's
    /// `SO_RCVTIMEO`), then drains whatever the kernel already holds.
    /// Fills `lens[i]`/`peers[i]` for each received slot and returns the
    /// count; `Ok(0)` means the wait timed out.
    pub fn recv(
        &mut self,
        sock: &UdpSocket,
        bufs: &mut [u8],
        slot: usize,
        lens: &mut [usize],
        peers: &mut [SocketAddrV4],
    ) -> io::Result<usize> {
        let n = self
            .hdrs
            .len()
            .min(lens.len())
            .min(peers.len())
            .min(bufs.len() / slot);
        if n == 0 {
            return Ok(0);
        }
        for i in 0..n {
            self.iovs[i] = libc::iovec {
                iov_base: bufs[i * slot..].as_mut_ptr() as *mut libc::c_void,
                iov_len: slot,
            };
            self.hdrs[i].msg_hdr = libc::msghdr {
                msg_name: &mut self.addrs[i] as *mut libc::sockaddr_in as *mut libc::c_void,
                msg_namelen: mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
                msg_iov: &mut self.iovs[i],
                msg_iovlen: 1,
                msg_control: ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            };
            self.hdrs[i].msg_len = 0;
        }
        // `hdrs[..n]` was fully initialized above: every iov_base points
        // at `slot` writable bytes inside `bufs`, every msg_name at a
        // sockaddr_in in `addrs`, and all three arrays outlive the call.
        // SAFETY: pointers valid and writable per above; MSG_WAITFORONE
        // makes the kernel return after the first blocking receive.
        let got = unsafe {
            libc::recvmmsg(
                sock.as_raw_fd(),
                self.hdrs.as_mut_ptr(),
                n as libc::c_uint,
                libc::MSG_WAITFORONE,
                ptr::null_mut(),
            )
        };
        if got < 0 {
            let e = io::Error::last_os_error();
            return match e.kind() {
                io::ErrorKind::WouldBlock
                | io::ErrorKind::TimedOut
                | io::ErrorKind::Interrupted => Ok(0),
                _ => Err(e),
            };
        }
        let got = got as usize;
        for i in 0..got {
            lens[i] = (self.hdrs[i].msg_len as usize).min(slot);
            peers[i] = addr_of(&self.addrs[i]);
        }
        Ok(got)
    }

    /// Sends every staged slot (`lens[i] > 0`) of `bufs` to `peers[i]`
    /// in as few `sendmmsg` calls as the kernel allows. Returns
    /// `(sent, partial_calls)`: how many datagrams went out and how many
    /// `sendmmsg` calls accepted fewer datagrams than remained staged
    /// (each partial call costs an extra syscall — the batched loop
    /// exports the count as `eum_net_sendmmsg_partial_total`).
    pub fn send(
        &mut self,
        sock: &UdpSocket,
        bufs: &[u8],
        slot: usize,
        lens: &[usize],
        peers: &[SocketAddrV4],
    ) -> io::Result<(usize, usize)> {
        let bound = self
            .hdrs
            .len()
            .min(lens.len())
            .min(peers.len())
            .min(bufs.len() / slot);
        let mut staged = 0usize;
        for i in 0..bound {
            let len = lens[i].min(slot);
            if len == 0 {
                continue;
            }
            self.addrs[staged] = sockaddr_of(peers[i]);
            self.iovs[staged] = libc::iovec {
                // sendmmsg never writes through iov_base; the mut cast
                // only satisfies the shared iovec declaration.
                iov_base: bufs[i * slot..].as_ptr() as *mut libc::c_void,
                iov_len: len,
            };
            self.hdrs[staged].msg_hdr = libc::msghdr {
                msg_name: &mut self.addrs[staged] as *mut libc::sockaddr_in as *mut libc::c_void,
                msg_namelen: mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
                msg_iov: &mut self.iovs[staged],
                msg_iovlen: 1,
                msg_control: ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            };
            self.hdrs[staged].msg_len = 0;
            staged += 1;
        }
        if staged == 0 {
            return Ok((0, 0));
        }
        let mut sent = 0usize;
        let mut partial_calls = 0usize;
        while sent < staged {
            // SAFETY: `hdrs[sent..staged]` was fully initialized above;
            // iov_base points into `bufs` (read-only), msg_name into
            // `addrs`, and all arrays outlive the call.
            let rc = unsafe {
                libc::sendmmsg(
                    sock.as_raw_fd(),
                    self.hdrs[sent..].as_mut_ptr(),
                    (staged - sent) as libc::c_uint,
                    0,
                )
            };
            if rc < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            if rc == 0 {
                break;
            }
            if (rc as usize) < staged - sent {
                partial_calls += 1;
            }
            sent += rc as usize;
        }
        Ok((sent, partial_calls))
    }
}

/// Pins the calling thread to `cpu`. Best-effort callers ignore the
/// error (restricted affinity masks are common in containers).
pub fn pin_current_thread(cpu: usize) -> io::Result<()> {
    let mut set = libc::cpu_set_t::zeroed();
    let word = cpu / 64;
    let Some(bits) = set.bits.get_mut(word) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cpu beyond the 1024-bit cpu_set_t",
        ));
    };
    *bits |= 1u64 << (cpu % 64);
    // SAFETY: `set` is a fully initialized cpu_set_t, the size passed is
    // exactly its size, and pid 0 addresses the calling thread.
    let rc = unsafe { libc::sched_setaffinity(0, mem::size_of::<libc::cpu_set_t>(), &set) };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}
