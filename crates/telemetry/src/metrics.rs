//! Scalar metrics: counters and gauges.
//!
//! Both are single atomics updated with relaxed ordering — the serving
//! shards increment them millions of times per second, and a reporter
//! thread reads racy-but-monotone values whenever it likes. Monitoring
//! never needs a consistent cut across metrics, so no stronger ordering
//! (and no lock) is ever taken.

// Atomics come through the mcheck facade (std in production builds; see
// the `raw-atomic` lint rule and `crate::msync`).
use crate::msync::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic word), for
/// values that go up and down or are not integers: live cache entries,
/// the published snapshot generation, an amplification factor.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Formats a metric value the way the text exposition prints it:
/// integers without a decimal point, everything else via `f64`'s
/// shortest-roundtrip display.
pub(crate) fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_holds_floats() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.5);
        assert_eq!(g.get(), 3.5);
        g.set(7.0);
        assert_eq!(format_value(g.get()), "7");
        assert_eq!(format_value(2.25), "2.25");
    }
}
