//! The ECS-aware resolver cache (RFC 7871 §7.3).
//!
//! This cache is the mechanism behind the paper's central scaling result:
//! "an LDNS that serves multiple client IP blocks may store multiple
//! entries for the same domain name. Therefore, an LDNS may make multiple
//! requests to an authoritative name server for the domain name, one for
//! each client IP block" (§5.2) — the 8× query increase of Figure 23.
//!
//! Entries are keyed by `(qname, qtype)` and hold one answer per *scope
//! block*. A response whose OPT carried `scope_prefix = 0` (or no ECS at
//! all) is a *global* entry, valid for every client; otherwise the entry is
//! valid only for clients inside the scope block. Lookup picks the
//! longest-scope entry containing the client (RFC 7871 §7.3.1).

use crate::message::{Rcode, Record};
use crate::name::DnsName;
use crate::RrType;
use eum_geo::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One cached answer for a scope block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedAnswer {
    /// The answer-section records as returned by the authority.
    pub records: Vec<Record>,
    /// Response code (NXDOMAIN entries are cached negatively).
    pub rcode: Rcode,
    /// The scope this answer is valid for. [`Prefix::ALL`] (`/0`) is a
    /// global entry.
    pub scope: Prefix,
    /// Absolute expiry on the simulation clock, milliseconds.
    pub expires_ms: u64,
}

impl CachedAnswer {
    /// True when the entry has expired at `now_ms`.
    pub fn expired(&self, now_ms: u64) -> bool {
        now_ms >= self.expires_ms
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that missed (absent or expired).
    pub misses: u64,
    /// Entries replaced on insert (same scope re-answered).
    pub replacements: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

/// An ECS-aware DNS answer cache.
#[derive(Debug, Clone, Default)]
pub struct EcsCache {
    map: HashMap<(DnsName, RrType), Vec<CachedAnswer>>,
    stats: CacheStats,
    /// Maximum total entries (None = unbounded). Real resolvers bound
    /// cache memory, and per-scope ECS entries are exactly the §5.2 cost
    /// that pressures that bound.
    max_entries: Option<usize>,
    live_entries: usize,
}

impl EcsCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache bounded to `max_entries` total entries. When full,
    /// inserting evicts the soonest-to-expire entries first (a common
    /// resolver policy — expiring entries are the cheapest to lose).
    pub fn bounded(max_entries: usize) -> Self {
        EcsCache {
            max_entries: Some(max_entries.max(1)),
            ..Self::default()
        }
    }

    /// Evicts entries, soonest-expiring first, until one slot is free.
    fn make_room(&mut self) {
        let cap = match self.max_entries {
            Some(c) => c,
            None => return,
        };
        while self.live_entries >= cap {
            // Find the globally soonest-expiring entry.
            let victim = self
                .map
                .iter()
                .filter_map(|(k, v)| {
                    v.iter()
                        .map(|e| e.expires_ms)
                        .min()
                        .map(|exp| (k.clone(), exp))
                })
                .min_by_key(|(_, exp)| *exp);
            let Some((key, exp)) = victim else { return };
            let entries = self.map.get_mut(&key).expect("victim key exists");
            if let Some(pos) = entries.iter().position(|e| e.expires_ms == exp) {
                entries.remove(pos);
                self.live_entries -= 1;
                self.stats.evictions += 1;
            }
            if entries.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// Looks up an answer valid for `client` at `now_ms`.
    ///
    /// `client = None` models a query with no client information; it can
    /// only be served by a global (`/0`) entry, per RFC 7871 §7.3.1's rule
    /// that a non-ECS query is answered from the `/0` cache.
    pub fn lookup(
        &mut self,
        qname: &DnsName,
        qtype: RrType,
        client: Option<Ipv4Addr>,
        now_ms: u64,
    ) -> Option<CachedAnswer> {
        let entries = match self.map.get_mut(&(qname.clone(), qtype)) {
            Some(e) => e,
            None => {
                self.stats.misses += 1;
                return None;
            }
        };
        // Lazily drop expired entries for this key.
        let before = entries.len();
        entries.retain(|e| !e.expired(now_ms));
        self.live_entries -= before - entries.len();
        let best = entries
            .iter()
            .filter(|e| match client {
                Some(ip) => e.scope.contains(ip),
                None => e.scope.is_empty(),
            })
            .max_by_key(|e| e.scope.len())
            .cloned();
        match best {
            Some(ans) => {
                self.stats.hits += 1;
                Some(ans)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts an answer. An existing entry with the identical scope is
    /// replaced (a fresh authoritative answer supersedes the old one).
    pub fn insert(&mut self, qname: DnsName, qtype: RrType, answer: CachedAnswer) {
        // Replacement never grows the cache; only fresh scopes need room.
        let replaces = self
            .map
            .get(&(qname.clone(), qtype))
            .is_some_and(|entries| entries.iter().any(|e| e.scope == answer.scope));
        if !replaces {
            self.make_room();
        }
        let entries = self.map.entry((qname, qtype)).or_default();
        if let Some(slot) = entries.iter_mut().find(|e| e.scope == answer.scope) {
            *slot = answer;
            self.stats.replacements += 1;
        } else {
            entries.push(answer);
            self.live_entries += 1;
        }
    }

    /// Number of live (possibly expired but unpurged) entries.
    pub fn entry_count(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Number of distinct (name, type) keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Drops every expired entry (and empty keys).
    pub fn purge_expired(&mut self, now_ms: u64) {
        self.map.retain(|_, entries| {
            entries.retain(|e| !e.expired(now_ms));
            !entries.is_empty()
        });
        self.live_entries = self.map.values().map(Vec::len).sum();
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.live_entries = 0;
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries stored under one (name, type) key — the per-domain fan-out
    /// that Figure 24 buckets by popularity.
    pub fn entries_for(&self, qname: &DnsName, qtype: RrType) -> usize {
        self.map.get(&(qname.clone(), qtype)).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Record;
    use crate::name::name;

    fn answer(scope: &str, ip: [u8; 4], expires: u64) -> CachedAnswer {
        CachedAnswer {
            records: vec![Record::a(name("d.example"), 20, Ipv4Addr::from(ip))],
            rcode: Rcode::NoError,
            scope: scope.parse().unwrap(),
            expires_ms: expires,
        }
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn global_entry_serves_everyone() {
        let mut c = EcsCache::new();
        c.insert(
            name("d.example"),
            RrType::A,
            answer("0.0.0.0/0", [1, 1, 1, 1], 100),
        );
        assert!(c
            .lookup(&name("d.example"), RrType::A, Some(ip("9.9.9.9")), 50)
            .is_some());
        assert!(c.lookup(&name("d.example"), RrType::A, None, 50).is_some());
    }

    #[test]
    fn scoped_entry_requires_matching_client() {
        let mut c = EcsCache::new();
        c.insert(
            name("d.example"),
            RrType::A,
            answer("10.1.2.0/24", [1, 1, 1, 1], 100),
        );
        assert!(c
            .lookup(&name("d.example"), RrType::A, Some(ip("10.1.2.9")), 50)
            .is_some());
        assert!(c
            .lookup(&name("d.example"), RrType::A, Some(ip("10.1.3.9")), 50)
            .is_none());
        // A non-ECS query cannot use a scoped entry.
        assert!(c.lookup(&name("d.example"), RrType::A, None, 50).is_none());
    }

    #[test]
    fn longest_scope_wins() {
        let mut c = EcsCache::new();
        c.insert(
            name("d.example"),
            RrType::A,
            answer("10.0.0.0/8", [8, 8, 8, 8], 100),
        );
        c.insert(
            name("d.example"),
            RrType::A,
            answer("10.1.0.0/16", [16, 16, 16, 16], 100),
        );
        c.insert(
            name("d.example"),
            RrType::A,
            answer("0.0.0.0/0", [0, 0, 0, 0], 100),
        );
        let got = c
            .lookup(&name("d.example"), RrType::A, Some(ip("10.1.2.3")), 50)
            .unwrap();
        assert_eq!(got.scope, "10.1.0.0/16".parse().unwrap());
        let got = c
            .lookup(&name("d.example"), RrType::A, Some(ip("10.9.0.1")), 50)
            .unwrap();
        assert_eq!(got.scope, "10.0.0.0/8".parse().unwrap());
        let got = c
            .lookup(&name("d.example"), RrType::A, Some(ip("99.0.0.1")), 50)
            .unwrap();
        assert_eq!(got.scope, Prefix::ALL);
    }

    #[test]
    fn expiry_is_enforced_and_lazily_purged() {
        let mut c = EcsCache::new();
        c.insert(
            name("d.example"),
            RrType::A,
            answer("0.0.0.0/0", [1, 1, 1, 1], 100),
        );
        assert!(c.lookup(&name("d.example"), RrType::A, None, 99).is_some());
        assert!(c.lookup(&name("d.example"), RrType::A, None, 100).is_none());
        // The expired entry was dropped during lookup.
        assert_eq!(c.entry_count(), 0);
    }

    #[test]
    fn same_scope_insert_replaces() {
        let mut c = EcsCache::new();
        c.insert(
            name("d.example"),
            RrType::A,
            answer("10.1.2.0/24", [1, 1, 1, 1], 100),
        );
        c.insert(
            name("d.example"),
            RrType::A,
            answer("10.1.2.0/24", [2, 2, 2, 2], 200),
        );
        assert_eq!(c.entry_count(), 1);
        let got = c
            .lookup(&name("d.example"), RrType::A, Some(ip("10.1.2.1")), 150)
            .unwrap();
        assert_eq!(got.expires_ms, 200);
        assert_eq!(c.stats().replacements, 1);
    }

    #[test]
    fn per_block_entries_accumulate() {
        // The §5.2 amplification: distinct /24 scopes pile up per name.
        let mut c = EcsCache::new();
        for i in 0..50u32 {
            let scope = Prefix::new(0x0A_00_00_00 | (i << 8), 24);
            c.insert(
                name("popular.example"),
                RrType::A,
                CachedAnswer {
                    records: vec![],
                    rcode: Rcode::NoError,
                    scope,
                    expires_ms: 1000,
                },
            );
        }
        assert_eq!(c.entries_for(&name("popular.example"), RrType::A), 50);
        assert_eq!(c.key_count(), 1);
    }

    #[test]
    fn purge_expired_drops_keys() {
        let mut c = EcsCache::new();
        c.insert(
            name("a.example"),
            RrType::A,
            answer("0.0.0.0/0", [1, 1, 1, 1], 10),
        );
        c.insert(
            name("b.example"),
            RrType::A,
            answer("0.0.0.0/0", [1, 1, 1, 1], 100),
        );
        c.purge_expired(50);
        assert_eq!(c.key_count(), 1);
        assert_eq!(c.entries_for(&name("b.example"), RrType::A), 1);
    }

    #[test]
    fn types_are_cached_independently() {
        let mut c = EcsCache::new();
        c.insert(
            name("d.example"),
            RrType::A,
            answer("0.0.0.0/0", [1, 1, 1, 1], 100),
        );
        assert!(c
            .lookup(&name("d.example"), RrType::Aaaa, None, 50)
            .is_none());
    }

    #[test]
    fn bounded_cache_evicts_soonest_expiring() {
        let mut c = EcsCache::bounded(3);
        c.insert(
            name("a.example"),
            RrType::A,
            answer("10.0.1.0/24", [1, 1, 1, 1], 100),
        );
        c.insert(
            name("a.example"),
            RrType::A,
            answer("10.0.2.0/24", [1, 1, 1, 1], 500),
        );
        c.insert(
            name("b.example"),
            RrType::A,
            answer("0.0.0.0/0", [2, 2, 2, 2], 300),
        );
        assert_eq!(c.entry_count(), 3);
        // Fourth insert evicts the entry expiring at 100.
        c.insert(
            name("c.example"),
            RrType::A,
            answer("0.0.0.0/0", [3, 3, 3, 3], 400),
        );
        assert_eq!(c.entry_count(), 3);
        assert_eq!(c.stats().evictions, 1);
        assert!(c
            .lookup(&name("a.example"), RrType::A, Some(ip("10.0.1.9")), 50)
            .is_none());
        assert!(c
            .lookup(&name("a.example"), RrType::A, Some(ip("10.0.2.9")), 50)
            .is_some());
        assert!(c.lookup(&name("c.example"), RrType::A, None, 50).is_some());
    }

    #[test]
    fn bounded_cache_replacement_does_not_evict() {
        let mut c = EcsCache::bounded(2);
        c.insert(
            name("a.example"),
            RrType::A,
            answer("0.0.0.0/0", [1, 1, 1, 1], 100),
        );
        c.insert(
            name("b.example"),
            RrType::A,
            answer("0.0.0.0/0", [2, 2, 2, 2], 200),
        );
        // Same-scope re-insert replaces in place: no eviction.
        c.insert(
            name("a.example"),
            RrType::A,
            answer("0.0.0.0/0", [9, 9, 9, 9], 300),
        );
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.entry_count(), 2);
        assert!(c.lookup(&name("b.example"), RrType::A, None, 50).is_some());
    }

    #[test]
    fn bounded_cache_count_survives_expiry_paths() {
        let mut c = EcsCache::bounded(2);
        c.insert(
            name("a.example"),
            RrType::A,
            answer("0.0.0.0/0", [1, 1, 1, 1], 10),
        );
        // Expired entry dropped during lookup must free its slot.
        assert!(c.lookup(&name("a.example"), RrType::A, None, 50).is_none());
        c.insert(
            name("b.example"),
            RrType::A,
            answer("0.0.0.0/0", [2, 2, 2, 2], 100),
        );
        c.insert(
            name("c.example"),
            RrType::A,
            answer("0.0.0.0/0", [3, 3, 3, 3], 100),
        );
        assert_eq!(c.stats().evictions, 0, "freed slot should be reused");
        c.purge_expired(60);
        assert_eq!(c.entry_count(), 2);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = EcsCache::new();
        assert!(c.lookup(&name("d.example"), RrType::A, None, 0).is_none());
        c.insert(
            name("d.example"),
            RrType::A,
            answer("0.0.0.0/0", [1, 1, 1, 1], 100),
        );
        assert!(c.lookup(&name("d.example"), RrType::A, None, 0).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::name::name;
    use proptest::prelude::*;

    proptest! {
        /// Cache lookup agrees with a brute-force scan over live entries.
        #[test]
        fn lookup_matches_brute_force(
            scopes in proptest::collection::vec((any::<u32>(), 0u8..=32, 1u64..100), 1..20),
            probe in any::<u32>(),
            now in 0u64..100,
        ) {
            let mut c = EcsCache::new();
            let mut entries: Vec<CachedAnswer> = Vec::new();
            for (addr, len, exp) in scopes {
                let a = CachedAnswer {
                    records: vec![],
                    rcode: Rcode::NoError,
                    scope: Prefix::new(addr, len),
                    expires_ms: exp,
                };
                // Mirror replace-on-same-scope semantics.
                if let Some(slot) = entries.iter_mut().find(|e| e.scope == a.scope) {
                    *slot = a.clone();
                } else {
                    entries.push(a.clone());
                }
                c.insert(name("x.example"), RrType::A, a);
            }
            let client = Ipv4Addr::from(probe);
            let expect = entries
                .iter()
                .filter(|e| !e.expired(now) && e.scope.contains(client))
                .max_by_key(|e| e.scope.len())
                .map(|e| e.scope);
            let got = c.lookup(&name("x.example"), RrType::A, Some(client), now).map(|a| a.scope);
            prop_assert_eq!(got, expect);
        }
    }
}
