//! Soundness pins for the model checker itself, in both directions:
//! known-racy toys the explorer MUST flag (with a rendered schedule),
//! and correct protocols it must pass exhaustively.

use eum_mcheck as mcheck;
use mcheck::modeled::{AtomicU64, Mutex};
use mcheck::Config;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn cfg() -> Config {
    if mcheck::exhaustive() {
        Config::bounded(3, 2_000_000)
    } else {
        Config::default()
    }
}

#[test]
fn racy_unsynchronized_counter_is_flagged() {
    // Two threads do a load/add/store increment with no RMW: the classic
    // lost update. The checker must find an interleaving where the final
    // count is 1.
    let fail = mcheck::expect_failure("racy-counter", &cfg(), || {
        let n = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                mcheck::spawn(move || {
                    let v = n.load(Ordering::Relaxed);
                    n.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for t in threads {
            t.join();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
    });
    assert!(
        fail.message.contains("lost update"),
        "wrong failure: {}",
        fail.message
    );
    assert!(!fail.schedule.is_empty(), "failure must carry a schedule");
}

#[test]
fn dekker_store_buffering_without_fences_is_flagged() {
    // t1: x=1; r1=y  |  t2: y=1; r2=x — all Relaxed. On a weakly-ordered
    // machine both loads may see 0 (store buffering); the memory model
    // must expose that outcome even though no interleaving of
    // sequentially-consistent steps produces it.
    let fail = mcheck::expect_failure("dekker-relaxed", &cfg(), || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x1, y1) = (x.clone(), y.clone());
        let t1 = mcheck::spawn(move || {
            x1.store(1, Ordering::Relaxed);
            y1.load(Ordering::Relaxed)
        });
        let (x2, y2) = (x.clone(), y.clone());
        let t2 = mcheck::spawn(move || {
            y2.store(1, Ordering::Relaxed);
            x2.load(Ordering::Relaxed)
        });
        let r1 = t1.join();
        let r2 = t2.join();
        assert!(
            r1 == 1 || r2 == 1,
            "store buffering: both critical flags read 0"
        );
    });
    assert!(
        fail.message.contains("store buffering"),
        "wrong failure: {}",
        fail.message
    );
    // The schedule must point at the stale read that broke mutual exclusion.
    assert!(
        fail.schedule.contains("STALE"),
        "schedule should mark the stale read:\n{}",
        fail.schedule
    );
}

#[test]
fn dekker_with_seqcst_passes_exhaustively() {
    let report = mcheck::verify("dekker-seqcst", &cfg(), || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x1, y1) = (x.clone(), y.clone());
        let t1 = mcheck::spawn(move || {
            x1.store(1, Ordering::SeqCst);
            y1.load(Ordering::SeqCst)
        });
        let (x2, y2) = (x.clone(), y.clone());
        let t2 = mcheck::spawn(move || {
            y2.store(1, Ordering::SeqCst);
            x2.load(Ordering::SeqCst)
        });
        let r1 = t1.join();
        let r2 = t2.join();
        assert!(r1 == 1 || r2 == 1, "SeqCst forbids the both-zero outcome");
    });
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
}

#[test]
fn release_acquire_handoff_passes_exhaustively() {
    let report = mcheck::verify("release-acquire-handoff", &cfg(), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, fl) = (data.clone(), flag.clone());
        let producer = mcheck::spawn(move || {
            d.store(42, Ordering::Relaxed);
            fl.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "acquire must see released data"
            );
        }
        producer.join();
    });
    assert!(
        report.complete,
        "exploration must be exhaustive: {report:?}"
    );
}

#[test]
fn relaxed_handoff_without_release_is_flagged() {
    // Same shape but the flag store is Relaxed: nothing transfers the
    // data write, so the consumer may see flag=1 with data=0.
    let fail = mcheck::expect_failure("relaxed-handoff", &cfg(), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, fl) = (data.clone(), flag.clone());
        let producer = mcheck::spawn(move || {
            d.store(42, Ordering::Relaxed);
            fl.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "stale data after relaxed flag"
            );
        }
        producer.join();
    });
    assert!(
        fail.message.contains("stale data"),
        "wrong failure: {}",
        fail.message
    );
}

#[test]
fn fence_pair_handoff_passes_and_fenceless_variant_fails() {
    // Relaxed accesses upgraded by a Release/Acquire fence pair: correct.
    let report = mcheck::verify("fence-handoff", &cfg(), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, fl) = (data.clone(), flag.clone());
        let producer = mcheck::spawn(move || {
            d.store(42, Ordering::Relaxed);
            mcheck::modeled::fence(Ordering::Release);
            fl.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            mcheck::modeled::fence(Ordering::Acquire);
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        producer.join();
    });
    assert!(report.complete);

    // Drop the producer's Release fence and the handoff must break.
    let fail = mcheck::expect_failure("fence-handoff-broken", &cfg(), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, fl) = (data.clone(), flag.clone());
        let producer = mcheck::spawn(move || {
            d.store(42, Ordering::Relaxed);
            fl.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            mcheck::modeled::fence(Ordering::Acquire);
            assert_eq!(data.load(Ordering::Relaxed), 42, "missing Release fence");
        }
        producer.join();
    });
    assert!(fail.message.contains("missing Release fence"));
}

#[test]
fn mutex_counter_passes_and_lock_cycle_deadlocks() {
    let report = mcheck::verify("mutex-counter", &cfg(), || {
        let n = Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                mcheck::spawn(move || {
                    *n.lock().expect("model mutex") += 1;
                })
            })
            .collect();
        for t in threads {
            t.join();
        }
        assert_eq!(*n.lock().expect("model mutex"), 2);
    });
    assert!(report.complete);

    // Opposite lock order in two threads: the checker must report the
    // deadlock instead of hanging.
    let fail = mcheck::expect_failure("lock-cycle", &Config::bounded(2, 10_000), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a1, b1) = (a.clone(), b.clone());
        let t1 = mcheck::spawn(move || {
            let _ga = a1.lock().expect("model mutex");
            let _gb = b1.lock().expect("model mutex");
        });
        let (a2, b2) = (a.clone(), b.clone());
        let t2 = mcheck::spawn(move || {
            let _gb = b2.lock().expect("model mutex");
            let _ga = a2.lock().expect("model mutex");
        });
        t1.join();
        t2.join();
    });
    assert!(
        fail.message.contains("deadlock"),
        "wrong failure: {}",
        fail.message
    );
}

#[test]
fn rmw_increments_are_atomic() {
    let report = mcheck::verify("rmw-counter", &cfg(), || {
        let n = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                mcheck::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for t in threads {
            t.join();
        }
        assert_eq!(
            n.load(Ordering::Relaxed),
            4,
            "fetch_add must never lose updates"
        );
    });
    assert!(report.complete);
}

#[test]
fn modeled_atomics_fall_back_to_real_outside_a_run() {
    let a = AtomicU64::new(7);
    assert_eq!(a.load(Ordering::SeqCst), 7);
    a.store(9, Ordering::SeqCst);
    assert_eq!(a.fetch_add(1, Ordering::SeqCst), 9);
    assert_eq!(a.load(Ordering::SeqCst), 10);
    assert_eq!(
        a.compare_exchange(10, 11, Ordering::SeqCst, Ordering::SeqCst),
        Ok(10)
    );
    let m = Mutex::new(1u32);
    *m.lock().expect("plain mutex") += 1;
    assert_eq!(*m.lock().expect("plain mutex"), 2);
}

#[cfg(not(eum_mcheck))]
#[test]
fn production_facade_is_the_real_std_types() {
    use std::any::TypeId;
    // Zero-cost proof: in production builds the facade types ARE the std
    // types (pure re-export), not wrappers.
    assert_eq!(
        TypeId::of::<eum_mcheck::sync::atomic::AtomicU64>(),
        TypeId::of::<std::sync::atomic::AtomicU64>()
    );
    assert_eq!(
        TypeId::of::<eum_mcheck::sync::Mutex<u64>>(),
        TypeId::of::<std::sync::Mutex<u64>>()
    );
}
