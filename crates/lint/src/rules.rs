//! The invariant rules and the engine that applies them to scanned files.
//!
//! Three rule families, all driven by `lint.toml`:
//!
//! * **Serve-path purity** (`serve-alloc`, `serve-lock`, `serve-panic`,
//!   `serve-index`): inside configured hot fns, allocating calls, lock
//!   acquisition, panicking APIs, and `[]` indexing are denied unless the
//!   line (or enclosing fn) carries a
//!   `// lint: allow(<rule>) — <reason>` justification tag.
//! * **Atomic-ordering audit** (`relaxed-ordering`, `seqlock-pairing`):
//!   every `Ordering::Relaxed` outside the whitelisted counter files
//!   needs a `// relaxed-ok: <why>` comment, and in declared seqlock
//!   files a field loaded with `Acquire` must never be stored with
//!   `Relaxed`.
//! * **Unsafe audit** (`safety-comment`, `unsafe-budget`): each `unsafe`
//!   needs a `// SAFETY:` comment within the three preceding lines, and
//!   per-crate `unsafe` occurrence counts must equal the pinned budget.

use crate::config::{fn_pattern_matches, Config};
use crate::scan::FileScan;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Every rule the linter knows, with its `--explain` text.
pub const RULES: &[(&str, &str)] = &[
    (
        "serve-alloc",
        "Allocating calls (Vec::new, vec!, format!, to_string, to_vec, to_owned, \
         Box::new, String::from, collect, ...) are denied inside the hot fns listed \
         in lint.toml [[hot]]. The serve path's zero-allocation budget (see \
         DESIGN.md and crates/authd/tests/zero_alloc.rs) is load-bearing: one \
         format! on the cached-hit path silently regresses the 407 ns hit. \
         Justify intentional allocation with `// lint: allow(serve-alloc) — <reason>`.",
    ),
    (
        "serve-lock",
        "Lock acquisition (.lock(), .read(), .write()) and lock construction \
         (Mutex::new, RwLock::new) are denied inside hot fns. Shards own their \
         state outright and the snapshot cell is the only sanctioned lock — held \
         for an Arc clone, never across a query. Justify with \
         `// lint: allow(serve-lock) — <reason>`.",
    ),
    (
        "serve-panic",
        "Panicking APIs (unwrap, expect, panic!, todo!, unreachable!, \
         unimplemented!) are denied inside hot fns: an authoritative shard must \
         answer or drop, never abort. Where the invariant is locally provable, \
         justify with `// lint: allow(serve-panic) — <reason>`.",
    ),
    (
        "serve-index",
        "`[]` indexing (the statically detectable `expr[...]` form) can panic on \
         out-of-range input, so hot fns must justify each use with \
         `// lint: allow(serve-index) — <why the bound holds>`. Prefer get()/ \
         split_first()/iterators where the shape allows.",
    ),
    (
        "relaxed-ordering",
        "Every `Ordering::Relaxed` outside the whitelisted counter files \
         (lint.toml [atomics] counter_paths) must carry a `// relaxed-ok: <why>` \
         comment naming why no ordering is needed (e.g. monotonic counter read \
         by a reporter, uniqueness-only fetch_add). Relaxed is correct \
         surprisingly rarely; the comment is the review.",
    ),
    (
        "seqlock-pairing",
        "In declared seqlock/publication files (lint.toml [atomics] \
         seqlock_files), a field that is loaded with Acquire anywhere must never \
         be stored with Relaxed: the Release store is what makes the Acquire \
         load meaningful. Flagged stores either need a stronger ordering or a \
         `// lint: allow(seqlock-pairing) — <reason>` tag citing a fence.",
    ),
    (
        "safety-comment",
        "Every `unsafe` (block, fn, impl) needs a `// SAFETY:` comment on the \
         same line or within the three lines above it stating the invariant that \
         makes it sound. Applies everywhere, tests included.",
    ),
    (
        "unsafe-budget",
        "Per-crate `unsafe` occurrence counts are pinned in lint.toml \
         [unsafe_budget]. A count above the pin fails the build (new unsafe must \
         be an explicit diff to the budget); a count below it is a stale pin. \
         Regenerate the pins with `eum-lint --fix-budget`.",
    ),
    (
        "raw-atomic",
        "Audited concurrency files (lint.toml [atomics] facade_files) must \
         import atomics through the eum-mcheck facade (`crate::msync`, a \
         verbatim std re-export in production builds) instead of naming \
         `std::sync::atomic` / `core::sync::atomic` directly. The facade is \
         what lets the model-checked tests compile the same source text \
         against modeled atomics; a raw import silently exempts the file from \
         exhaustive interleaving coverage. Justify with \
         `// lint: allow(raw-atomic) — <reason>`.",
    ),
    (
        "config",
        "lint.toml self-check: hot/seqlock/counter/facade entries must name \
         files that exist in the scan, every fns pattern must match at least \
         one non-test fn (stale pin = error), [graph] boundary entries must \
         resolve to an existing `file.rs::fn`, budget entries must correspond \
         to scanned crates, and justification tags must name known rules and \
         carry a reason.",
    ),
];

/// True when `rule` is one of the known rule names.
pub fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == rule)
}

/// One finding, pointing at `file:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (byte offset into the raw line).
    pub col: usize,
    /// Rule name (one of [`RULES`]).
    pub rule: String,
    /// Human message.
    pub msg: String,
    /// The offending raw source line, trimmed.
    pub snippet: String,
}

impl Diagnostic {
    fn new(scan: &FileScan, line: usize, col0: usize, rule: &str, msg: String) -> Diagnostic {
        Diagnostic {
            file: scan.path.clone(),
            line,
            col: col0 + 1,
            rule: rule.to_string(),
            msg,
            snippet: scan
                .raw
                .get(line - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        }
    }

    /// Renders the rustc-style block form.
    pub fn render(&self) -> String {
        format!(
            "error[{rule}]: {msg}\n  --> {file}:{line}:{col}\n   |  {snippet}\n   = help: `eum-lint --explain {rule}`",
            rule = self.rule,
            msg = self.msg,
            file = self.file,
            line = self.line,
            col = self.col,
            snippet = self.snippet,
        )
    }
}

/// Per-line justification state collected from comments.
struct Allows {
    /// line (1-based) → rules allowed on that line.
    by_line: HashMap<usize, HashSet<String>>,
}

impl Allows {
    fn permits(&self, line: usize, rule: &str) -> bool {
        self.by_line.get(&line).is_some_and(|s| s.contains(rule))
    }
}

/// Parses `lint: allow(...)` tags and `relaxed-ok:` markers out of the
/// file's comments, resolving each tag's scope (own line, next code line,
/// or whole fn when placed directly above a fn signature).
fn collect_allows(scan: &FileScan, diags: &mut Vec<Diagnostic>) -> Allows {
    let mut by_line: HashMap<usize, HashSet<String>> = HashMap::new();
    let n = scan.raw.len();
    for l in 1..=n {
        if scan.comment_is_doc[l - 1] {
            continue; // docs may describe tag syntax without enacting it
        }
        let comment = &scan.comments[l - 1];
        let mut rules_here: Vec<String> = Vec::new();
        if let Some(pos) = comment.find("lint: allow(") {
            let rest = &comment[pos + "lint: allow(".len()..];
            match rest.split_once(')') {
                Some((list, reason)) => {
                    if !reason.chars().any(|c| c.is_alphabetic()) {
                        diags.push(Diagnostic::new(
                            scan,
                            l,
                            0,
                            "config",
                            "justification tag has no reason: write \
                             `// lint: allow(<rule>) — <reason>`"
                                .to_string(),
                        ));
                    }
                    for rule in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        if known_rule(rule) {
                            rules_here.push(rule.to_string());
                        } else {
                            diags.push(Diagnostic::new(
                                scan,
                                l,
                                0,
                                "config",
                                format!("justification tag names unknown rule `{rule}`"),
                            ));
                        }
                    }
                }
                None => diags.push(Diagnostic::new(
                    scan,
                    l,
                    0,
                    "config",
                    "unterminated justification tag: missing `)`".to_string(),
                )),
            }
        }
        if comment.contains("relaxed-ok:") {
            rules_here.push("relaxed-ordering".to_string());
        }
        if rules_here.is_empty() {
            continue;
        }
        let standalone = scan.code[l - 1].trim().is_empty();
        let targets: Vec<usize> = if !standalone {
            vec![l]
        } else {
            // Next non-blank code line; if it opens a fn, cover the body.
            match (l + 1..=n).find(|&nl| !scan.code[nl - 1].trim().is_empty()) {
                Some(nl) => match scan.fns.iter().find(|f| f.sig_line == nl) {
                    Some(f) => (f.sig_line..=f.end_line).collect(),
                    None => vec![nl],
                },
                None => vec![l],
            }
        };
        for t in targets {
            by_line
                .entry(t)
                .or_default()
                .extend(rules_here.iter().cloned());
        }
    }
    Allows { by_line }
}

/// Deny-listed call patterns searched for on hot lines: substring, the
/// rule it violates, and a short description.
const MACROS: &[(&str, &str, &str)] = &[
    ("vec!", "serve-alloc", "allocating macro"),
    ("format!", "serve-alloc", "allocating macro"),
    ("panic!", "serve-panic", "panicking macro"),
    ("todo!", "serve-panic", "panicking macro"),
    ("unreachable!", "serve-panic", "panicking macro"),
    ("unimplemented!", "serve-panic", "panicking macro"),
];

const PATHS: &[(&str, &str, &str)] = &[
    ("Vec::new", "serve-alloc", "allocating constructor"),
    (
        "Vec::with_capacity",
        "serve-alloc",
        "allocating constructor",
    ),
    ("String::new", "serve-alloc", "allocating constructor"),
    ("String::from", "serve-alloc", "allocating constructor"),
    (
        "String::with_capacity",
        "serve-alloc",
        "allocating constructor",
    ),
    ("Box::new", "serve-alloc", "allocating constructor"),
    ("Arc::new", "serve-alloc", "allocating constructor"),
    ("Rc::new", "serve-alloc", "allocating constructor"),
    ("Mutex::new", "serve-lock", "lock constructor"),
    ("RwLock::new", "serve-lock", "lock constructor"),
    ("Condvar::new", "serve-lock", "lock constructor"),
];

const METHODS: &[(&str, &str, &str)] = &[
    (".to_string()", "serve-alloc", "allocating call"),
    (".to_vec()", "serve-alloc", "allocating call"),
    (".to_owned()", "serve-alloc", "allocating call"),
    (".collect(", "serve-alloc", "allocating call"),
    (".collect::<", "serve-alloc", "allocating call"),
    (".lock()", "serve-lock", "blocking lock acquisition"),
    (".read()", "serve-lock", "blocking lock acquisition"),
    (".write()", "serve-lock", "blocking lock acquisition"),
    (".unwrap()", "serve-panic", "panicking call"),
    (".expect(", "serve-panic", "panicking call"),
];

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Occurrences of `needle` in `hay` whose preceding char is not an
/// identifier char (so `.unwrap()` never matches inside `x_unwrap()`).
fn find_token(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    // Word-boundary checks only make sense where the needle itself starts
    // or ends with an identifier char: `.expect(` already carries its own
    // left boundary in the `.`.
    let needs_pre = needle.starts_with(|c: char| is_ident_char(c as u8));
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let pre_ok = !needs_pre || at == 0 || !is_ident_char(hay.as_bytes()[at - 1]);
        // A path pattern like `Vec::new` must not match `MyVec::new` or
        // `Vec::new_in`; require a non-ident char after, too.
        let end = at + needle.len();
        let post_ok = !needle.ends_with(|c: char| is_ident_char(c as u8))
            || end >= hay.len()
            || !is_ident_char(hay.as_bytes()[end]);
        if pre_ok && post_ok {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

/// Statically detectable `expr[...]` indexing: a `[` whose previous
/// non-space char ends an expression (identifier, `)`, `]`, or `?`).
fn find_indexing(code: &str) -> Vec<usize> {
    if code.trim_start().starts_with('#') {
        return Vec::new(); // attribute line
    }
    let b = code.as_bytes();
    let mut out = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        let Some(j) = b[..i].iter().rposition(|&p| p != b' ' && p != b'\t') else {
            continue;
        };
        let p = b[j];
        if !(is_ident_char(p) || p == b')' || p == b']' || p == b'?') {
            continue;
        }
        // `&'a [u8]` is a type, not indexing: skip when the preceding
        // identifier run is introduced by a lifetime tick.
        if is_ident_char(p) {
            let start = b[..j].iter().rposition(|&q| !is_ident_char(q));
            if start.is_some_and(|s| b[s] == b'\'') {
                continue;
            }
        }
        out.push(i);
    }
    out
}

/// Resolves the [[hot]] pins for one file into fn indices. Emits a
/// config error for every pattern matching no non-test fn (stale pin).
/// Public so the call-graph pass seeds its closure from the same set.
pub fn resolve_pins(cfg: &Config, scan: &FileScan, diags: &mut Vec<Diagnostic>) -> HashSet<usize> {
    let mut matched: HashSet<usize> = HashSet::new();
    for hot in cfg.hot_for(&scan.path) {
        for pat in &hot.fns {
            let mut any = false;
            for (i, f) in scan.fns.iter().enumerate() {
                if !f.in_test && fn_pattern_matches(pat, &f.name) {
                    matched.insert(i);
                    any = true;
                }
            }
            if !any {
                diags.push(Diagnostic::new(
                    scan,
                    1,
                    0,
                    "config",
                    format!(
                        "[[hot]] {}: fns pattern `{pat}` matches no non-test fn",
                        scan.path
                    ),
                ));
            }
        }
    }
    matched
}

/// Serve-path purity scan over a set of fns in one file. `members` maps
/// fn index → provenance: `None` for directly pinned fns, `Some(chain)`
/// for fns the call-graph closure reached (the chain lands in the
/// message so the reader sees *why* an un-pinned fn is held to the
/// serve-path rules).
fn check_purity(
    scan: &FileScan,
    allows: &Allows,
    members: &HashMap<usize, Option<String>>,
    diags: &mut Vec<Diagnostic>,
) {
    if members.is_empty() {
        return;
    }
    for l in 1..=scan.raw.len() {
        let Some(fi) = scan.fn_index_at(l) else {
            continue;
        };
        let Some(provenance) = members.get(&fi) else {
            continue;
        };
        if scan.is_test_line(l) {
            continue;
        }
        let f = &scan.fns[fi];
        let via = match provenance {
            None => String::new(),
            Some(chain) => format!(" ({chain})"),
        };
        let code = &scan.code[l - 1];
        for (needle, rule, what) in MACROS.iter().chain(PATHS).chain(METHODS) {
            for at in find_token(code, needle) {
                if !allows.permits(l, rule) {
                    diags.push(Diagnostic::new(
                        scan,
                        l,
                        at,
                        rule,
                        format!(
                            "{what} `{}` in hot fn `{}`{via}",
                            needle.trim_matches('.'),
                            f.name
                        ),
                    ));
                }
            }
        }
        for at in find_indexing(code) {
            if !allows.permits(l, "serve-index") {
                diags.push(Diagnostic::new(
                    scan,
                    l,
                    at,
                    "serve-index",
                    format!("`[]` indexing in hot fn `{}` can panic{via}", f.name),
                ));
            }
        }
    }
}

/// Serve-path purity rules over one file's directly pinned fns.
fn check_hot(cfg: &Config, scan: &FileScan, allows: &Allows, diags: &mut Vec<Diagnostic>) {
    let members: HashMap<usize, Option<String>> = resolve_pins(cfg, scan, diags)
        .into_iter()
        .map(|i| (i, None))
        .collect();
    check_purity(scan, allows, &members, diags);
}

/// Purity pass over call-graph-reached fns (`targets`: fn index →
/// provenance chain). Recomputes the file's justification tags without
/// re-emitting tag errors — `check_file` already reported those.
pub fn check_reachable(
    scan: &FileScan,
    targets: &HashMap<usize, String>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut tag_diags = Vec::new();
    let allows = collect_allows(scan, &mut tag_diags);
    let members: HashMap<usize, Option<String>> = targets
        .iter()
        .map(|(&i, chain)| (i, Some(chain.clone())))
        .collect();
    check_purity(scan, &allows, &members, diags);
}

/// Facade audit: declared concurrency files must not name the raw
/// std/core atomics module — atomics come through `crate::msync` so the
/// model-checked tests compile the same source against modeled atomics.
fn check_raw_atomic(cfg: &Config, scan: &FileScan, allows: &Allows, diags: &mut Vec<Diagnostic>) {
    if !cfg.facade_files.contains(&scan.path) {
        return;
    }
    for l in 1..=scan.raw.len() {
        if scan.is_test_line(l) {
            continue;
        }
        let code = &scan.code[l - 1];
        for needle in ["std::sync::atomic", "core::sync::atomic"] {
            for at in find_token(code, needle) {
                if !allows.permits(l, "raw-atomic") {
                    diags.push(Diagnostic::new(
                        scan,
                        l,
                        at,
                        "raw-atomic",
                        format!(
                            "`{needle}` in audited file: import atomics via \
                             `crate::msync` so model-checked builds cover this file"
                        ),
                    ));
                }
            }
        }
    }
}

/// `Ordering::Relaxed` justification audit over one file.
fn check_relaxed(cfg: &Config, scan: &FileScan, allows: &Allows, diags: &mut Vec<Diagnostic>) {
    if cfg.counter_paths.contains(&scan.path) {
        return;
    }
    if scan.path.contains("/tests/") || scan.path.starts_with("tests/") {
        return;
    }
    for l in 1..=scan.raw.len() {
        if scan.is_test_line(l) {
            continue;
        }
        for at in find_token(&scan.code[l - 1], "Ordering::Relaxed") {
            if !allows.permits(l, "relaxed-ordering") {
                diags.push(Diagnostic::new(
                    scan,
                    l,
                    at,
                    "relaxed-ordering",
                    "undocumented `Ordering::Relaxed`: add `// relaxed-ok: <why>`".to_string(),
                ));
            }
        }
    }
}

/// One atomic access found in a seqlock file.
struct AtomicAccess {
    field: String,
    line: usize,
    col: usize,
    is_store: bool,
    ordering: String,
}

/// Extracts `<recv>.load(Ordering::X)` / `<recv>.store(..., Ordering::X)`
/// accesses. The receiver is the identifier right before the call — field
/// names in practice; loop variables keep their own identity.
fn atomic_accesses(scan: &FileScan) -> Vec<AtomicAccess> {
    let mut out = Vec::new();
    for l in 1..=scan.raw.len() {
        if scan.is_test_line(l) {
            continue;
        }
        let code = &scan.code[l - 1];
        for (needle, is_store) in [(".load(", false), (".store(", true)] {
            for at in find_token(code, needle) {
                let field: String = code[..at]
                    .bytes()
                    .rev()
                    .take_while(|&c| is_ident_char(c))
                    .map(|c| c as char)
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                // The Ordering may be on this line or (rustfmt-wrapped) on
                // one of the next two.
                let ordering = (l..=(l + 2).min(scan.raw.len()))
                    .find_map(|sl| {
                        let c = &scan.code[sl - 1];
                        let from = if sl == l { at } else { 0 };
                        c[from..].find("Ordering::").map(|p| {
                            c[from + p + "Ordering::".len()..]
                                .bytes()
                                .take_while(|&b| is_ident_char(b))
                                .map(|b| b as char)
                                .collect::<String>()
                        })
                    })
                    .unwrap_or_default();
                out.push(AtomicAccess {
                    field,
                    line: l,
                    col: at,
                    is_store,
                    ordering,
                });
            }
        }
    }
    out
}

/// Seqlock pairing audit: in declared files, a field loaded with Acquire
/// must not be stored with Relaxed.
fn check_seqlock(cfg: &Config, scan: &FileScan, allows: &Allows, diags: &mut Vec<Diagnostic>) {
    if !cfg.seqlock_files.contains(&scan.path) {
        return;
    }
    let accesses = atomic_accesses(scan);
    let acquire_loaded: HashSet<&str> = accesses
        .iter()
        .filter(|a| !a.is_store && (a.ordering == "Acquire" || a.ordering == "SeqCst"))
        .map(|a| a.field.as_str())
        .collect();
    for a in &accesses {
        if a.is_store
            && a.ordering == "Relaxed"
            && !a.field.is_empty()
            && acquire_loaded.contains(a.field.as_str())
            && !allows.permits(a.line, "seqlock-pairing")
        {
            diags.push(Diagnostic::new(
                scan,
                a.line,
                a.col,
                "seqlock-pairing",
                format!(
                    "`{}` is loaded with Acquire elsewhere in this file but stored \
                     with Relaxed — the publication edge is gone",
                    a.field
                ),
            ));
        }
    }
}

/// Unsafe audit over one file: SAFETY comments, and the occurrence count
/// for the budget.
fn check_unsafe(scan: &FileScan, diags: &mut Vec<Diagnostic>) -> u64 {
    let mut count = 0u64;
    for l in 1..=scan.raw.len() {
        let hits = find_token(&scan.code[l - 1], "unsafe");
        if hits.is_empty() {
            continue;
        }
        count += hits.len() as u64;
        let documented = (l.saturating_sub(3)..=l)
            .filter(|&cl| cl >= 1)
            .any(|cl| scan.comments[cl - 1].contains("SAFETY:"));
        if !documented {
            diags.push(Diagnostic::new(
                scan,
                l,
                hits[0],
                "safety-comment",
                "`unsafe` without a `// SAFETY:` comment on or above the line".to_string(),
            ));
        }
    }
    count
}

/// The crate-budget key for a workspace-relative path: the directory name
/// under `crates/`, or `root` for the top-level package.
pub fn crate_key(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("root")
        .to_string()
}

/// Runs every per-file rule; returns the file's `unsafe` count.
pub fn check_file(cfg: &Config, scan: &FileScan, diags: &mut Vec<Diagnostic>) -> u64 {
    let mut tag_diags = Vec::new();
    let allows = collect_allows(scan, &mut tag_diags);
    diags.extend(tag_diags);
    check_hot(cfg, scan, &allows, diags);
    check_raw_atomic(cfg, scan, &allows, diags);
    check_relaxed(cfg, scan, &allows, diags);
    check_seqlock(cfg, scan, &allows, diags);
    check_unsafe(scan, diags)
}

/// Compares measured per-crate unsafe counts against the pinned budget.
/// Mismatch in either direction is an error so the pin stays exact.
pub fn check_budget(cfg: &Config, counts: &BTreeMap<String, u64>, diags: &mut Vec<Diagnostic>) {
    for (krate, &n) in counts {
        match cfg.unsafe_budget.get(krate) {
            None => diags.push(budget_diag(format!(
                "crate `{krate}` has no [unsafe_budget] entry (found {n} unsafe); \
                 add one or run --fix-budget"
            ))),
            Some(&budget) if n > budget => diags.push(budget_diag(format!(
                "crate `{krate}` has {n} unsafe occurrences, budget pins {budget}; \
                 new unsafe must raise the pin explicitly"
            ))),
            Some(&budget) if n < budget => diags.push(budget_diag(format!(
                "crate `{krate}` has {n} unsafe occurrences but the budget pins \
                 {budget} — stale pin, run --fix-budget"
            ))),
            Some(_) => {}
        }
    }
    for krate in cfg.unsafe_budget.keys() {
        if !counts.contains_key(krate) {
            diags.push(budget_diag(format!(
                "[unsafe_budget] entry `{krate}` matches no scanned crate — stale entry"
            )));
        }
    }
}

fn budget_diag(msg: String) -> Diagnostic {
    Diagnostic {
        file: "lint.toml".to_string(),
        line: 1,
        col: 1,
        rule: "unsafe-budget".to_string(),
        msg,
        snippet: String::new(),
    }
}
