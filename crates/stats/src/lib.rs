#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Statistics helpers shared by the measurement, analysis, and reproduction
//! crates.
//!
//! The paper reports every result as one of a handful of statistical views:
//! demand-weighted histograms over log-scaled distance (Figs 5, 7), box
//! plots of 5/25/50/75/95th percentiles (Figs 6, 8), demand-weighted CDFs
//! (Figs 11, 14, 16, 18, 20, 21, 22a), daily-mean time series (Figs 13, 15,
//! 17, 19, 23), and bucketed factor plots (Figs 10, 24). This crate
//! implements those views once, exactly, so that each `repro` binary is a
//! thin driver.

pub mod boxplot;
pub mod cdf;
pub mod hist;
pub mod quantile;
pub mod series;
pub mod table;

pub use boxplot::BoxPlot;
pub use cdf::Cdf;
pub use hist::{Histogram, LogBins};
pub use quantile::WeightedSample;
pub use series::DailySeries;
pub use table::Table;

/// Numerically stable (Kahan) mean of an iterator of values.
///
/// Returns `None` for an empty iterator.
pub fn mean(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    let mut n = 0u64;
    for v in values {
        let y = v - comp;
        let t = sum + y;
        comp = (t - sum) - y;
        sum = t;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Weighted mean; ignores non-positive weights. Returns `None` when the
/// total weight is zero.
pub fn weighted_mean(pairs: impl IntoIterator<Item = (f64, f64)>) -> Option<f64> {
    let mut sum = 0.0f64;
    let mut total = 0.0f64;
    for (v, w) in pairs {
        if w > 0.0 {
            sum += v * w;
            total += w;
        }
    }
    if total > 0.0 {
        Some(sum / total)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(std::iter::empty()), None);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean([1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    fn mean_is_stable_for_large_offsets() {
        let vals: Vec<f64> = (0..1000).map(|i| 1e9 + (i % 10) as f64 * 0.1).collect();
        let m = mean(vals.iter().copied()).unwrap();
        assert!((m - (1e9 + 0.45)).abs() < 1e-6, "got {m}");
    }

    #[test]
    fn weighted_mean_basic() {
        assert_eq!(weighted_mean([(1.0, 1.0), (3.0, 3.0)]), Some(2.5));
    }

    #[test]
    fn weighted_mean_ignores_nonpositive_weights() {
        assert_eq!(
            weighted_mean([(1.0, 1.0), (100.0, 0.0), (100.0, -5.0)]),
            Some(1.0)
        );
        assert_eq!(weighted_mean([(1.0, 0.0)]), None);
    }
}
