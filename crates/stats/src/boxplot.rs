//! Box-plot summaries.
//!
//! "All box plots in this paper show 5th, 25th, 50th, 75th and 95th
//! percentiles" (paper, footnote 6). [`BoxPlot`] captures exactly those
//! five numbers, demand-weighted, and renders the per-country rows of
//! Figures 6 and 8.

use crate::WeightedSample;
use serde::{Deserialize, Serialize};

/// The five percentiles the paper draws for every box plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// 5th percentile (lower whisker).
    pub p5: f64,
    /// 25th percentile (box bottom).
    pub p25: f64,
    /// 50th percentile (median line).
    pub p50: f64,
    /// 75th percentile (box top).
    pub p75: f64,
    /// 95th percentile (upper whisker).
    pub p95: f64,
}

impl BoxPlot {
    /// Computes the five-number summary of a weighted sample, or `None`
    /// when the sample is empty.
    pub fn from_sample(sample: &WeightedSample) -> Option<BoxPlot> {
        let mut s = sample.clone();
        Some(BoxPlot {
            p5: s.quantile(0.05)?,
            p25: s.quantile(0.25)?,
            p50: s.quantile(0.50)?,
            p75: s.quantile(0.75)?,
            p95: s.quantile(0.95)?,
        })
    }

    /// A compact one-line rendering used in reproduction output.
    pub fn render(&self) -> String {
        format!(
            "p5={:>8.1} p25={:>8.1} p50={:>8.1} p75={:>8.1} p95={:>8.1}",
            self.p5, self.p25, self.p50, self.p75, self.p95
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_gives_none() {
        assert!(BoxPlot::from_sample(&WeightedSample::new()).is_none());
    }

    #[test]
    fn five_numbers_are_ordered() {
        let s: WeightedSample = (0..100).map(|i| i as f64).collect();
        let b = BoxPlot::from_sample(&s).unwrap();
        assert!(b.p5 <= b.p25 && b.p25 <= b.p50 && b.p50 <= b.p75 && b.p75 <= b.p95);
        assert_eq!(b.p50, 49.0);
    }

    #[test]
    fn degenerate_single_value() {
        let s: WeightedSample = [7.0].into_iter().collect();
        let b = BoxPlot::from_sample(&s).unwrap();
        assert_eq!(b.p5, 7.0);
        assert_eq!(b.p95, 7.0);
    }

    #[test]
    fn render_contains_all_fields() {
        let s: WeightedSample = [1.0, 2.0, 3.0].into_iter().collect();
        let r = BoxPlot::from_sample(&s).unwrap().render();
        for label in ["p5=", "p25=", "p50=", "p75=", "p95="] {
            assert!(r.contains(label), "missing {label} in {r}");
        }
    }
}
