//! The network-measurement component: ping targets and the ping matrix.
//!
//! §6: "we choose around 20K /24 IP blocks that account for most of the
//! load on the Internet and further cluster them into 8K 'ping targets',
//! so as to cover all major geographical areas and networks … For any
//! client or LDNS, we find the closest of the 8K ping targets and use that
//! as a proxy for latency measurements."
//!
//! Target selection is a demand-ordered covering pass: walking blocks from
//! highest demand, a block becomes a new target unless an existing target
//! already covers it within a radius; every block (and any other point)
//! is then proxied by its nearest target. Pings are measured with
//! [`ping_ms`](eum_netmodel::LatencyModel::ping_ms), which — like real pings to enroute routers —
//! underestimate full client RTT (the paper's explicit caveat).

use eum_geo::GeoPoint;
use eum_netmodel::{BlockId, Endpoint, Internet};
use serde::{Deserialize, Serialize};

/// Index of a ping target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TargetId(pub u32);

impl TargetId {
    /// The index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The selected ping targets plus the block → target proxy assignment.
#[derive(Debug, Clone)]
pub struct PingTargets {
    /// Target endpoints (representative blocks).
    pub targets: Vec<Endpoint>,
    /// The block each target was built from.
    pub target_blocks: Vec<BlockId>,
    /// Per-block nearest target (indexed by `BlockId`).
    block_to_target: Vec<TargetId>,
}

impl PingTargets {
    /// Selects up to `max_targets` targets covering the Internet's blocks.
    ///
    /// `cover_radius_miles` controls density: a block closer than this to
    /// an existing target is covered rather than becoming a new target.
    pub fn select(net: &Internet, max_targets: usize, cover_radius_miles: f64) -> PingTargets {
        assert!(max_targets > 0, "need at least one ping target");
        // Demand-descending walk.
        let mut order: Vec<&eum_netmodel::ClientBlock> = net.blocks.iter().collect();
        order.sort_by(|a, b| b.demand.partial_cmp(&a.demand).expect("finite demand"));

        let mut targets: Vec<Endpoint> = Vec::new();
        let mut target_blocks: Vec<BlockId> = Vec::new();
        let mut target_points: Vec<GeoPoint> = Vec::new();
        for b in &order {
            if targets.len() >= max_targets {
                break;
            }
            let covered = target_points
                .iter()
                .any(|p| p.distance_miles(&b.loc) < cover_radius_miles);
            if !covered {
                targets.push(b.endpoint());
                target_blocks.push(b.id);
                target_points.push(b.loc);
            }
        }
        if targets.is_empty() {
            // Degenerate universe: take the top block regardless.
            let b = order.first().expect("non-empty Internet");
            targets.push(b.endpoint());
            target_blocks.push(b.id);
            target_points.push(b.loc);
        }

        // Nearest-target assignment for every block.
        let block_to_target = net
            .blocks
            .iter()
            .map(|b| nearest_point(&target_points, &b.loc))
            .collect();
        PingTargets {
            targets,
            target_blocks,
            block_to_target,
        }
    }

    /// Number of targets.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when no targets exist (cannot happen after `select`).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The proxy target for a block.
    pub fn target_of_block(&self, block: BlockId) -> TargetId {
        self.block_to_target[block.index()]
    }

    /// The proxy target nearest to an arbitrary point (for LDNSes and
    /// unit centroids).
    pub fn target_of_point(&self, point: &GeoPoint) -> TargetId {
        nearest_point(
            &self.targets.iter().map(|t| t.loc).collect::<Vec<_>>(),
            point,
        )
    }
}

fn nearest_point(points: &[GeoPoint], p: &GeoPoint) -> TargetId {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, t) in points.iter().enumerate() {
        let d = t.distance_miles(p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    TargetId(best as u32)
}

/// A deployments × targets matrix of ping latencies.
#[derive(Debug, Clone)]
pub struct PingMatrix {
    n_targets: usize,
    /// Row-major: `rtt[deploy * n_targets + target]`.
    rtt: Vec<f32>,
}

impl PingMatrix {
    /// Measures pings from every deployment endpoint to every target.
    pub fn measure(net: &Internet, deployments: &[Endpoint], targets: &PingTargets) -> PingMatrix {
        let n_targets = targets.len();
        let mut rtt = Vec::with_capacity(deployments.len() * n_targets);
        for d in deployments {
            for t in &targets.targets {
                rtt.push(net.latency.ping_ms(d, t) as f32);
            }
        }
        PingMatrix { n_targets, rtt }
    }

    /// Number of deployment rows.
    pub fn deployments(&self) -> usize {
        self.rtt.len().checked_div(self.n_targets).unwrap_or(0)
    }

    /// Number of target columns.
    pub fn targets(&self) -> usize {
        self.n_targets
    }

    /// The measured ping from deployment `d` to target `t`, ms.
    pub fn ping(&self, d: usize, t: TargetId) -> f64 {
        self.rtt[d * self.n_targets + t.index()] as f64
    }

    /// The deployment (among `candidates`) with the lowest ping to `t`.
    pub fn best_deployment(
        &self,
        candidates: impl IntoIterator<Item = usize>,
        t: TargetId,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for d in candidates {
            let r = self.ping(d, t);
            if best.is_none_or(|(_, b)| r < b) {
                best = Some((d, r));
            }
        }
        best.map(|(d, _)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_netmodel::InternetConfig;

    fn net() -> Internet {
        Internet::generate(InternetConfig::tiny(0x77))
    }

    #[test]
    fn select_respects_max_and_covers_all_blocks() {
        let net = net();
        let t = PingTargets::select(&net, 20, 100.0);
        assert!(t.len() <= 20);
        assert!(!t.is_empty());
        for b in &net.blocks {
            let tid = t.target_of_block(b.id);
            assert!(tid.index() < t.len());
        }
    }

    #[test]
    fn targets_are_spread_apart() {
        let net = net();
        let radius = 150.0;
        let t = PingTargets::select(&net, 1000, radius);
        for i in 0..t.len() {
            for j in (i + 1)..t.len() {
                let d = t.targets[i].loc.distance_miles(&t.targets[j].loc);
                assert!(d >= radius * 0.999, "targets {i},{j} only {d} miles apart");
            }
        }
    }

    #[test]
    fn every_block_proxies_to_its_nearest_target() {
        let net = net();
        let t = PingTargets::select(&net, 50, 120.0);
        for b in &net.blocks {
            let assigned = t.target_of_block(b.id);
            let assigned_d = t.targets[assigned.index()].loc.distance_miles(&b.loc);
            for (i, tgt) in t.targets.iter().enumerate() {
                assert!(
                    tgt.loc.distance_miles(&b.loc) >= assigned_d - 1e-9,
                    "block {} has closer target {} than assigned {}",
                    b.prefix,
                    i,
                    assigned.index()
                );
            }
        }
    }

    #[test]
    fn matrix_dimensions_and_symmetric_consistency() {
        let net = net();
        let t = PingTargets::select(&net, 10, 200.0);
        let deployments: Vec<Endpoint> =
            net.resolvers.iter().take(4).map(|r| r.endpoint()).collect();
        let m = PingMatrix::measure(&net, &deployments, &t);
        assert_eq!(m.deployments(), 4);
        assert_eq!(m.targets(), t.len());
        #[allow(clippy::needless_range_loop)]
        for d in 0..4 {
            for ti in 0..t.len() {
                let r = m.ping(d, TargetId(ti as u32));
                assert!(r.is_finite() && r > 0.0);
                // Matches a direct model query (within f32 rounding).
                let direct = net.latency.ping_ms(&deployments[d], &t.targets[ti]);
                assert!((r - direct).abs() < 0.01, "{r} vs {direct}");
            }
        }
    }

    #[test]
    fn best_deployment_minimizes_ping() {
        let net = net();
        let t = PingTargets::select(&net, 8, 200.0);
        let deployments: Vec<Endpoint> =
            net.resolvers.iter().take(5).map(|r| r.endpoint()).collect();
        let m = PingMatrix::measure(&net, &deployments, &t);
        let tid = TargetId(0);
        let best = m.best_deployment(0..5, tid).unwrap();
        for d in 0..5 {
            assert!(m.ping(best, tid) <= m.ping(d, tid));
        }
        assert_eq!(m.best_deployment(std::iter::empty(), tid), None);
    }

    #[test]
    fn target_of_point_agrees_with_block_assignment() {
        let net = net();
        let t = PingTargets::select(&net, 30, 150.0);
        for b in net.blocks.iter().take(20) {
            assert_eq!(t.target_of_point(&b.loc), t.target_of_block(b.id));
        }
    }
}
