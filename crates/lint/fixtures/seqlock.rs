// Fixture for the seqlock-pairing rule: `seq` is loaded with Acquire by
// the reader, so every store to it must be Release (or stronger).

use std::sync::atomic::{fence, AtomicU64, Ordering};

struct Cell {
    seq: AtomicU64,
    word: AtomicU64,
}

fn reader(c: &Cell) -> Option<u64> {
    let s1 = c.seq.load(Ordering::Acquire);
    if s1 % 2 == 1 {
        return None;
    }
    // relaxed-ok: seqlock read side, fenced below
    let w = c.word.load(Ordering::Relaxed);
    fence(Ordering::Acquire);
    // relaxed-ok: the fence above orders the data load
    if c.seq.load(Ordering::Relaxed) != s1 {
        return None;
    }
    Some(w)
}

fn violating_writer(c: &Cell, s: u64, v: u64) {
    c.seq.store(s + 1, Ordering::Relaxed); // line 27: fires seqlock-pairing
    fence(Ordering::Release);
    // relaxed-ok: seqlock write side, fenced above and released below
    c.word.store(v, Ordering::Relaxed);
    c.seq.store(s + 2, Ordering::Release);
}

fn justified_writer(c: &Cell, s: u64, v: u64) {
    // lint: allow(seqlock-pairing) — relaxed-ok: the release fence below
    // publishes the odd marker before the data stores
    c.seq.store(s + 1, Ordering::Relaxed);
    fence(Ordering::Release);
    // relaxed-ok: seqlock write side, fenced above and released below
    c.word.store(v, Ordering::Relaxed);
    c.seq.store(s + 2, Ordering::Release);
}

fn clean_writer(c: &Cell, s: u64, v: u64) {
    c.seq.store(s + 1, Ordering::Release);
    fence(Ordering::Release);
    // relaxed-ok: seqlock write side, fenced above and released below
    c.word.store(v, Ordering::Relaxed);
    c.seq.store(s + 2, Ordering::Release);
}
